"""Quickstart: run TER-iDS end to end on a generated workload.

This is the 60-second tour of the library:

1. generate a two-source incomplete data stream workload (a scaled synthetic
   analogue of the paper's Citations dataset) together with a complete data
   repository and a topic keyword set;
2. configure the TER-iDS operator (thresholds, sliding window);
3. stream the records through the engine and collect the topic-related
   matching pairs;
4. score the result against the workload's ground truth.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import TERiDSConfig, TERiDSEngine, evaluate_matches, generate_dataset


def main() -> None:
    # 1. A workload: two streams, a repository, topic keywords, ground truth.
    workload = generate_dataset("citations", missing_rate=0.3, scale=0.5, seed=7)
    print(f"dataset          : {workload.name}")
    print(f"stream A tuples  : {len(workload.stream_a)}")
    print(f"stream B tuples  : {len(workload.stream_b)}")
    print(f"repository tuples: {len(workload.repository)}")
    print(f"query keywords   : {sorted(workload.keywords)}")
    print(f"ground truth     : {len(workload.ground_truth)} topic-related pairs")
    print()

    # 2. The TER-iDS operator configuration (Table 5 defaults, small window).
    config = TERiDSConfig(
        schema=workload.schema,
        keywords=workload.keywords,
        alpha=0.5,               # probabilistic threshold
        similarity_ratio=0.5,    # gamma = 0.5 * d
        window_size=40,          # count-based sliding window per stream
    )

    # 3. Stream the records through the engine.
    engine = TERiDSEngine(repository=workload.repository, config=config)
    report = engine.run(workload.interleaved_records())

    print(f"processed tuples : {report.timestamps_processed}")
    print(f"matches reported : {len(report.matches)}")
    print(f"sec per tuple    : {report.mean_seconds_per_timestamp:.5f}")
    print(f"pruning power    : {report.pruning_stats.pruning_power()['total']:.1%}")
    print()

    # 4. Accuracy against the ground truth (Equation (6) of the paper).
    accuracy = evaluate_matches(report.matches, workload.ground_truth)
    print(f"precision        : {accuracy.precision:.1%}")
    print(f"recall           : {accuracy.recall:.1%}")
    print(f"F-score          : {accuracy.f_score:.1%}")
    print()

    print("first few matching pairs:")
    for pair in report.matches[:5]:
        print(f"  {pair.left_source}/{pair.left_rid}  <->  "
              f"{pair.right_source}/{pair.right_rid}  "
              f"(probability {pair.probability:.2f})")


if __name__ == "__main__":
    main()
