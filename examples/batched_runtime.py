"""Micro-batch runtime tour: batched ingestion + checkpoint/restore.

Demonstrates the staged streaming runtime behind ``TERiDSEngine``:

1. run the same workload through the serial executor (the paper's
   tuple-at-a-time semantics) and the micro-batch executor, and verify the
   match sets are identical while the batched run is faster;
2. pause a stream mid-run with ``save_checkpoint``, restore the state into a
   brand-new engine, resume, and verify the final answers equal those of the
   uninterrupted run.

Run with::

    python examples/batched_runtime.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import (
    MicroBatchExecutor,
    SerialExecutor,
    TERiDSConfig,
    TERiDSEngine,
    generate_dataset,
)
from repro.core.stream import StreamSet, build_stream
from repro.metrics.timing import now


def build_config(workload) -> TERiDSConfig:
    return TERiDSConfig(
        schema=workload.schema,
        keywords=workload.keywords,
        alpha=0.5,
        similarity_ratio=0.5,
        window_size=40,
    )


def main() -> None:
    # ------------------------------------------------------------------
    # 1. serial vs micro-batch: same answers, better throughput
    # ------------------------------------------------------------------
    workload = generate_dataset("citations", missing_rate=0.3, scale=0.8, seed=7)
    config = build_config(workload)

    serial_engine = TERiDSEngine(repository=workload.repository, config=config,
                                 executor=SerialExecutor())
    serial_report = serial_engine.run(workload.interleaved_records())

    # Batched ingestion front-end: StreamSet.interleaved_batches chunks the
    # round-robin interleaving into micro-batches for process_batch.
    workload = generate_dataset("citations", missing_rate=0.3, scale=0.8, seed=7)
    streams = StreamSet(streams=[
        build_stream("stream-a", workload.stream_a, workload.schema),
        build_stream("stream-b", workload.stream_b, workload.schema),
    ])
    batched_engine = TERiDSEngine(repository=workload.repository, config=config,
                                  executor=MicroBatchExecutor(batch_size=64))
    batched_matches = []
    batch_start = now()
    for batch in streams.interleaved_batches(64):
        batched_matches.extend(batched_engine.process_batch(batch))
    batched_seconds = now() - batch_start
    batched_engine.close()

    serial_keys = {pair.key() for pair in serial_report.matches}
    batched_keys = {pair.key() for pair in batched_matches}
    print("— serial vs micro-batch —")
    print(f"tuples processed : {serial_report.timestamps_processed}")
    print(f"serial           : {serial_report.total_seconds:.3f}s "
          f"({len(serial_keys)} matches)")
    print(f"micro-batch (64) : {batched_seconds:.3f}s "
          f"({len(batched_keys)} matches)")
    print(f"identical matches: {serial_keys == batched_keys}")
    if batched_seconds > 0:
        print(f"speedup          : "
              f"{serial_report.total_seconds / batched_seconds:.2f}x")
    print()

    # ------------------------------------------------------------------
    # 2. checkpoint mid-stream, restore into a fresh engine, resume
    # ------------------------------------------------------------------
    workload = generate_dataset("citations", missing_rate=0.3, scale=0.8, seed=7)
    records = list(workload.interleaved_records())
    split = len(records) // 2

    first_half = TERiDSEngine(repository=workload.repository, config=config)
    matches = []
    for record in records[:split]:
        matches.extend(first_half.process(record))
    checkpoint_path = Path(tempfile.mkdtemp()) / "ter_ids.ckpt.json"
    first_half.save_checkpoint(checkpoint_path)
    print("— checkpoint / restore —")
    print(f"checkpointed after {first_half.timestamps_processed} tuples "
          f"-> {checkpoint_path.name}")

    resumed = TERiDSEngine(repository=workload.repository, config=config,
                           executor=MicroBatchExecutor(batch_size=32))
    resumed.load_checkpoint(checkpoint_path)
    remaining = records[split:]
    for start in range(0, len(remaining), 32):
        matches.extend(resumed.process_batch(remaining[start:start + 32]))
    resumed.close()

    resumed_keys = {pair.key() for pair in matches}
    uninterrupted_keys = serial_keys
    print(f"resumed total    : {resumed.timestamps_processed} tuples, "
          f"{len(resumed_keys)} distinct matches")
    print(f"equals uninterrupted run: {resumed_keys == uninterrupted_keys}")


if __name__ == "__main__":
    main()
