"""Online health community support — the paper's running example (Example 1).

Patients post free-text messages on two health forums.  An information
extractor turns each post into a (Gender, Symptom, Diagnosis, Treatment)
tuple, but some attributes are missing (patients omit them, or extraction
fails).  A medical professional interested in *diabetes* wants to be alerted
whenever two posts from different forums describe the same case.

This example builds the scenario by hand (no generator): a historical
repository of complete posts, two live post streams with missing attributes,
and a TER-iDS engine with the topic keyword ``diabetes``.

Run with::

    python examples/health_forum_monitoring.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import DataRepository, Record, Schema, TERiDSConfig, TERiDSEngine

SCHEMA = Schema(attributes=("gender", "symptom", "diagnosis", "treatment"))


def build_repository() -> DataRepository:
    """Historical complete posts used to mine CDD rules and impute new posts."""
    rows = [
        ("male", "weight loss blurred vision thirst", "diabetes", "drug therapy"),
        ("male", "loss of weight increased thirst", "diabetes", "dietary therapy"),
        ("female", "blurred vision fatigue thirst", "diabetes", "insulin therapy"),
        ("male", "frequent urination weight loss", "diabetes", "metformin"),
        ("female", "fever low spirit cough", "pneumonia", "antibiotics rest"),
        ("male", "fever poor appetite cough", "flu", "drink more sleep more"),
        ("female", "fever congestion chills", "flu", "fluids rest"),
        ("female", "red eye itchy shed tears", "conjunctivitis", "eye drop"),
        ("male", "sneezing itchy eyes pollen", "allergy", "antihistamine"),
        ("male", "chest pain high pressure", "hypertension", "statin exercise"),
    ]
    samples = [
        Record(rid=f"hist{index}",
               values={"gender": gender, "symptom": symptom,
                       "diagnosis": diagnosis, "treatment": treatment},
               source="repository")
        for index, (gender, symptom, diagnosis, treatment) in enumerate(rows)
    ]
    return DataRepository(schema=SCHEMA, samples=samples)


def forum_posts():
    """Two live forum streams; ``None`` marks a missing extracted attribute."""
    forum_a = [
        ("a1", "male", "loss of weight blurred vision", "diabetes",
         "dietary therapy drug therapy"),
        ("a2", "male", "loss of weight blurred vision", None, None),
        ("a3", "female", "fever low spirit cough", "pneumonia", None),
        ("a4", "female", "red eye eye itchy shed tears", "conjunctivitis",
         "eye drop"),
        ("a5", "male", "frequent urination thirst weight loss", None,
         "metformin"),
    ]
    forum_b = [
        ("b1", "female", "fever low spirit cough", "pneumonia",
         "antibiotics rest"),
        ("b2", "male", "fever poor appetite cough", "flu",
         "drink more sleep more"),
        ("b3", "male", "blurred vision loss of weight", "diabetes",
         "drug therapy"),
        ("b4", "male", "weight loss frequent urination thirst", "diabetes",
         None),
        ("b5", "female", "red eye itchy tears", None, "eye drop"),
    ]

    def to_records(rows, source):
        return [Record(rid=rid,
                       values={"gender": gender, "symptom": symptom,
                               "diagnosis": diagnosis, "treatment": treatment},
                       source=source)
                for rid, gender, symptom, diagnosis, treatment in rows]

    return to_records(forum_a, "forum-a"), to_records(forum_b, "forum-b")


def main() -> None:
    repository = build_repository()
    forum_a, forum_b = forum_posts()

    config = TERiDSConfig(
        schema=SCHEMA,
        keywords={"diabetes"},   # the professional's expertise topic
        alpha=0.3,
        similarity_ratio=0.45,
        window_size=20,
    )
    engine = TERiDSEngine(repository=repository, config=config)

    print(f"mined CDD rules      : {len(engine.rules)}")
    print(f"repository samples   : {len(repository)}")
    print("streaming posts (round-robin from both forums)...\n")

    # Interleave the two forums, as the streams would arrive in practice.
    arrivals = [record for pair in zip(forum_a, forum_b) for record in pair]
    for record in arrivals:
        missing = record.missing_attributes(SCHEMA)
        note = f"(missing: {', '.join(missing)})" if missing else ""
        print(f"  -> {record.source}/{record.rid} {note}")
        for pair in engine.process(record):
            print(f"     *** ALERT: {pair.left_source}/{pair.left_rid} matches "
                  f"{pair.right_source}/{pair.right_rid} "
                  f"with probability {pair.probability:.2f} (diabetes-related)")

    print("\ncurrently maintained diabetes-related match set:")
    for pair in engine.current_matches():
        print(f"  {pair.left_source}/{pair.left_rid} <-> "
              f"{pair.right_source}/{pair.right_rid}  "
              f"p={pair.probability:.2f}")

    stats = engine.pruning_power()
    print(f"\ncandidate pairs examined : {engine.pruning.stats.pairs_considered}")
    print(f"pruned without refinement: {stats['total']:.1%}")
    print(f"imputed attributes       : {engine.imputer.stats.attributes_imputed}")


if __name__ == "__main__":
    main()
