"""Live telemetry tour: watching a paced two-source ingest in real time.

Demonstrates the unified telemetry plane (``repro.obs``) over the async
ingestion subsystem:

1. ``engine.enable_telemetry()`` switches the runtime context from the
   no-op null plane onto the full one — a process-wide metrics registry
   the existing stat objects are bound onto, per-batch span traces that
   stitch main-process stages and pooled worker spans into one tree, and
   an optional cProfile capture of the slowest batches;
2. an ``on_batch`` hook prints a refreshing per-stage / per-shard latency
   and queue-depth table while two paced sources stream through a sharded
   micro-batch executor;
3. after the drain: the slowest batch's span tree, a metrics-snapshot
   digest, and a taste of the Prometheus text exposition the service tier
   would serve from ``/metrics``.

Run with::

    python examples/telemetry_live.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import (
    BatchPolicy,
    IngestDriver,
    MicroBatchExecutor,
    ReplaySource,
    TERiDSConfig,
    TERiDSEngine,
    generate_dataset,
)

REFRESH_EVERY = 3  # batches between table refreshes


def stage_table(telemetry, ctx) -> str:
    """Render the per-stage / per-shard latency table from the registry."""
    lines = ["  stage                            p50 ms    p95 ms     count"]
    stage = telemetry.registry.histogram("terids_stage_seconds",
                                         labelnames=("stage",))
    for key, hist in sorted(stage._children.items()):
        lines.append(f"  {key[0]:<28} {hist.quantile(0.5) * 1e3:9.3f} "
                     f"{hist.quantile(0.95) * 1e3:9.3f} {hist.count:9d}")
    pool = telemetry.registry.histogram(
        "terids_pool_stage_seconds", labelnames=("pool", "shard", "stage"))
    for key, hist in sorted(pool._children.items()):
        label = f"shard {key[1]}: {key[2]}"
        lines.append(f"  {label:<28} {hist.quantile(0.5) * 1e3:9.3f} "
                     f"{hist.quantile(0.95) * 1e3:9.3f} {hist.count:9d}")
    depth = (ctx.ingest.queue_depths[-1] if ctx.ingest.queue_depths else 0)
    lines.append(f"  queue depth now/max          {depth:9d} "
                 f"{ctx.ingest.max_queue_depth:9d}")
    return "\n".join(lines)


def main() -> None:
    workload = generate_dataset("citations", missing_rate=0.3, scale=0.5,
                                seed=7)
    config = TERiDSConfig(schema=workload.schema, keywords=workload.keywords,
                          window_size=40)
    engine = TERiDSEngine(
        repository=workload.repository, config=config,
        executor=MicroBatchExecutor(batch_size=24, max_workers=2,
                                    shard_lookup=True))
    telemetry = engine.enable_telemetry(trace_ring=32, profile_slowest=1)
    ctx = engine.ctx

    def refresh(driver, records) -> None:
        if ctx.batch_seq % REFRESH_EVERY:
            return
        print(f"\n— batch {ctx.batch_seq} (trace {ctx.last_trace_id}) — "
              f"{ctx.timestamps_processed} timestamps, "
              f"{len(ctx.result_set)} live matches —")
        print(stage_table(telemetry, ctx))

    # Two paced sources, one per logical stream, at different rates — the
    # watermark clock lines their event times up before batching.
    driver = IngestDriver(
        engine,
        sources=[ReplaySource(workload.stream_a, name="paced-a", pace=0.002),
                 ReplaySource(workload.stream_b, name="paced-b",
                              pace=0.0033)],
        policy=BatchPolicy(max_batch=24, max_delay=0.02),
        queue_capacity=64,
        on_batch=refresh,
    )
    report = driver.run()

    print("\n— final state —")
    print(f"tuples processed : {report.tuples_processed} "
          f"({report.batches_processed} batches, "
          f"{report.tuples_per_second:,.0f} tuples/s)")
    print(f"matches found    : {len(report.matches)}")
    print(f"batch p95        : "
          f"{telemetry.batch_seconds.quantile(0.95) * 1e3:.2f} ms")
    print(f"formation p95    : "
          f"{ctx.ingest.p95_formation_latency() * 1e3:.2f} ms")

    # The trace ring holds the most recent batch trees; print the last one
    # with its stitched worker spans.
    trace = telemetry.tracer.export()[-1]
    print(f"\n— span tree of {trace['trace_id']} —")

    def walk(span, depth=0):
        labels = span.get("labels", {})
        pool = (f"  [{labels['pool']} shard {labels['shard']}]"
                if "pool" in labels else "")
        print(f"  {'  ' * depth}{span['name']:<24} "
              f"{span['duration'] * 1e3:8.3f} ms{pool}")
        for child in span.get("children", []):
            walk(child, depth + 1)

    walk(trace["spans"])

    snapshot = engine.metrics_snapshot()
    slowest = snapshot["profiles"][0]
    print(f"\nslowest batch    : seq {slowest['batch_seq']} "
          f"({slowest['seconds'] * 1e3:.2f} ms, profile captured)")

    prometheus = engine.render_metrics()
    interesting = [line for line in prometheus.splitlines()
                   if line.startswith(("terids_batches_total",
                                       "terids_pruning_pairs_total",
                                       "terids_ingest_batches_total"))]
    print("\n— /metrics (excerpt) —")
    for line in interesting:
        print(f"  {line}")

    engine.close()


if __name__ == "__main__":
    main()
