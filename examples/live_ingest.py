"""Live ingestion tour: paced sources, watermarks, bursts, backpressure.

Demonstrates the async streaming ingestion subsystem (``repro.ingest``):

1. two *paced* replay sources (one per stream, different arrival rates)
   multiplexed by ``IngestDriver`` under per-source event-time watermarks,
   with the adaptive batcher forming micro-batches on size-or-deadline;
2. a *burst* source joining mid-traffic (a synthetic push of clustered
   arrivals), showing how the bounded arrival queue and the batcher absorb
   it — watch the trigger mix and the queue-depth/backpressure counters;
3. gated online repository growth: complete stream tuples are absorbed
   into the repository as they flow past
   (``TERiDSConfig.absorb_complete_tuples``).

Run with::

    python examples/live_ingest.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import (
    BatchPolicy,
    IngestDriver,
    MicroBatchExecutor,
    Record,
    ReplaySource,
    SyntheticRateSource,
    TERiDSConfig,
    TERiDSEngine,
    generate_dataset,
)


def main() -> None:
    workload = generate_dataset("citations", missing_rate=0.3, scale=0.5,
                                seed=7)
    config = TERiDSConfig(
        schema=workload.schema,
        keywords=workload.keywords,
        window_size=40,
        absorb_complete_tuples=True,  # repository grows from the streams
    )
    engine = TERiDSEngine(repository=workload.repository, config=config,
                          executor=MicroBatchExecutor(batch_size=32))
    repository_before = len(engine.repository)

    # Two paced sources: stream-a arrives at ~500 tuples/s, stream-b at
    # ~300 tuples/s — the watermark clock aligns their event times.
    source_a = ReplaySource(workload.stream_a, name="paced-a", pace=0.002)
    source_b = ReplaySource(workload.stream_b, name="paced-b", pace=0.0033)

    # A bursty third source: every 8th arrival brings 7 extra tuples
    # back-to-back.  The records are re-keyed copies of stream-a posts:
    # paced-a already replays the originals, and duplicate (rid, source)
    # identities would corrupt the windows/grid on eviction.
    pool = workload.stream_a

    def burst_record(index):
        base = pool[index % len(pool)]
        return Record(rid=f"burst{index}", values=dict(base.values),
                      source=base.source)

    burst = SyntheticRateSource(
        burst_record, count=40, name="burst",
        rate=800.0, burst_every=8, burst_size=7, jitter=0.25, seed=11)

    driver = IngestDriver(
        engine,
        sources=[source_a, source_b, burst],
        policy=BatchPolicy(max_batch=24, max_delay=0.02),
        queue_capacity=64,
    )
    report = driver.run()
    engine.close()
    stats = report.stats

    print("— live ingestion —")
    print(f"tuples processed   : {report.tuples_processed} "
          f"({report.batches_processed} batches, "
          f"{report.tuples_per_second:,.0f} tuples/s)")
    print(f"matches found      : {len(report.matches)}")
    print(f"batch triggers     : {dict(sorted(stats.triggers.items()))}")
    print(f"p95 batch formation: {stats.p95_formation_latency() * 1e3:.2f} ms")
    print(f"max queue depth    : {stats.max_queue_depth} "
          f"(capacity {driver.queue_capacity})")
    print(f"backpressure waits : {stats.backpressure_waits}")
    print(f"reordered arrivals : {stats.reordered} "
          f"(late admitted {stats.admitted_late}, shed {stats.shed_late})")
    print(f"repository growth  : {repository_before} -> "
          f"{len(engine.repository)} samples "
          f"({stats.absorbed_samples} complete stream tuples absorbed)")


if __name__ == "__main__":
    main()
