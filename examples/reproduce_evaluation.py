"""Reproduce the paper's evaluation tables/figures from the command line.

Runs the per-figure experiment runners (the same code the benchmark suite
uses) and prints the series each figure plots.  By default a quick subset is
executed; pass ``--full`` for all five datasets and every efficiency method
(slower, a few minutes in pure Python).

Run with::

    python examples/reproduce_evaluation.py            # quick subset
    python examples/reproduce_evaluation.py --full     # full sweep
    python examples/reproduce_evaluation.py --figures 4 5a 5b
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import figures
from repro.experiments.harness import format_rows

QUICK = {
    "datasets": ("citations", "anime"),
    "scale": 0.4,
    "window": 30,
}
FULL = {
    "datasets": ("citations", "anime", "bikes", "ebooks", "songs"),
    "scale": 0.6,
    "window": 50,
}


def _print(title: str, rows) -> None:
    print(f"\n=== {title} ===")
    print(format_rows(rows))


def run(selected, settings) -> None:
    datasets = settings["datasets"]
    scale = settings["scale"]
    window = settings["window"]

    if "t4" in selected:
        _print("Table 4: dataset statistics",
               figures.table4_dataset_statistics(datasets=datasets, scale=scale))
    if "t5" in selected:
        _print("Table 5: parameter settings",
               figures.table5_parameter_settings())
    if "4" in selected:
        _print("Figure 4: pruning power (%)",
               figures.figure4_pruning_power(datasets=datasets, scale=scale,
                                             window_size=window))
    if "5a" in selected:
        _print("Figure 5(a): F-score (%) per dataset",
               figures.figure5a_fscore(datasets=datasets, scale=scale,
                                       window_size=window))
    if "5b" in selected:
        _print("Figure 5(b): wall clock time per dataset",
               figures.figure5b_wall_clock(datasets=datasets, scale=scale,
                                           window_size=window))
    if "6" in selected:
        _print("Figure 6: TER-iDS break-up cost",
               figures.figure6_breakup_cost(datasets=datasets, scale=scale,
                                            window_size=window))
    if "7" in selected:
        _print("Figure 7: time vs alpha",
               figures.figure7_alpha(scale=scale, window_size=window))
    if "8" in selected:
        _print("Figure 8: time vs rho",
               figures.figure8_rho(scale=scale, window_size=window))
    if "9" in selected:
        _print("Figure 9: time vs missing rate",
               figures.figure9_missing_rate(scale=scale, window_size=window))
    if "10" in selected:
        _print("Figure 10: time vs window size",
               figures.figure10_window(scale=scale))
    if "11" in selected:
        _print("Figure 11: pivot selection cost",
               figures.figure11_pivot_selection_cost(datasets=datasets,
                                                     scale=scale))
    if "12" in selected:
        _print("Figure 12: CDD detection cost",
               figures.figure12_cdd_detection_cost(datasets=datasets,
                                                   scale=scale))
    if "13" in selected:
        _print("Figure 13: F-score vs missing rate",
               figures.figure13_fscore_missing(scale=scale, window_size=window))
    if "14" in selected:
        _print("Figure 14: F-score vs repository ratio",
               figures.figure14_fscore_eta(scale=scale, window_size=window))
    if "15" in selected:
        _print("Figure 15: F-score vs missing attributes",
               figures.figure15_fscore_m(scale=scale, window_size=window))
    if "16" in selected:
        _print("Figure 16: time vs repository ratio",
               figures.figure16_time_eta(scale=scale, window_size=window))
    if "17" in selected:
        _print("Figure 17: time vs missing attributes",
               figures.figure17_time_m(scale=scale, window_size=window))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="run all five datasets at a larger scale")
    parser.add_argument("--figures", nargs="*", default=None,
                        help="subset of figures to run, e.g. 4 5a 5b t4")
    args = parser.parse_args()

    settings = FULL if args.full else QUICK
    all_figures = ["t4", "t5", "4", "5a", "5b", "6", "7", "8", "9", "10", "11",
                   "12", "13", "14", "15", "16", "17"]
    selected = args.figures if args.figures else (
        all_figures if args.full else ["t4", "t5", "4", "5a", "5b", "6"])
    run(set(selected), settings)


if __name__ == "__main__":
    main()
