"""Streaming product de-duplication across two e-commerce crawls.

The introduction of the paper motivates TER-iDS with a shopping scenario: a
customer monitors crawled product listings from several e-commerce sites and
wants groups of the *latest* listings that describe the same product, for a
product type (topic) they care about.  Listings are crawled continuously and
extraction is lossy, so some attributes are missing.

This example uses the synthetic ``bikes`` dataset profile (two bike-selling
sites), picks the ``sport`` and ``commuter`` topics as the customer's
interest, and compares TER-iDS with the stream-only ``con+ER`` baseline —
showing both the answer quality and the maintained, windowed nature of the
result set.

Run with::

    python examples/product_stream_dedup.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import (
    METHOD_CON_ER,
    METHOD_TER_IDS,
    TERiDSConfig,
    TERiDSEngine,
    build_baseline,
    evaluate_matches,
    generate_dataset,
)


def main() -> None:
    workload = generate_dataset("bikes", missing_rate=0.4, scale=0.5,
                                keyword_count=2, seed=9)
    print(f"site A listings   : {len(workload.stream_a)}")
    print(f"site B listings   : {len(workload.stream_b)}")
    print(f"catalogue (repo)  : {len(workload.repository)} complete records")
    print(f"topics of interest: {sorted(workload.keywords)}")
    print(f"true duplicates   : {len(workload.ground_truth)} (topic-related)\n")

    config = TERiDSConfig(
        schema=workload.schema,
        keywords=workload.keywords,
        alpha=0.5,
        similarity_ratio=0.5,
        window_size=30,          # only the most recent listings matter
    )

    # --- TER-iDS -----------------------------------------------------------
    engine = TERiDSEngine(repository=workload.repository, config=config)
    report = engine.run(workload.interleaved_records())
    accuracy = evaluate_matches(report.matches, workload.ground_truth)
    print("TER-iDS")
    print(f"  duplicates found : {len(report.matches)}")
    print(f"  F-score          : {accuracy.f_score:.1%}")
    print(f"  sec per listing  : {report.mean_seconds_per_timestamp:.5f}")
    print(f"  pairs pruned     : {report.pruning_stats.pruning_power()['total']:.1%}")
    print(f"  live result set  : {len(engine.current_matches())} pairs "
          f"(only unexpired listings)")

    # --- con+ER baseline (no repository, no topic-aware pruning) -----------
    baseline = build_baseline(METHOD_CON_ER, workload.repository, config)
    baseline_report = baseline.run(workload.interleaved_records())
    baseline_accuracy = evaluate_matches(baseline_report.matches,
                                         workload.ground_truth)
    print("\ncon+ER baseline (stream-neighbour imputation, nested-loop ER)")
    print(f"  duplicates found : {len(baseline_report.matches)}")
    print(f"  F-score          : {baseline_accuracy.f_score:.1%}")
    print(f"  sec per listing  : {baseline_report.mean_seconds_per_timestamp:.5f}")

    print("\nsample duplicate groups reported by TER-iDS:")
    for pair in report.matches[:5]:
        print(f"  {pair.left_source}/{pair.left_rid} <-> "
              f"{pair.right_source}/{pair.right_rid} (p={pair.probability:.2f})")

    winner = METHOD_TER_IDS if accuracy.f_score >= baseline_accuracy.f_score \
        else METHOD_CON_ER
    print(f"\nhigher topic-aware F-score: {winner}")


if __name__ == "__main__":
    main()
