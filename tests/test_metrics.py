"""Tests for the accuracy metrics (Eq. (6)) and the timing utilities."""

import time

import pytest

from repro.core.matching import MatchPair
from repro.metrics.accuracy import (
    AccuracyReport,
    evaluate_key_sets,
    evaluate_matches,
    match_pairs_to_keys,
    pair_key,
)
from repro.metrics.timing import (
    STAGE_CDD_SELECTION,
    STAGE_ER,
    STAGE_IMPUTATION,
    BreakupCost,
    StageTimer,
    Stopwatch,
    time_callable,
)


class TestPairKey:
    def test_order_independence(self):
        assert pair_key("a", "r1", "b", "r2") == pair_key("b", "r2", "a", "r1")

    def test_match_pairs_to_keys(self):
        pairs = [MatchPair("r1", "a", "r2", "b", 0.9),
                 MatchPair("r2", "b", "r1", "a", 0.8)]
        assert len(match_pairs_to_keys(pairs)) == 1


class TestAccuracyReport:
    def test_perfect_report(self):
        report = AccuracyReport(true_positives=10, false_positives=0,
                                false_negatives=0)
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.f_score == 1.0

    def test_equation6(self):
        report = AccuracyReport(true_positives=6, false_positives=2,
                                false_negatives=4)
        precision = 6 / 8
        recall = 6 / 10
        expected = 2 * precision * recall / (precision + recall)
        assert report.precision == pytest.approx(precision)
        assert report.recall == pytest.approx(recall)
        assert report.f_score == pytest.approx(expected)

    def test_empty_report(self):
        report = AccuracyReport(true_positives=0, false_positives=0,
                                false_negatives=0)
        assert report.precision == 0.0
        assert report.recall == 0.0
        assert report.f_score == 0.0

    def test_as_dict(self):
        report = AccuracyReport(true_positives=1, false_positives=2,
                                false_negatives=3)
        data = report.as_dict()
        assert data["true_positives"] == 1
        assert data["false_negatives"] == 3


class TestEvaluateMatches:
    def test_evaluate_against_ground_truth(self):
        truth = {pair_key("a", "r1", "b", "r2"), pair_key("a", "r3", "b", "r4")}
        reported = [MatchPair("r1", "a", "r2", "b", 0.9),   # true positive
                    MatchPair("r9", "a", "r2", "b", 0.9)]   # false positive
        report = evaluate_matches(reported, truth)
        assert report.true_positives == 1
        assert report.false_positives == 1
        assert report.false_negatives == 1

    def test_evaluate_key_sets(self):
        truth = {pair_key("a", "1", "b", "2")}
        reported = {pair_key("b", "2", "a", "1")}
        report = evaluate_key_sets(reported, truth)
        assert report.f_score == 1.0

    def test_empty_reported(self):
        truth = {pair_key("a", "1", "b", "2")}
        report = evaluate_matches([], truth)
        assert report.recall == 0.0
        assert report.false_negatives == 1


class TestStageTimer:
    def test_measure_accumulates(self):
        timer = StageTimer()
        with timer.measure("stage"):
            time.sleep(0.001)
        with timer.measure("stage"):
            time.sleep(0.001)
        assert timer.total("stage") >= 0.002
        assert timer.counts["stage"] == 2
        assert timer.mean("stage") > 0

    def test_manual_add_and_total(self):
        timer = StageTimer()
        timer.add("a", 1.0)
        timer.add("b", 2.0)
        assert timer.total() == pytest.approx(3.0)
        assert timer.total("a") == pytest.approx(1.0)
        assert timer.as_dict() == {"a": 1.0, "b": 2.0}

    def test_mean_of_unknown_stage(self):
        assert StageTimer().mean("nothing") == 0.0

    def test_reset(self):
        timer = StageTimer()
        timer.add("a", 1.0)
        timer.reset()
        assert timer.total() == 0.0


class TestBreakupCost:
    def test_from_timer_averages(self):
        timer = StageTimer()
        timer.add(STAGE_CDD_SELECTION, 1.0)
        timer.add(STAGE_IMPUTATION, 2.0)
        timer.add(STAGE_ER, 3.0)
        cost = BreakupCost.from_timer(timer, timestamps=2)
        assert cost.cdd_selection == pytest.approx(0.5)
        assert cost.imputation == pytest.approx(1.0)
        assert cost.entity_resolution == pytest.approx(1.5)
        assert cost.total == pytest.approx(3.0)
        assert set(cost.as_dict()) == {STAGE_CDD_SELECTION, STAGE_IMPUTATION,
                                       STAGE_ER}

    def test_zero_timestamps_safe(self):
        cost = BreakupCost.from_timer(StageTimer(), timestamps=0)
        assert cost.total == 0.0


class TestStopwatchAndTimeCallable:
    def test_stopwatch_measures(self):
        stopwatch = Stopwatch()
        with stopwatch.measure():
            time.sleep(0.001)
        assert stopwatch.elapsed > 0

    def test_stopwatch_requires_start(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_stopwatch_reset(self):
        stopwatch = Stopwatch().start()
        stopwatch.stop()
        stopwatch.reset()
        assert stopwatch.elapsed == 0.0

    def test_time_callable(self):
        result, elapsed = time_callable(sum, [1, 2, 3])
        assert result == 6
        assert elapsed >= 0.0
