"""Unit tests for tokenisation and the Jaccard similarity functions (Eq. (1))."""

import math

import pytest

from repro.core.similarity import (
    attribute_similarity,
    attribute_similarity_upper_bound,
    jaccard_distance,
    jaccard_similarity,
    record_distance,
    record_similarity,
    similarity_threshold,
    size_bounded_similarity_upper,
    text_distance,
    text_similarity,
    token_overlap,
    tokenize,
)
from repro.core.tuples import Record, Schema


class TestTokenize:
    def test_simple_split(self):
        assert tokenize("loss of weight") == {"loss", "of", "weight"}

    def test_lower_cases(self):
        assert tokenize("Drug Therapy") == {"drug", "therapy"}

    def test_punctuation_is_separator(self):
        assert tokenize("fever, cough; chills") == {"fever", "cough", "chills"}

    def test_numbers_are_tokens(self):
        assert tokenize("sigmod 2021 paper") == {"sigmod", "2021", "paper"}

    def test_empty_string(self):
        assert tokenize("") == frozenset()

    def test_punctuation_only(self):
        assert tokenize("--- !!! ...") == frozenset()

    def test_duplicate_tokens_collapse(self):
        assert tokenize("more more more") == {"more"}

    def test_returns_frozenset(self):
        assert isinstance(tokenize("a b"), frozenset)


class TestJaccard:
    def test_identical_sets(self):
        tokens = tokenize("drug therapy")
        assert jaccard_similarity(tokens, tokens) == 1.0

    def test_disjoint_sets(self):
        assert jaccard_similarity(tokenize("a b"), tokenize("c d")) == 0.0

    def test_half_overlap(self):
        left = frozenset({"a", "b"})
        right = frozenset({"b", "c"})
        assert jaccard_similarity(left, right) == pytest.approx(1 / 3)

    def test_empty_left_gives_zero(self):
        assert jaccard_similarity(frozenset(), tokenize("a")) == 0.0

    def test_both_empty_give_zero(self):
        assert jaccard_similarity(frozenset(), frozenset()) == 0.0

    def test_distance_is_one_minus_similarity(self):
        left = tokenize("a b c")
        right = tokenize("b c d")
        assert jaccard_distance(left, right) == pytest.approx(
            1.0 - jaccard_similarity(left, right))

    def test_similarity_symmetry(self):
        left = tokenize("query index join")
        right = tokenize("index join storage")
        assert jaccard_similarity(left, right) == jaccard_similarity(right, left)

    def test_triangle_inequality_on_samples(self):
        a = tokenize("query optimizer join index")
        b = tokenize("join index storage")
        c = tokenize("storage warehouse engine")
        assert jaccard_distance(a, c) <= (
            jaccard_distance(a, b) + jaccard_distance(b, c) + 1e-12)


class TestTextSimilarity:
    def test_text_similarity_matches_token_sets(self):
        assert text_similarity("drug therapy", "therapy drug") == 1.0

    def test_text_distance_complementary(self):
        assert text_distance("a b", "a c") == pytest.approx(
            1 - text_similarity("a b", "a c"))

    def test_token_overlap(self):
        assert token_overlap(["a", "b", "c"], ["b", "c", "d"]) == 2


class TestRecordSimilarity:
    schema = Schema(attributes=("x", "y"))

    def _record(self, rid, x, y):
        return Record(rid=rid, values={"x": x, "y": y})

    def test_identical_records(self):
        record = self._record("r1", "a b", "c d")
        assert record_similarity(record, record, self.schema) == pytest.approx(2.0)

    def test_completely_different_records(self):
        left = self._record("r1", "a b", "c d")
        right = self._record("r2", "e f", "g h")
        assert record_similarity(left, right, self.schema) == 0.0

    def test_missing_attribute_contributes_zero(self):
        left = self._record("r1", "a b", None)
        right = self._record("r2", "a b", "c d")
        assert record_similarity(left, right, self.schema) == pytest.approx(1.0)

    def test_score_bounded_by_dimensionality(self):
        left = self._record("r1", "a b", "c")
        right = self._record("r2", "a", "c d")
        score = record_similarity(left, right, self.schema)
        assert 0.0 <= score <= len(self.schema)

    def test_record_distance_complement(self):
        left = self._record("r1", "a b", "c")
        right = self._record("r2", "a", "c d")
        assert record_distance(left, right, self.schema) == pytest.approx(
            2 - record_similarity(left, right, self.schema))

    def test_attribute_similarity(self):
        left = self._record("r1", "a b", "c")
        right = self._record("r2", "a b", "d")
        assert attribute_similarity(left, right, "x") == 1.0
        assert attribute_similarity(left, right, "y") == 0.0


class TestThresholdsAndBounds:
    def test_similarity_threshold_scaling(self):
        assert similarity_threshold(0.5, 4) == 2.0

    def test_similarity_threshold_rejects_bad_ratio(self):
        with pytest.raises(ValueError):
            similarity_threshold(1.5, 4)
        with pytest.raises(ValueError):
            similarity_threshold(0.0, 4)

    def test_size_bounded_upper(self):
        assert size_bounded_similarity_upper(10, 8) == pytest.approx(0.8)

    def test_size_bounded_upper_caps_at_one(self):
        assert size_bounded_similarity_upper(5, 10) == 1.0

    def test_size_bounded_upper_zero_min(self):
        assert size_bounded_similarity_upper(0, 3) == 1.0

    def test_attribute_upper_bound_example5(self):
        # Example 5 of the paper: |T(r1[A])| = 10, |T(r2[A])| = 8 -> 0.8.
        assert attribute_similarity_upper_bound((10, 10), (8, 8)) == pytest.approx(0.8)

    def test_attribute_upper_bound_example5_attribute_c(self):
        # |T(r1[C])| in [5, 7], |T(r2[C])| in [10, 12] -> 7/10.
        assert attribute_similarity_upper_bound((5, 7), (10, 12)) == pytest.approx(0.7)

    def test_attribute_upper_bound_overlapping_sizes(self):
        assert attribute_similarity_upper_bound((3, 6), (5, 9)) == 1.0

    def test_attribute_upper_bound_is_valid_bound(self):
        # Real token sets of those sizes can never exceed the bound.
        left = tokenize("a b c d e f g h i j")     # 10 tokens
        right = tokenize("a b c d e f g h")        # 8 tokens
        bound = attribute_similarity_upper_bound((10, 10), (8, 8))
        assert jaccard_similarity(left, right) <= bound + 1e-12
