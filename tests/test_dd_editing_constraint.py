"""Unit tests for DD rules, editing rules and constraint-based imputation."""

import pytest

from repro.core.tuples import Record, Schema
from repro.imputation.cdd import (
    CONSTRAINT_CONSTANT,
    CONSTRAINT_INTERVAL,
    AttributeConstraint,
    CDDRule,
    RuleError,
)
from repro.imputation.constraint import StreamConstraintImputer
from repro.imputation.dd import (
    DDDiscoveryConfig,
    DDRule,
    dd_rules_as_cdds,
    discover_dd_rules,
    group_dd_rules_by_dependent,
)
from repro.imputation.editing import (
    EditingRule,
    EditingRuleImputer,
    discover_editing_rules,
)
from repro.imputation.repository import DataRepository


class TestDDRule:
    def _interval_rule(self):
        return CDDRule(
            determinants=(AttributeConstraint(attribute="symptom",
                                              kind=CONSTRAINT_INTERVAL,
                                              interval=(0.0, 0.5)),),
            dependent="diagnosis",
            dependent_interval=(0.0, 0.5),
        )

    def test_wraps_interval_rule(self):
        rule = DDRule(rule=self._interval_rule())
        assert rule.dependent == "diagnosis"
        assert rule.determinant_attributes == ("symptom",)
        assert rule.dependent_interval == (0.0, 0.5)
        assert "DD" in rule.describe()

    def test_rejects_constant_constraints(self):
        constant_rule = CDDRule(
            determinants=(AttributeConstraint(attribute="gender",
                                              kind=CONSTRAINT_CONSTANT,
                                              constant="male"),),
            dependent="diagnosis",
            dependent_interval=(0.0, 0.5),
        )
        with pytest.raises(RuleError):
            DDRule(rule=constant_rule)

    def test_delegation(self, incomplete_health_record, health_repository):
        rule = DDRule(rule=self._interval_rule())
        assert rule.applicable_to(incomplete_health_record, "diagnosis")
        sample = health_repository.sample_by_rid("s0")
        assert rule.matches_sample(incomplete_health_record, sample)


class TestDDDiscovery:
    def test_discovery_returns_interval_only_rules(self, health_repository):
        rules = discover_dd_rules(health_repository)
        assert rules
        for rule in rules:
            for constraint in rule.determinants:
                assert constraint.kind == CONSTRAINT_INTERVAL

    def test_dd_rules_are_single_determinant(self, health_repository):
        rules = discover_dd_rules(health_repository)
        assert all(len(rule.determinants) == 1 for rule in rules)

    def test_dd_rules_wider_than_cdds(self, health_repository):
        """DD mining tolerates a wider dependent interval than CDD mining."""
        config = DDDiscoveryConfig()
        assert config.max_dependent_width >= 0.8

    def test_unwrap_to_cdds(self, health_repository):
        rules = discover_dd_rules(health_repository)
        unwrapped = dd_rules_as_cdds(rules)
        assert len(unwrapped) == len(rules)
        assert all(isinstance(rule, CDDRule) for rule in unwrapped)

    def test_grouping(self, health_repository):
        rules = discover_dd_rules(health_repository)
        grouped = group_dd_rules_by_dependent(rules)
        assert sum(len(v) for v in grouped.values()) == len(rules)

    def test_empty_repository(self, health_schema):
        assert discover_dd_rules(DataRepository(schema=health_schema, samples=[])) == []

    def test_dependent_filter(self, health_repository):
        rules = discover_dd_rules(health_repository, dependents=["treatment"])
        assert all(rule.dependent == "treatment" for rule in rules)


class TestEditingRules:
    def test_rule_validation(self):
        with pytest.raises(ValueError):
            EditingRule(determinants=(), dependent="x")
        with pytest.raises(ValueError):
            EditingRule(determinants=("x",), dependent="x")

    def test_applicability(self, incomplete_health_record):
        rule = EditingRule(determinants=("symptom",), dependent="diagnosis")
        assert rule.applicable_to(incomplete_health_record, "diagnosis")
        assert not rule.applicable_to(incomplete_health_record, "gender")
        missing_det = EditingRule(determinants=("treatment",), dependent="diagnosis")
        assert not missing_det.applicable_to(incomplete_health_record, "diagnosis")

    def test_matches_sample_exact_equality(self, health_repository):
        rule = EditingRule(determinants=("gender",), dependent="diagnosis")
        record = Record(rid="r", values={"gender": "male", "symptom": "x",
                                         "diagnosis": None, "treatment": "y"})
        male_sample = health_repository.sample_by_rid("s0")
        female_sample = health_repository.sample_by_rid("s2")
        assert rule.matches_sample(record, male_sample)
        assert not rule.matches_sample(record, female_sample)

    def test_discovery_produces_rules(self, health_repository):
        rules = discover_editing_rules(health_repository)
        assert rules
        assert all(isinstance(rule, EditingRule) for rule in rules)
        assert any(len(rule.determinants) == 2 for rule in rules)

    def test_imputer_copies_exact_match_values(self, health_repository,
                                               health_schema):
        rules = [EditingRule(determinants=("symptom",), dependent="diagnosis")]
        imputer = EditingRuleImputer(repository=health_repository, rules=rules)
        record = Record(rid="r", values={
            "gender": "male", "symptom": "weight loss blurred vision",
            "diagnosis": None, "treatment": "drug therapy"}, source="s")
        imputed = imputer.impute(record)
        assert imputed.candidates["diagnosis"] == {"diabetes": 1.0}

    def test_imputer_leaves_unmatchable_missing(self, health_repository):
        rules = [EditingRule(determinants=("symptom",), dependent="diagnosis")]
        imputer = EditingRuleImputer(repository=health_repository, rules=rules)
        record = Record(rid="r", values={
            "gender": "male", "symptom": "no such symptom text at all",
            "diagnosis": None, "treatment": "x"}, source="s")
        imputed = imputer.impute(record)
        assert "diagnosis" not in imputed.candidates

    def test_imputer_distribution_normalised(self, health_repository):
        rules = discover_editing_rules(health_repository)
        imputer = EditingRuleImputer(repository=health_repository, rules=rules)
        record = Record(rid="r", values={
            "gender": "male", "symptom": "fever poor appetite cough",
            "diagnosis": None, "treatment": "drink more sleep more"}, source="s")
        imputed = imputer.impute(record)
        if "diagnosis" in imputed.candidates:
            assert sum(imputed.candidates["diagnosis"].values()) == pytest.approx(1.0)


class TestStreamConstraintImputer:
    schema = Schema(attributes=("x", "y"))

    def _imputer(self, **kwargs):
        return StreamConstraintImputer(schema=self.schema, **kwargs)

    def test_only_complete_records_are_donors(self):
        imputer = self._imputer()
        imputer.observe(Record(rid="d1", values={"x": "a", "y": None}))
        imputer.observe(Record(rid="d2", values={"x": "a", "y": "b"}))
        assert len(imputer.history_snapshot()) == 1

    def test_history_bounded(self):
        imputer = self._imputer(history_size=3)
        for index in range(10):
            imputer.observe(Record(rid=f"d{index}",
                                   values={"x": f"x{index}", "y": "y"}))
        assert len(imputer.history_snapshot()) == 3

    def test_impute_from_similar_donor(self):
        imputer = self._imputer(min_similarity=0.3)
        imputer.observe(Record(rid="d1", values={"x": "query index join",
                                                 "y": "databases"}))
        record = Record(rid="r", values={"x": "query index scan", "y": None})
        imputed = imputer.impute(record)
        assert imputed.candidates["y"] == {"databases": 1.0}

    def test_no_donor_means_no_candidates(self):
        imputer = self._imputer()
        record = Record(rid="r", values={"x": "query", "y": None})
        imputed = imputer.impute(record)
        assert imputed.candidates == {}

    def test_dissimilar_donor_filtered_by_constraint(self):
        imputer = self._imputer(min_similarity=0.9)
        imputer.observe(Record(rid="d1", values={"x": "totally different text",
                                                 "y": "databases"}))
        record = Record(rid="r", values={"x": "query index", "y": None})
        assert imputer.impute(record).candidates == {}

    def test_top_k_weighting(self):
        imputer = self._imputer(min_similarity=0.1, top_k=2)
        imputer.observe(Record(rid="d1", values={"x": "query index join",
                                                 "y": "databases"}))
        imputer.observe(Record(rid="d2", values={"x": "query index",
                                                 "y": "retrieval"}))
        imputer.observe(Record(rid="d3", values={"x": "query",
                                                 "y": "other"}))
        record = Record(rid="r", values={"x": "query index join", "y": None})
        distribution = imputer.impute(record).candidates["y"]
        assert sum(distribution.values()) == pytest.approx(1.0)
        assert len(distribution) <= 2

    def test_self_donation_excluded(self):
        imputer = self._imputer(min_similarity=0.0)
        record_complete = Record(rid="r", values={"x": "a b", "y": "c"}, source="s")
        imputer.observe(record_complete)
        record_missing = Record(rid="r", values={"x": "a b", "y": None}, source="s")
        assert imputer.impute(record_missing).candidates == {}
