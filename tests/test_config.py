"""Unit tests for the TER-iDS configuration object."""

import pytest

from repro.core.config import ConfigError, TERiDSConfig
from repro.core.tuples import Schema

SCHEMA = Schema(attributes=("a", "b", "c", "d"))


class TestConfigValidation:
    def test_defaults_match_table5(self):
        config = TERiDSConfig(schema=SCHEMA)
        assert config.alpha == 0.5
        assert config.similarity_ratio == 0.5
        assert config.window_size == 1000
        assert config.max_pivots == 3

    def test_gamma_is_ratio_times_dimensionality(self):
        config = TERiDSConfig(schema=SCHEMA, similarity_ratio=0.6)
        assert config.gamma == pytest.approx(2.4)
        assert config.dimensionality == 4

    def test_alpha_range(self):
        with pytest.raises(ConfigError):
            TERiDSConfig(schema=SCHEMA, alpha=1.0)
        with pytest.raises(ConfigError):
            TERiDSConfig(schema=SCHEMA, alpha=-0.1)
        TERiDSConfig(schema=SCHEMA, alpha=0.0)  # boundary allowed

    def test_similarity_ratio_range(self):
        with pytest.raises(ConfigError):
            TERiDSConfig(schema=SCHEMA, similarity_ratio=0.0)
        with pytest.raises(ConfigError):
            TERiDSConfig(schema=SCHEMA, similarity_ratio=1.0)

    def test_window_size_positive(self):
        with pytest.raises(ConfigError):
            TERiDSConfig(schema=SCHEMA, window_size=0)

    def test_pivot_and_bucket_validation(self):
        with pytest.raises(ConfigError):
            TERiDSConfig(schema=SCHEMA, max_pivots=0)
        with pytest.raises(ConfigError):
            TERiDSConfig(schema=SCHEMA, entropy_buckets=1)
        with pytest.raises(ConfigError):
            TERiDSConfig(schema=SCHEMA, grid_cells_per_dim=0)


class TestConfigKeywords:
    def test_keywords_normalised(self):
        config = TERiDSConfig(schema=SCHEMA, keywords={"Diabetes", "FLU"})
        assert config.keywords == frozenset({"diabetes", "flu"})

    def test_topic_free_flag(self):
        assert TERiDSConfig(schema=SCHEMA).topic_free
        assert not TERiDSConfig(schema=SCHEMA, keywords={"x"}).topic_free

    def test_with_keywords_returns_new_config(self):
        config = TERiDSConfig(schema=SCHEMA)
        updated = config.with_keywords(["Topic"])
        assert updated.keywords == frozenset({"topic"})
        assert config.keywords == frozenset()

    def test_replace(self):
        config = TERiDSConfig(schema=SCHEMA)
        updated = config.replace(alpha=0.8, window_size=10)
        assert updated.alpha == 0.8
        assert updated.window_size == 10
        assert config.alpha == 0.5
