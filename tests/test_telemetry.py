"""Unified telemetry plane tests.

The heavyweight guarantees:

* **Golden bit-identity** — enabling the full telemetry plane (metrics,
  tracing, profiling) perturbs *nothing* observable: match sets, the
  Figure-4 ``PruningStats`` counters and the index ``nodes_visited``
  totals are bit-identical on vs off across the serial, sharded and
  shm-plane executors at 1, 2 and 4 shards;
* **Trace stitching** — one batch trace stitches the main-process stage
  spans and the pooled worker spans (both ``ShardedERPool`` and
  ``ShmShardedERPool``) into a single exported tree;
* **Exposition** — the Prometheus renderer emits parseable 0.0.4 text
  (monotone cumulative buckets ending at ``+Inf``, escaped labels,
  ``_total`` counter suffix);
* **Compatibility** — ``IngestStats.p95_formation_latency`` stays
  bit-compatible after its sample ring moved onto ``HistogramValue``,
  and ``batch_seq`` / trace-id metadata survives a checkpoint.
"""

import json
import logging
import random

import pytest

from golden_utils import (
    GOLDEN_WORKLOADS,
    build_config,
    build_workload,
    canonical_matches,
)
from repro.core.config import TERiDSConfig
from repro.core.engine import TERiDSEngine
from repro.core.pruning import HAS_NUMPY
from repro.datasets.synthetic import generate_dataset
from repro.obs import (
    COUNTER,
    GAUGE,
    HISTOGRAM,
    BatchTrace,
    HistogramValue,
    LogReporter,
    MetricsRegistry,
    NULL_SCOPE,
    NULL_TELEMETRY,
    SlowBatchProfiler,
    Telemetry,
    Tracer,
    exponential_buckets,
    render_prometheus,
)
from repro.runtime import MicroBatchExecutor, QueryResolver, SerialExecutor
from repro.runtime.context import INGEST_SERIES_WINDOW, IngestStats
from repro.runtime.shm_plane import HAS_SHM

needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="requires numpy")
needs_shm = pytest.mark.skipif(
    not HAS_SHM, reason="requires numpy and multiprocessing.shared_memory")

PRUNING_FIELDS = (
    "pairs_considered", "pruned_by_topic", "pruned_by_similarity",
    "pruned_by_probability", "pruned_by_instance", "refined_matches",
    "refined_non_matches",
)


# ---------------------------------------------------------------------------
# Registry primitives
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("hits", "Hits").inc()
        registry.counter("hits").inc(2.0)
        registry.gauge("depth", "Depth").set(7.0)
        registry.gauge("depth").dec(3.0)
        assert registry.counter("hits").value == 3.0
        assert registry.gauge("depth").value == 4.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1.0)

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_labelled_series_are_distinct(self):
        registry = MetricsRegistry()
        family = registry.counter("pairs", labelnames=("outcome",))
        family.labels(outcome="topic").inc(5.0)
        family.labels(outcome="instance").inc(1.0)
        assert family.labels(outcome="topic").value == 5.0
        assert family.labels(outcome="instance").value == 1.0
        with pytest.raises(ValueError, match="takes labels"):
            family.labels(wrong="topic")

    def test_exponential_buckets(self):
        assert exponential_buckets(0.001, 2.0, 4) == (
            0.001, 0.002, 0.004, 0.008)
        with pytest.raises(ValueError):
            exponential_buckets(0.0, 2.0, 4)
        with pytest.raises(ValueError):
            exponential_buckets(0.1, 1.0, 4)

    def test_histogram_bucket_placement(self):
        hist = HistogramValue(buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.1, 0.5, 5.0, 50.0):
            hist.observe(value)
        # bisect_left: a value equal to a bound lands in that bound's bucket.
        assert hist.bucket_counts == [2, 1, 1, 1]
        rows = hist.cumulative_buckets()
        assert rows[-1] == (float("inf"), 5)
        cumulative = [count for _, count in rows]
        assert cumulative == sorted(cumulative)
        assert hist.count == 5
        assert hist.sum == pytest.approx(55.65)

    def test_histogram_quantile_matches_legacy_formula(self):
        """The pinned nearest-rank formula the ingest path always used."""
        rng = random.Random(13)
        samples = [rng.random() for _ in range(257)]
        hist = HistogramValue(sample_window=1024)
        for value in samples:
            hist.observe(value)
        ordered = sorted(samples)
        for q in (0.5, 0.95, 0.99):
            assert hist.quantile(q) == ordered[int(q * (len(ordered) - 1))]
        assert HistogramValue().quantile(0.95) == 0.0

    def test_histogram_sample_window_bounds_ring(self):
        hist = HistogramValue(sample_window=4)
        for value in range(10):
            hist.observe(float(value))
        assert list(hist.samples) == [6.0, 7.0, 8.0, 9.0]
        assert hist.count == 10  # buckets keep the full count

    def test_histogram_reset(self):
        hist = HistogramValue(buckets=(1.0,))
        hist.observe(0.5)
        hist.reset()
        assert hist.count == 0 and hist.sum == 0.0
        assert not hist.samples and hist.bucket_counts == [0, 0]

    def test_bind_and_bind_multi_collect(self):
        registry = MetricsRegistry()
        registry.bind("bound_total", lambda: 42.0, labels={"kind": "a"})
        registry.bind("bound_total", lambda: 1.0, labels={"kind": "b"})
        registry.bind_multi("fanned_total", "trigger",
                            lambda: {"size": 3, "timer": 1})
        out = {family["name"]: family for family in registry.collect()}
        samples = {tuple(sorted(s["labels"].items())): s["value"]
                   for s in out["bound_total"]["samples"]}
        assert samples == {(("kind", "a"),): 42.0, (("kind", "b"),): 1.0}
        fanned = {s["labels"]["trigger"]: s["value"]
                  for s in out["fanned_total"]["samples"]}
        assert fanned == {"size": 3.0, "timer": 1.0}


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------

class TestPrometheusRender:
    def test_render_parses_under_text_exposition(self):
        registry = MetricsRegistry()
        registry.counter("requests", "Requests served",
                         labelnames=("stage",)).labels(stage="er").inc(3)
        registry.gauge("queue_depth", "Depth").set(2.5)
        hist = registry.histogram("latency_seconds", "Latency",
                                  buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)
        text = render_prometheus(registry)
        assert text.endswith("\n")
        # Counters grow a _total suffix; TYPE lines agree with samples.
        assert "# TYPE requests_total counter" in text
        assert 'requests_total{stage="er"} 3' in text
        assert "queue_depth 2.5" in text
        assert '# TYPE latency_seconds histogram' in text
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="1.0"} 1' in text
        assert 'latency_seconds_bucket{le="+Inf"} 2' in text
        assert "latency_seconds_sum 5.05" in text
        assert "latency_seconds_count 2" in text
        # Minimal format validation: every non-comment line is
        # "name{labels} value" with a float-parseable value.
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            assert name_part[0].isalpha()
            float(value.replace("+Inf", "inf"))

    def test_bucket_rows_are_cumulative_and_end_at_inf(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0, 8.0):
            hist.observe(value)
        lines = [line for line in render_prometheus(registry).splitlines()
                 if line.startswith("h_bucket")]
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts)
        assert lines[-1].startswith('h_bucket{le="+Inf"}')
        assert counts[-1] == 4

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", labelnames=("k",)).labels(
            k='a"b\\c\nd').inc()
        text = render_prometheus(registry)
        assert 'k="a\\"b\\\\c\\nd"' in text


# ---------------------------------------------------------------------------
# Tracing and profiling primitives
# ---------------------------------------------------------------------------

class TestTracing:
    def test_span_tree_nesting(self):
        trace = BatchTrace("batch-1", 1, 10)
        with trace.span("outer"):
            with trace.span("inner", stage="er"):
                pass
            with trace.span("sibling"):
                pass
        trace.finish()
        tree = trace.to_dict()
        assert tree["trace_id"] == "batch-1"
        root = tree["spans"]
        assert root["name"] == "batch"
        (outer,) = root["children"]
        assert [child["name"] for child in outer["children"]] == [
            "inner", "sibling"]
        assert outer["children"][0]["labels"] == {"stage": "er"}
        assert root["duration"] >= outer["duration"] >= 0.0

    def test_worker_spans_anchor_under_open_span(self):
        trace = BatchTrace("batch-2", 2, 4)
        with trace.span("entity_resolution"):
            trace.add_worker_spans("sharded_er", 1, [
                ("replay_lookup", 0.0, 0.25), ("refine", 0.25, 0.5)])
        trace.finish()
        er = trace.to_dict()["spans"]["children"][0]
        names = [child["name"] for child in er["children"]]
        assert names == ["replay_lookup", "refine"]
        for child in er["children"]:
            assert child["labels"] == {"pool": "sharded_er", "shard": "1"}
        # Relative ordering of the shipped rows is preserved.
        lookup, refine = er["children"]
        assert refine["start"] - lookup["start"] == pytest.approx(0.25)

    def test_tracer_ring_is_bounded(self):
        tracer = Tracer(ring=2)
        for seq in range(4):
            tracer.begin(f"batch-{seq}", seq, 1)
            tracer.end()
        exported = tracer.export()
        assert [t["trace_id"] for t in exported] == ["batch-2", "batch-3"]
        assert tracer.current is None

    def test_on_span_callback_fires_per_closed_span(self):
        seen = []
        tracer = Tracer(on_span=lambda span: seen.append(span.name))
        trace = tracer.begin("batch-0", 0, 1)
        with trace.span("imputation"):
            pass
        tracer.end()
        assert seen == ["imputation", "batch"]


class TestProfiler:
    def test_keeps_only_slowest(self):
        profiler = SlowBatchProfiler(top_n=2)
        for seq, spin in ((1, 1000), (2, 200000), (3, 60000)):
            with profiler.profile(seq):
                sum(range(spin))
        kept = [entry["batch_seq"] for entry in profiler.as_dicts()]
        assert len(kept) == 2
        assert 2 in kept  # the heaviest batch is always retained
        for entry in profiler.as_dicts():
            assert "cumulative" in entry["stats"]


# ---------------------------------------------------------------------------
# Null plane
# ---------------------------------------------------------------------------

class TestNullTelemetry:
    def test_null_scope_is_shared_and_reentrant(self):
        assert NULL_TELEMETRY.begin_batch(1, 10) is NULL_SCOPE
        assert NULL_TELEMETRY.span("anything") is NULL_SCOPE
        with NULL_SCOPE:
            with NULL_SCOPE:
                pass
        assert NULL_TELEMETRY.enabled is False
        assert NULL_TELEMETRY.current_trace is None
        assert NULL_TELEMETRY.snapshot() is None
        NULL_TELEMETRY.observe_resolve(0.1, cached=True)

    def test_disabled_context_still_advances_batch_seq(self):
        workload = generate_dataset("citations", missing_rate=0.3,
                                    scale=0.2, seed=7)
        config = TERiDSConfig(schema=workload.schema,
                              keywords=workload.keywords, alpha=0.5,
                              similarity_ratio=0.5, window_size=20)
        engine = TERiDSEngine(workload.repository, config)
        engine.run(workload.interleaved_records())
        assert engine.ctx.telemetry is NULL_TELEMETRY
        assert engine.ctx.batch_seq == engine.timestamps_processed
        assert engine.ctx.last_trace_id is None


# ---------------------------------------------------------------------------
# IngestStats histogram compatibility
# ---------------------------------------------------------------------------

class TestIngestStatsCompatibility:
    def test_formation_latencies_property_mirrors_ring(self):
        stats = IngestStats()
        stats.record_batch(size=3, latency=0.5, queue_depth=2,
                           trigger="size")
        assert list(stats.formation_latencies) == [0.5]
        assert stats.formation.count == 1

    def test_p95_matches_legacy_formula(self):
        rng = random.Random(5)
        latencies = [rng.random() for _ in range(100)]
        stats = IngestStats()
        for latency in latencies:
            stats.record_batch(size=1, latency=latency, queue_depth=0,
                               trigger="size")
        ordered = sorted(latencies)
        assert stats.p95_formation_latency() == ordered[int(0.95 * 99)]
        # The generalisation adds configurable quantiles on the same ring.
        assert stats.formation.quantile(0.5) == ordered[int(0.5 * 99)]
        assert stats.formation.quantile(0.99) == ordered[int(0.99 * 99)]

    def test_ring_is_bounded_by_series_window(self):
        stats = IngestStats()
        for index in range(INGEST_SERIES_WINDOW + 10):
            stats.record_batch(size=1, latency=float(index), queue_depth=0,
                               trigger="size")
        assert len(stats.formation_latencies) == INGEST_SERIES_WINDOW

    def test_restore_clears_ring(self):
        stats = IngestStats()
        stats.record_batch(size=1, latency=0.25, queue_depth=1,
                           trigger="size")
        stats.restore({"tuples_ingested": 5})
        assert stats.p95_formation_latency() == 0.0
        assert not stats.formation_latencies
        assert stats.tuples_ingested == 5


# ---------------------------------------------------------------------------
# Golden bit-identity: telemetry on vs off, across executors and shards
# ---------------------------------------------------------------------------

def _observables(engine, report):
    """Everything the goldens pin, plus the index-walk counters."""
    return {
        "matches": canonical_matches(report.matches),
        "result_set": canonical_matches(engine.current_matches()),
        "pruning": {name: getattr(report.pruning_stats, name)
                    for name in PRUNING_FIELDS},
        "imputation": report.imputation_stats.as_dict(),
        "nodes_visited": {
            "dr_index": engine.ctx.dr_index.nodes_visited,
            "cdd_indexes": {name: index.nodes_visited for name, index
                            in sorted(engine.ctx.cdd_indexes.items())},
        },
        "grid": {"cells": engine.ctx.grid.cells_examined,
                 "tuples": engine.ctx.grid.tuples_examined},
    }


def _run_workload(executor_factory, telemetry):
    dataset, scale, seed, window = GOLDEN_WORKLOADS[0]
    workload = build_workload(dataset, scale, seed)
    config = build_config(workload, window)
    executor = executor_factory()
    engine = TERiDSEngine(workload.repository, config, executor=executor)
    if telemetry:
        engine.enable_telemetry(profile_slowest=2)
    try:
        report = engine.run(workload.interleaved_records())
        return _observables(engine, report)
    finally:
        executor.close()


def _shm_inline_factory(workers):
    def factory():
        executor = MicroBatchExecutor(batch_size=8, max_workers=workers,
                                      shard_lookup=True, shm_plane=True,
                                      delta_routing=True)
        executor._shm_inline = True
        return executor
    return factory


IDENTITY_EXECUTORS = [
    pytest.param(SerialExecutor, id="serial"),
    pytest.param(lambda: MicroBatchExecutor(batch_size=8), id="vectorized",
                 marks=needs_numpy),
    pytest.param(_shm_inline_factory(1), id="shm-1shard", marks=needs_shm),
    pytest.param(_shm_inline_factory(2), id="shm-2shard", marks=needs_shm),
    pytest.param(_shm_inline_factory(4), id="shm-4shard", marks=needs_shm),
]


class TestGoldenBitIdentity:
    @pytest.mark.parametrize("executor_factory", IDENTITY_EXECUTORS)
    def test_telemetry_on_off_identical(self, executor_factory):
        baseline = _run_workload(executor_factory, telemetry=False)
        traced = _run_workload(executor_factory, telemetry=True)
        assert traced == baseline

    @needs_numpy
    def test_real_sharded_pool_identical(self):
        """Telemetry on/off over the real process-backed ShardedERPool."""
        factory = lambda: MicroBatchExecutor(batch_size=8, max_workers=2,
                                             shard_lookup=True)
        baseline = _run_workload(factory, telemetry=False)
        traced = _run_workload(factory, telemetry=True)
        assert traced == baseline


# ---------------------------------------------------------------------------
# Trace stitching across pool boundaries (the acceptance scenario)
# ---------------------------------------------------------------------------

def _span_rows(root, depth=0):
    yield depth, root["name"], root.get("labels", {})
    for child in root.get("children", []):
        yield from _span_rows(child, depth + 1)


def _run_traced(executor):
    workload = generate_dataset("citations", missing_rate=0.3, scale=0.2,
                                seed=7)
    config = TERiDSConfig(schema=workload.schema, keywords=workload.keywords,
                          alpha=0.5, similarity_ratio=0.5, window_size=30)
    engine = TERiDSEngine(workload.repository, config, executor=executor)
    telemetry = engine.enable_telemetry(trace_ring=64)
    try:
        engine.run(workload.interleaved_records())
        return engine, telemetry.tracer.export()
    finally:
        executor.close()


class TestTraceStitching:
    @needs_numpy
    def test_sharded_pool_spans_stitch_into_batch_tree(self):
        executor = MicroBatchExecutor(batch_size=16, max_workers=2,
                                      shard_lookup=True)
        engine, traces = _run_traced(executor)
        stitched = self._assert_stitched(traces, pool="sharded_er",
                                         worker_stages={"reconcile",
                                                        "replay_lookup",
                                                        "refine"})
        assert stitched  # at least one batch carried pooled work

    @needs_shm
    def test_shm_pool_spans_stitch_into_batch_tree(self):
        executor = MicroBatchExecutor(batch_size=16, max_workers=2,
                                      shard_lookup=True, shm_plane=True,
                                      delta_routing=True)
        executor._shm_inline = True
        engine, traces = _run_traced(executor)
        stitched = self._assert_stitched(traces, pool="shm_sharded_er",
                                         worker_stages={"replay_lookup",
                                                        "refine",
                                                        "backfill"})
        assert stitched

    def _assert_stitched(self, traces, pool, worker_stages):
        stitched = 0
        for trace in traces:
            rows = list(_span_rows(trace["spans"]))
            main_stages = {name for depth, name, labels in rows
                           if not labels.get("pool")}
            pooled = [(name, labels) for _, name, labels in rows
                      if labels.get("pool") == pool]
            if not pooled:
                continue
            stitched += 1
            # One tree holds both the main-process pipeline stages and the
            # worker-side spans shipped back across the pool boundary.
            assert {"batch", "entity_resolution"} <= main_stages
            assert {"rule_selection", "imputation"} <= main_stages
            for name, labels in pooled:
                assert name in worker_stages
                assert labels["shard"].isdigit()
            shards = {labels["shard"] for _, labels in pooled}
            assert len(shards) >= 1
        return stitched

    def test_serial_pipeline_spans(self):
        engine, traces = _run_traced(SerialExecutor())
        rows = list(_span_rows(traces[-1]["spans"]))
        names = {name for _, name, _ in rows}
        assert {"batch", "rule_selection", "imputation",
                "entity_resolution"} <= names
        # Serial ER nests its sub-stages under entity_resolution.
        assert {"lookup", "refine"} <= names


# ---------------------------------------------------------------------------
# resolve() discipline and batch_seq checkpointing
# ---------------------------------------------------------------------------

class TestResolveTelemetry:
    def test_resolve_observes_hits_and_misses(self):
        workload = generate_dataset("citations", missing_rate=0.3, scale=0.3,
                                    seed=11)
        config = TERiDSConfig(schema=workload.schema,
                              keywords=workload.keywords, alpha=0.5,
                              similarity_ratio=0.5, window_size=20)
        engine = TERiDSEngine(workload.repository, config)
        telemetry = engine.enable_telemetry()
        engine.run(workload.interleaved_records())
        resolver = QueryResolver(engine.ctx, cache_size=8)
        source, window = next(iter(engine.ctx.windows.items()))
        rid = next(iter(window.items())).record.rid
        resolver.resolve(rid, source)   # cold: miss
        resolver.resolve(rid, source)   # warm: hit
        family = telemetry.registry.histogram("terids_resolve_seconds")
        assert family.labels(result="miss").count == 1
        assert family.labels(result="hit").count == 1
        # Pruning counters stay untouched by interactive lookups — the
        # goldens depend on it.
        before = {name: getattr(engine.ctx.pruning.stats, name)
                  for name in PRUNING_FIELDS}
        resolver.resolve(rid, source)
        after = {name: getattr(engine.ctx.pruning.stats, name)
                 for name in PRUNING_FIELDS}
        assert after == before


class TestBatchSeqCheckpoint:
    def test_batch_seq_and_trace_id_roundtrip(self, tmp_path):
        workload = generate_dataset("citations", missing_rate=0.3, scale=0.3,
                                    seed=11)
        config = TERiDSConfig(schema=workload.schema,
                              keywords=workload.keywords, alpha=0.5,
                              similarity_ratio=0.5, window_size=20)
        records = list(workload.interleaved_records())
        first = TERiDSEngine(workload.repository, config)
        first.enable_telemetry()
        first.run(records[:len(records) // 2])
        seq = first.ctx.batch_seq
        assert seq > 0
        assert first.ctx.last_trace_id == f"batch-{seq:08d}"

        state = first.checkpoint()
        assert state["telemetry"] == {"batch_seq": seq,
                                      "trace_id": f"batch-{seq:08d}"}
        path = tmp_path / "ckpt.json"
        first.save_checkpoint(path)
        assert json.loads(path.read_text())["state"]["telemetry"][
            "batch_seq"] == seq

        resumed = TERiDSEngine(workload.repository, config)
        resumed.load_checkpoint(path)
        assert resumed.ctx.batch_seq == seq
        assert resumed.ctx.last_trace_id == f"batch-{seq:08d}"
        # The sequence keeps climbing monotonically after restore, even
        # with telemetry disabled on the resumed engine.
        resumed.run(records[len(records) // 2:])
        assert resumed.ctx.batch_seq > seq


# ---------------------------------------------------------------------------
# Snapshot API, Prometheus facade, log reporter
# ---------------------------------------------------------------------------

class TestEngineFacade:
    @pytest.fixture()
    def engine(self):
        workload = generate_dataset("citations", missing_rate=0.3, scale=0.2,
                                    seed=7)
        config = TERiDSConfig(schema=workload.schema,
                              keywords=workload.keywords, alpha=0.5,
                              similarity_ratio=0.5, window_size=20)
        engine = TERiDSEngine(workload.repository, config)
        engine.enable_telemetry(profile_slowest=1)
        engine.run(workload.interleaved_records())
        return engine

    def test_metrics_snapshot_is_json_serialisable(self, engine):
        snapshot = engine.metrics_snapshot()
        json.dumps(snapshot)  # must round-trip to JSON losslessly
        assert snapshot["telemetry_enabled"] is True
        assert snapshot["batch_seq"] == engine.ctx.batch_seq
        assert snapshot["pruning"]["pairs_considered"] == \
            engine.ctx.pruning.stats.pairs_considered
        by_name = {family["name"]: family for family in snapshot["metrics"]}
        assert by_name["terids_batches_total"]["samples"][0]["value"] == \
            engine.ctx.batch_seq
        pruning = {s["labels"]["outcome"]: s["value"] for s in
                   by_name["terids_pruning_pairs_total"]["samples"]}
        assert pruning["considered"] == \
            engine.ctx.pruning.stats.pairs_considered
        assert snapshot["traces"]
        assert snapshot["profiles"]

    def test_snapshot_reads_through_restore(self, engine):
        """Bound getters must read through ctx, not captured stat objects."""
        state = engine.checkpoint()
        engine.restore_checkpoint(state)  # replaces ctx.imputer.stats
        snapshot = engine.metrics_snapshot()
        by_name = {family["name"]: family for family in snapshot["metrics"]}
        imputed = {s["labels"]["kind"]: s["value"] for s in
                   by_name["terids_imputation_events_total"]["samples"]}
        assert imputed["records_imputed"] == \
            engine.ctx.imputer.stats.records_imputed

    def test_render_metrics_without_plane_raises(self):
        workload = generate_dataset("citations", missing_rate=0.3, scale=0.2,
                                    seed=7)
        config = TERiDSConfig(schema=workload.schema,
                              keywords=workload.keywords, alpha=0.5,
                              similarity_ratio=0.5, window_size=20)
        engine = TERiDSEngine(workload.repository, config)
        with pytest.raises(RuntimeError, match="enable_telemetry"):
            engine.render_metrics()
        snapshot = engine.metrics_snapshot()  # snapshot works regardless
        assert snapshot["telemetry_enabled"] is False
        assert "metrics" not in snapshot

    def test_render_metrics_exposes_bound_families(self, engine):
        text = engine.render_metrics()
        assert "# TYPE terids_pruning_pairs_total counter" in text
        assert 'terids_pruning_pairs_total{outcome="considered"}' in text
        assert "terids_batch_seconds_bucket" in text
        assert "terids_ingest_formation_seconds_count 0" in text
        assert f"terids_batch_seq {engine.ctx.batch_seq}" in text

    def test_log_reporter(self, engine, caplog):
        reporter = LogReporter(engine.ctx, every_batches=2)
        with caplog.at_level(logging.INFO, logger="repro.obs"):
            reporter.on_batch(None, [])
            assert not caplog.records
            reporter.on_batch(None, [])
        assert len(caplog.records) == 1
        message = caplog.records[0].getMessage()
        assert f"batch_seq={engine.ctx.batch_seq}" in message
        assert "pairs_considered=" in message
        assert "batch_p95=" in message

    def test_disable_telemetry_restores_null_plane(self, engine):
        engine.disable_telemetry()
        assert engine.ctx.telemetry is NULL_TELEMETRY
