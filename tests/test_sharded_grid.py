"""Tests for the sharded columnar ER-grid subsystem.

The heavyweight guarantees:

* **Cell-scan identity** — the vectorized ``batch_cell_scan`` lookup
  (columnar :class:`CellStore`) returns bit-identical candidate lists and
  examination counters to the scalar cell walk;
* **Shard determinism** — ``shard_lookup`` at any shard count (1, 2, 4, 8)
  and either pool mode reproduces the serial executor's matches, result
  set and every pruning / grid counter exactly (the worker replicas are
  full grids, so the cell aggregates — and with them the candidate sets —
  cannot drift from the serial walk);
* **Self-healing residency** — a checkpoint restored mid-stream (into a
  fresh engine or into the same engine whose pool holds stale replicas)
  converges to the uninterrupted run's final state.
"""

import json
from concurrent.futures import Future

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from golden_utils import (
    GOLDEN_WORKLOADS,
    build_config,
    build_workload,
    canonical_matches,
    golden_path,
    run_reference,
)
from repro.core.config import TERiDSConfig
from repro.core.engine import TERiDSEngine
from repro.core.pruning import HAS_NUMPY
from repro.datasets.synthetic import generate_dataset
from repro.indexes.er_grid import ERGrid
from repro.runtime import MicroBatchExecutor, SerialExecutor

needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="requires numpy")


def _small_workload():
    return generate_dataset("citations", missing_rate=0.3, scale=0.3, seed=11)


def _small_config(workload, window=20):
    return TERiDSConfig(schema=workload.schema, keywords=workload.keywords,
                        alpha=0.5, similarity_ratio=0.5, window_size=window)


def _observables(engine, matches):
    stats = engine.pruning.stats
    return {
        "timestamps": engine.timestamps_processed,
        "matches": canonical_matches(matches),
        "result_set": canonical_matches(engine.current_matches()),
        "pruning": {
            "pairs_considered": stats.pairs_considered,
            "pruned_by_topic": stats.pruned_by_topic,
            "pruned_by_similarity": stats.pruned_by_similarity,
            "pruned_by_probability": stats.pruned_by_probability,
            "pruned_by_instance": stats.pruned_by_instance,
            "refined_matches": stats.refined_matches,
            "refined_non_matches": stats.refined_non_matches,
        },
        "grid": (engine.grid.cells_examined, engine.grid.tuples_examined),
    }


def _run(workload, config, executor):
    engine = TERiDSEngine(repository=workload.repository, config=config,
                          executor=executor)
    try:
        report = engine.run(workload.interleaved_records())
        return _observables(engine, report.matches)
    finally:
        engine.close()


# ---------------------------------------------------------------------------
# Vectorized cell scan == scalar walk, bit for bit
# ---------------------------------------------------------------------------
@needs_numpy
def test_cell_store_scan_identical_to_scalar_walk():
    workload = _small_workload()
    config = _small_config(workload)
    records = list(workload.interleaved_records())

    scalar = TERiDSEngine(repository=workload.repository, config=config)
    vectorized = TERiDSEngine(repository=workload.repository, config=config)
    assert vectorized.grid.enable_cell_store() is not None
    scalar_report = scalar.run(records)
    vectorized_report = vectorized.run(records)

    assert (_observables(scalar, scalar_report.matches)
            == _observables(vectorized, vectorized_report.matches))
    # The store tracked every live cell and no more.
    assert len(vectorized.grid.cell_store) == vectorized.grid.cell_count


@needs_numpy
def test_cell_store_enabled_mid_stream_backfills():
    """Enabling the store on a populated grid back-fills every cell."""
    workload = _small_workload()
    config = _small_config(workload)
    records = list(workload.interleaved_records())
    engine = TERiDSEngine(repository=workload.repository, config=config)
    engine.run(records[: len(records) // 2])
    store = engine.grid.enable_cell_store()
    assert len(store) == engine.grid.cell_count
    # Same object on re-enable, still in sync after more maintenance.
    assert engine.grid.enable_cell_store() is store
    engine.run(records[len(records) // 2:])
    assert len(store) == engine.grid.cell_count


@needs_numpy
def test_cell_store_recycles_rows_on_cell_eviction(health_pivots,
                                                   health_schema):
    grid = ERGrid(health_schema, cells_per_dim=3)
    store = grid.enable_cell_store()
    assert store is not None and len(store) == 0

    from repro.core.pruning import RecordSynopsis
    from repro.core.tuples import ImputedRecord, Record

    def synopsis(rid, symptom):
        record = Record(rid=rid,
                        values={"gender": "male", "symptom": symptom,
                                "diagnosis": "diabetes",
                                "treatment": "drug therapy"},
                        source="stream-a")
        imputed = ImputedRecord.from_complete(record, health_schema)
        return RecordSynopsis.build(imputed, health_pivots, frozenset())

    first = synopsis("r1", "weight loss blurred vision")
    grid.insert(first)
    rows_with_one = len(store)
    assert rows_with_one == grid.cell_count
    grid.remove("r1", "stream-a")
    assert len(store) == 0 == grid.cell_count
    # Rows are recycled, not leaked: re-inserting reuses the free list.
    grid.insert(first)
    assert len(store) == rows_with_one


# ---------------------------------------------------------------------------
# Sharded lookup: golden bit-identity at 1 / 2 / 4 shards, both pool modes
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("pool_mode", ["persistent", "per-batch"])
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_sharded_lookup_matches_seed_golden(workers, pool_mode):
    dataset, scale, seed, window = GOLDEN_WORKLOADS[0]
    golden = json.loads(golden_path(dataset).read_text())["reference"]
    workload = build_workload(dataset, scale, seed)
    config = build_config(workload, window)
    executor = MicroBatchExecutor(batch_size=16, max_workers=workers,
                                  pool_mode=pool_mode, shard_lookup=True)
    try:
        got = run_reference(
            lambda **kwargs: TERiDSEngine(executor=executor, **kwargs),
            workload, config)
    finally:
        executor.close()
    assert got == golden


def test_shard_lookup_requires_max_workers():
    with pytest.raises(ValueError, match="shard_lookup"):
        MicroBatchExecutor(shard_lookup=True)


# ---------------------------------------------------------------------------
# Shard determinism property: any region count, bit-identical to serial
# ---------------------------------------------------------------------------
class _InlinePool:
    """A ``ProcessPoolExecutor`` stand-in that runs submissions inline.

    Lets the hypothesis property exercise the full per-batch sharded code
    path (snapshot shipping, op replay, shard routing, counter merging)
    without the wall-clock cost of spawning processes per example.
    """

    def submit(self, fn, *args, **kwargs):
        future = Future()
        future.set_result(fn(*args, **kwargs))
        return future

    def shutdown(self, wait=True):
        pass


_PROPERTY_WORKLOAD = _small_workload()
_PROPERTY_SERIAL = _run(_PROPERTY_WORKLOAD, _small_config(_PROPERTY_WORKLOAD),
                        SerialExecutor())


@given(regions=st.sampled_from([1, 2, 4, 8]),
       batch_size=st.integers(min_value=1, max_value=9))
@settings(max_examples=12, deadline=None)
def test_any_shard_count_is_bit_identical_to_serial(regions, batch_size):
    executor = MicroBatchExecutor(batch_size=batch_size, max_workers=regions,
                                  pool_mode="per-batch", shard_lookup=True)
    executor._pool = _InlinePool()
    got = _run(_PROPERTY_WORKLOAD, _small_config(_PROPERTY_WORKLOAD),
               executor)
    assert got == _PROPERTY_SERIAL


# ---------------------------------------------------------------------------
# Checkpoint / restore with sharded lookup (self-healing residency)
# ---------------------------------------------------------------------------
def _sharded_engine(workload, config, workers=2):
    return TERiDSEngine(
        repository=workload.repository, config=config,
        executor=MicroBatchExecutor(batch_size=8, max_workers=workers,
                                    pool_mode="persistent",
                                    shard_lookup=True))


def test_sharded_checkpoint_restore_mid_stream():
    """A mid-stream snapshot restored into a fresh sharded engine resumes
    to the uninterrupted run's exact final state."""
    workload = _small_workload()
    config = _small_config(workload)
    records = list(workload.interleaved_records())
    half = len(records) // 2

    uninterrupted = _run(workload, config, SerialExecutor())

    first = _sharded_engine(workload, config)
    try:
        matches = list(first.process_batch(records[:half]))
        state = first.checkpoint()
    finally:
        first.close()

    resumed = _sharded_engine(workload, config)
    try:
        resumed.restore_checkpoint(state)
        matches.extend(resumed.process_batch(records[half:]))
        got = _observables(resumed, matches)
    finally:
        resumed.close()
    assert got == uninterrupted


def test_sharded_pool_self_heals_after_restore_into_same_engine():
    """Restoring into the *same* engine leaves the pool holding stale
    replicas; the next batch's reconciliation must repair them."""
    workload = _small_workload()
    config = _small_config(workload)
    records = list(workload.interleaved_records())
    half = len(records) // 2

    uninterrupted = _run(workload, config, SerialExecutor())

    engine = _sharded_engine(workload, config)
    try:
        matches = list(engine.process_batch(records[:half]))
        state = engine.checkpoint()
        # Keep running past the snapshot, then rewind the SAME engine: the
        # worker replicas now hold tuples the restored grid does not (and
        # the restored window synopses are fresh objects).
        engine.process_batch(records[half:])
        engine.restore_checkpoint(state)
        matches.extend(engine.process_batch(records[half:]))
        got = _observables(engine, matches)
    finally:
        engine.close()
    assert got == uninterrupted


def test_transport_stats_ride_in_checkpoints():
    workload = _small_workload()
    config = _small_config(workload)
    records = list(workload.interleaved_records())
    engine = _sharded_engine(workload, config)
    try:
        engine.process_batch(records)
        assert engine.ctx.transport.bytes_shipped > 0
        state = engine.checkpoint()
        shipped = state["transport_stats"]
        assert shipped == engine.ctx.transport.as_dict()
        assert shipped["bytes_shipped"] > 0
        assert shipped["orders_shipped"] == len(records)

        resumed = TERiDSEngine(repository=workload.repository, config=config)
        resumed.restore_checkpoint(state)
        assert resumed.ctx.transport.as_dict() == shipped
    finally:
        engine.close()


def test_reconciliation_sweep_skipped_in_steady_state():
    """Steady-state batches must not pay the O(window) identity sweep —
    and an out-of-band grid mutation must bring it back (self-healing),
    with the continued stream still matching a serial engine fed the
    same sequence."""
    workload = _small_workload()
    config = _small_config(workload)
    records = list(workload.interleaved_records())

    engine = _sharded_engine(workload, config)
    serial = TERiDSEngine(repository=workload.repository, config=config,
                          executor=SerialExecutor())
    try:
        engine.process_batch(records[:24])
        serial.process_batch(records[:24])

        grid = engine.ctx.grid
        sweeps = []
        original = grid.synopsis_items
        grid.synopsis_items = lambda: sweeps.append(1) or original()

        engine.process_batch(records[24:32])
        serial.process_batch(records[24:32])
        assert not sweeps  # replicas already in lock-step: no sweep

        # Out-of-band retraction (the event-time expiry path) bumps the
        # grid's mutation count; the next batch must sweep and repair.
        victim = grid.synopses()[0]
        engine.pipeline.maintenance.retract([victim])
        serial.pipeline.maintenance.retract([victim])
        engine.process_batch(records[32:40])
        serial.process_batch(records[32:40])
        assert sweeps

        assert (canonical_matches(engine.current_matches())
                == canonical_matches(serial.current_matches()))
        assert vars(engine.pruning.stats) == vars(serial.pruning.stats)
    finally:
        engine.close()
        serial.close()
