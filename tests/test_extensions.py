"""Tests for the paper's sketched extensions: time-based windows and
heterogeneous-schema similarity."""

import pytest

from repro.core.heterogeneous import (
    HeterogeneousMatcher,
    heterogeneous_probability,
    heterogeneous_similarity,
    record_token_set,
)
from repro.core.time_window import TimeBasedWindow, TimeBatchedStream, run_time_based
from repro.core.tuples import ImputedRecord, Record, Schema

SCHEMA = Schema(attributes=("x", "y"))


def _record(rid, x, y, source="s1", timestamp=-1):
    return Record(rid=rid, values={"x": x, "y": y}, source=source,
                  timestamp=timestamp)


class TestTimeBasedWindow:
    def test_duration_validation(self):
        with pytest.raises(ValueError):
            TimeBasedWindow(duration=0)

    def test_items_within_duration_are_kept(self):
        window = TimeBasedWindow(duration=3)
        window.insert(_record("r0", "a", "b"), timestamp=0)
        window.insert(_record("r1", "a", "b"), timestamp=1)
        window.insert(_record("r2", "a", "b"), timestamp=2)
        assert len(window) == 3
        assert window.timestamps() == [0, 1, 2]

    def test_expiry_on_advance(self):
        window = TimeBasedWindow(duration=2)
        window.insert(_record("r0", "a", "b"), timestamp=0)
        window.insert(_record("r1", "a", "b"), timestamp=1)
        expired = window.advance_to(3)
        assert [item.rid for item in expired] == ["r0", "r1"]
        assert len(window) == 0

    def test_insert_returns_expired(self):
        window = TimeBasedWindow(duration=1)
        window.insert(_record("r0", "a", "b"), timestamp=0)
        expired = window.insert(_record("r1", "a", "b"), timestamp=2)
        assert [item.rid for item in expired] == ["r0"]

    def test_multiple_arrivals_same_timestamp(self):
        window = TimeBasedWindow(duration=2)
        window.insert(_record("r0", "a", "b"), timestamp=0)
        window.insert(_record("r1", "a", "b"), timestamp=0)
        assert len(window) == 2

    def test_out_of_order_rejected(self):
        window = TimeBasedWindow(duration=2)
        window.insert(_record("r0", "a", "b"), timestamp=5)
        with pytest.raises(ValueError):
            window.insert(_record("r1", "a", "b"), timestamp=3)
        with pytest.raises(ValueError):
            window.advance_to(1)

    def test_lookup(self):
        window = TimeBasedWindow(duration=2)
        record = _record("r0", "a", "b")
        window.insert(record, timestamp=0)
        assert window.get("r0", "s1") is record
        assert window.get("r0", "other") is None


class TestTimeBatchedStream:
    def test_batching(self):
        records = [_record(f"r{i}", "a", "b") for i in range(5)]
        stream = TimeBatchedStream(schema=SCHEMA, records=records,
                                   arrivals_per_tick=2)
        batches = list(stream.batches())
        assert [timestamp for timestamp, _ in batches] == [0, 1, 2]
        assert [len(batch) for _, batch in batches] == [2, 2, 1]
        assert stream.tick_count() == 3

    def test_records_are_stamped(self):
        records = [_record(f"r{i}", "a", "b") for i in range(4)]
        stream = TimeBatchedStream(schema=SCHEMA, records=records,
                                   arrivals_per_tick=2)
        for timestamp, batch in stream.batches():
            assert all(record.timestamp == timestamp for record in batch)

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeBatchedStream(schema=SCHEMA, records=[], arrivals_per_tick=0)

    def test_run_time_based_with_engine(self, health_repository, health_config):
        from repro.core.engine import TERiDSEngine

        engine = TERiDSEngine(repository=health_repository, config=health_config)
        records = [
            Record(rid="a1", values={"gender": "male",
                                     "symptom": "thirst weight loss",
                                     "diagnosis": "diabetes",
                                     "treatment": "insulin"}, source="stream-a"),
            Record(rid="b1", values={"gender": "male",
                                     "symptom": "thirst weight loss",
                                     "diagnosis": "diabetes",
                                     "treatment": "insulin"}, source="stream-b"),
            Record(rid="a2", values={"gender": "female", "symptom": "fever",
                                     "diagnosis": "flu", "treatment": "rest"},
                   source="stream-a"),
            Record(rid="b2", values={"gender": "female", "symptom": "cough",
                                     "diagnosis": "flu", "treatment": "rest"},
                   source="stream-b"),
        ]
        stream = TimeBatchedStream(schema=health_repository.schema,
                                   records=records, arrivals_per_tick=2)
        matches = run_time_based(engine, stream, window_duration=1)
        assert any({pair.left_rid, pair.right_rid} == {"a1", "b1"}
                   for pair in matches)
        # After time moves past the window duration, the old pair must have
        # been evicted from the live result set.
        assert all(not pair.involves("a1", "stream-a")
                   for pair in engine.result_set.pairs())


class TestHeterogeneousSimilarity:
    def test_record_token_set_all_attributes(self):
        record = Record(rid="r", values={"x": "a b", "z": "c"})
        assert record_token_set(record) == {"a", "b", "c"}

    def test_record_token_set_with_schema_filter(self):
        record = Record(rid="r", values={"x": "a b", "y": "c"})
        assert record_token_set(record, SCHEMA) == {"a", "b", "c"}

    def test_similarity_in_unit_interval(self):
        left = _record("l", "query index join", "databases")
        right = Record(rid="r", values={"name": "query index",
                                        "area": "databases"}, source="s2")
        score = heterogeneous_similarity(left, right)
        assert 0.0 < score <= 1.0

    def test_identical_records_similarity_one(self):
        left = _record("l", "a b", "c")
        right = Record(rid="r", values={"p": "a", "q": "b c"}, source="s2")
        assert heterogeneous_similarity(left, right) == 1.0

    def test_probability_respects_topic(self):
        left = ImputedRecord.from_complete(_record("l", "diabetes care", "x"), SCHEMA)
        right = ImputedRecord.from_complete(
            _record("r", "diabetes care", "x", source="s2"), SCHEMA)
        topical = heterogeneous_probability(left, right, frozenset({"diabetes"}),
                                            gamma=0.5)
        off_topic = heterogeneous_probability(left, right, frozenset({"flu"}),
                                              gamma=0.5)
        assert topical == 1.0
        assert off_topic == 0.0

    def test_probability_weights_instances(self):
        left = ImputedRecord(
            base=_record("l", "diabetes care plan", None),
            schema=SCHEMA,
            candidates={"y": {"insulin therapy": 0.6, "unrelated stuff": 0.4}})
        right = ImputedRecord.from_complete(
            _record("r", "diabetes care plan", "insulin therapy", source="s2"),
            SCHEMA)
        probability = heterogeneous_probability(left, right,
                                                frozenset({"diabetes"}),
                                                gamma=0.7)
        assert probability == pytest.approx(0.6)


class TestHeterogeneousMatcher:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            HeterogeneousMatcher(keywords=frozenset(), gamma=1.5, alpha=0.5)
        with pytest.raises(ValueError):
            HeterogeneousMatcher(keywords=frozenset(), gamma=0.5, alpha=1.0)

    def test_match_pair_and_none(self):
        matcher = HeterogeneousMatcher(keywords=frozenset({"diabetes"}),
                                       gamma=0.6, alpha=0.3)
        left = ImputedRecord.from_complete(
            _record("l", "diabetes care", "insulin"), SCHEMA)
        right = ImputedRecord.from_complete(
            _record("r", "diabetes care", "insulin", source="s2"), SCHEMA)
        unrelated = ImputedRecord.from_complete(
            _record("u", "flu season", "rest", source="s2"), SCHEMA)
        assert matcher.match_pair(left, right) is not None
        assert matcher.match_pair(left, unrelated) is None

    def test_match_against_skips_same_source(self):
        matcher = HeterogeneousMatcher(keywords=frozenset(), gamma=0.6, alpha=0.1)
        query = ImputedRecord.from_complete(_record("q", "a b", "c"), SCHEMA)
        same_source = ImputedRecord.from_complete(_record("s", "a b", "c"), SCHEMA)
        other_source = ImputedRecord.from_complete(
            _record("o", "a b", "c", source="s2"), SCHEMA)
        matches = matcher.match_against(query, [same_source, other_source])
        assert [pair.right_rid for pair in matches] == ["o"]
