"""Unit and behavioural tests for the TER-iDS engine (Algorithms 1-2)."""

import pytest

from repro.core.config import TERiDSConfig
from repro.core.engine import TERiDSEngine
from repro.core.matching import ter_ids_probability
from repro.core.tuples import Record, Schema


@pytest.fixture
def health_engine(health_repository, health_config):
    return TERiDSEngine(repository=health_repository, config=health_config)


def _post(rid, gender, symptom, diagnosis, treatment, source="stream-a"):
    return Record(rid=rid, values={"gender": gender, "symptom": symptom,
                                   "diagnosis": diagnosis, "treatment": treatment},
                  source=source)


class TestPrecomputation:
    def test_offline_structures_built(self, health_engine, health_repository):
        assert len(health_engine.rules) > 0
        assert set(health_engine.cdd_indexes) <= set(health_repository.schema)
        assert len(health_engine.dr_index) == len(health_repository)
        for attribute in health_repository.schema:
            assert health_engine.pivots.pivot_count(attribute) >= 1

    def test_prebuilt_rules_can_be_supplied(self, health_repository, health_config):
        from repro.imputation.cdd import discover_cdd_rules

        rules = discover_cdd_rules(health_repository)
        engine = TERiDSEngine(repository=health_repository, config=health_config,
                              rules=rules)
        assert engine.rules == list(rules)


class TestOnlineProcessing:
    def test_single_record_produces_no_matches(self, health_engine):
        matches = health_engine.process(_post("a1", "male", "thirst weight loss",
                                              "diabetes", "insulin"))
        assert matches == []
        assert health_engine.timestamps_processed == 1
        assert len(health_engine.grid) == 1

    def test_matching_pair_across_streams(self, health_engine):
        health_engine.process(_post("a1", "male", "loss of weight blurred vision",
                                    "diabetes", "drug therapy", source="stream-a"))
        matches = health_engine.process(
            _post("b1", "male", "loss of weight blurred vision", "diabetes",
                  "drug therapy", source="stream-b"))
        assert len(matches) == 1
        pair = matches[0]
        assert {pair.left_rid, pair.right_rid} == {"a1", "b1"}
        assert pair.probability > health_engine.config.alpha
        assert pair in health_engine.result_set

    def test_same_stream_pairs_never_reported(self, health_engine):
        health_engine.process(_post("a1", "male", "thirst weight loss", "diabetes",
                                    "insulin", source="stream-a"))
        matches = health_engine.process(
            _post("a2", "male", "thirst weight loss", "diabetes", "insulin",
                  source="stream-a"))
        assert matches == []

    def test_non_topical_pair_not_reported(self, health_engine):
        health_engine.process(_post("a1", "female", "fever cough", "flu", "rest",
                                    source="stream-a"))
        matches = health_engine.process(
            _post("b1", "female", "fever cough", "flu", "rest", source="stream-b"))
        assert matches == []
        assert health_engine.pruning.stats.pruned_by_topic >= 1

    def test_incomplete_tuple_is_imputed_and_matched(self, health_engine):
        health_engine.process(_post("a1", "male", "loss of weight blurred vision",
                                    "diabetes", "drug therapy", source="stream-a"))
        incomplete = _post("b1", "male", "loss of weight blurred vision", None,
                           "drug therapy", source="stream-b")
        matches = health_engine.process(incomplete)
        assert len(matches) == 1
        assert health_engine.imputer.stats.records_imputed >= 1

    def test_engine_verdicts_match_exact_probability(self, health_engine,
                                                     health_config):
        """Integration-level exactness: engine answers == brute-force Eq. (2)."""
        arrivals = [
            _post("a1", "male", "loss of weight blurred vision", "diabetes",
                  "drug therapy", source="stream-a"),
            _post("b1", "male", "weight loss blurred vision", None,
                  "drug therapy", source="stream-b"),
            _post("a2", "female", "fever cough", "flu", "rest", source="stream-a"),
            _post("b2", "female", "fever cough chills", "flu", "rest",
                  source="stream-b"),
            _post("a3", "male", "thirst fatigue weight loss", "diabetes", None,
                  source="stream-a"),
        ]
        reported = set()
        synopses = {}
        for record in arrivals:
            for pair in health_engine.process(record):
                reported.add(pair.key())
            synopses[(record.rid, record.source)] = health_engine.grid.get_synopsis(
                record.rid, record.source)

        # Brute force over all cross-stream pairs using the engine's own
        # imputed records (so imputation quality is factored out).
        expected = set()
        keys = list(synopses)
        for i in range(len(keys)):
            for j in range(i + 1, len(keys)):
                left = synopses[keys[i]]
                right = synopses[keys[j]]
                if left.record.source == right.record.source:
                    continue
                probability = ter_ids_probability(
                    left.record, right.record, health_config.keywords,
                    health_config.gamma)
                if probability > health_config.alpha:
                    from repro.core.matching import MatchPair
                    expected.add(MatchPair(left.rid, left.source, right.rid,
                                           right.source, probability).key())
        assert reported == expected


class TestWindowExpiry:
    def test_expired_tuples_leave_grid_and_results(self, health_repository,
                                                   health_config):
        config = health_config.replace(window_size=2)
        engine = TERiDSEngine(repository=health_repository, config=config)
        for index in range(5):
            engine.process(_post(f"a{index}", "male", "thirst weight loss",
                                 "diabetes", "insulin", source="stream-a"))
        # Window keeps only the 2 most recent stream-a tuples.
        assert sum(1 for s in engine.grid.synopses()
                   if s.source == "stream-a") == 2

    def test_match_involving_expired_tuple_removed_from_result_set(
            self, health_repository, health_config):
        config = health_config.replace(window_size=1)
        engine = TERiDSEngine(repository=health_repository, config=config)
        engine.process(_post("a1", "male", "thirst weight loss", "diabetes",
                             "insulin", source="stream-a"))
        matches = engine.process(_post("b1", "male", "thirst weight loss",
                                       "diabetes", "insulin", source="stream-b"))
        assert matches
        # A new stream-a tuple evicts a1, so the (a1, b1) pair must vanish.
        engine.process(_post("a2", "female", "fever", "flu", "rest",
                             source="stream-a"))
        assert all(not pair.involves("a1", "stream-a")
                   for pair in engine.result_set.pairs())


class TestRunAndReporting:
    def test_run_returns_report(self, health_repository, health_config):
        engine = TERiDSEngine(repository=health_repository, config=health_config)
        records = [
            _post("a1", "male", "loss of weight blurred vision", "diabetes",
                  "drug therapy", source="stream-a"),
            _post("b1", "male", "loss of weight blurred vision", "diabetes",
                  "drug therapy", source="stream-b"),
            _post("a2", "female", "fever cough", "flu", "rest", source="stream-a"),
        ]
        report = engine.run(records)
        assert report.timestamps_processed == 3
        assert report.total_seconds > 0
        assert report.mean_seconds_per_timestamp > 0
        assert len(report.matches) >= 1
        assert report.breakup_cost.total > 0

    def test_breakup_cost_stages_all_measured(self, health_repository,
                                              health_config):
        engine = TERiDSEngine(repository=health_repository, config=health_config)
        engine.process(_post("a1", "male", "thirst", None, "insulin",
                             source="stream-a"))
        cost = engine.breakup_cost()
        assert cost.cdd_selection >= 0
        assert cost.imputation > 0
        assert cost.entity_resolution > 0

    def test_pruning_power_report(self, health_repository, health_config):
        engine = TERiDSEngine(repository=health_repository, config=health_config)
        engine.process(_post("a1", "female", "fever", "flu", "rest",
                             source="stream-a"))
        engine.process(_post("b1", "female", "fever", "flu", "rest",
                             source="stream-b"))
        power = engine.pruning_power()
        assert set(power) == {"topic_keyword", "similarity_upper_bound",
                              "probability_upper_bound", "instance_pair_level",
                              "total"}
        assert 0.0 <= power["total"] <= 1.0


class TestDynamicRepository:
    def test_add_samples_without_remining(self, health_repository, health_config):
        engine = TERiDSEngine(repository=health_repository, config=health_config)
        rules_before = list(engine.rules)
        new_sample = _post("new", "female", "thirst fatigue", "diabetes",
                           "insulin", source="repository")
        engine.add_repository_samples([new_sample])
        assert len(engine.dr_index) == len(health_repository)
        assert engine.rules == rules_before

    def test_add_samples_with_remining(self, health_repository, health_config):
        engine = TERiDSEngine(repository=health_repository, config=health_config)
        new_sample = _post("new", "female", "thirst fatigue", "diabetes",
                           "insulin", source="repository")
        engine.add_repository_samples([new_sample], remine_rules=True)
        assert len(engine.rules) > 0


class TestPruningAblation:
    def test_disabling_pruning_preserves_answers(self, health_repository,
                                                 health_config):
        """Pruning strategies must only save work, never change the answers."""
        records = [
            _post("a1", "male", "loss of weight blurred vision", "diabetes",
                  "drug therapy", source="stream-a"),
            _post("b1", "male", "weight loss blurred vision", None,
                  "drug therapy", source="stream-b"),
            _post("a2", "female", "fever cough", "flu", "rest", source="stream-a"),
            _post("b2", "male", "thirst weight loss", "diabetes", None,
                  source="stream-b"),
        ]
        with_pruning = TERiDSEngine(repository=health_repository,
                                    config=health_config)
        without_pruning = TERiDSEngine(
            repository=health_repository,
            config=health_config.replace(use_topic_pruning=False,
                                         use_similarity_pruning=False,
                                         use_probability_pruning=False,
                                         use_instance_pruning=False))
        report_with = with_pruning.run(list(records))
        report_without = without_pruning.run(list(records))
        keys_with = {pair.key() for pair in report_with.matches}
        keys_without = {pair.key() for pair in report_without.matches}
        assert keys_with == keys_without
