"""Tests for the straightforward method and the five baseline pipelines."""

import pytest

from repro.baselines.naive import NestedLoopMatcher, StraightforwardTERiDS
from repro.baselines.pipelines import (
    ALL_BASELINES,
    METHOD_CDD_ER,
    METHOD_CON_ER,
    METHOD_DD_ER,
    METHOD_ER_ER,
    METHOD_IJ_GER,
    IndexedSequentialPipeline,
    build_baseline,
    build_cdd_er_pipeline,
    build_con_er_pipeline,
    build_dd_er_pipeline,
    build_er_er_pipeline,
)
from repro.core.config import TERiDSConfig
from repro.core.tuples import ImputedRecord, Record


def _post(rid, gender, symptom, diagnosis, treatment, source="stream-a"):
    return Record(rid=rid, values={"gender": gender, "symptom": symptom,
                                   "diagnosis": diagnosis, "treatment": treatment},
                  source=source)


MATCHING_SEQUENCE = [
    _post("a1", "male", "loss of weight blurred vision", "diabetes",
          "drug therapy", source="stream-a"),
    _post("b1", "male", "loss of weight blurred vision", "diabetes",
          "drug therapy", source="stream-b"),
    _post("a2", "female", "fever cough", "flu", "rest", source="stream-a"),
    _post("b2", "female", "red eye itchy", "conjunctivitis", "eye drop",
          source="stream-b"),
]


class TestNestedLoopMatcher:
    def test_candidates_exclude_same_stream(self, health_config, health_schema):
        matcher = NestedLoopMatcher(config=health_config)
        first = ImputedRecord.from_complete(MATCHING_SEQUENCE[0], health_schema)
        second = ImputedRecord.from_complete(MATCHING_SEQUENCE[2], health_schema)
        matcher.expire_and_insert(first)
        matcher.expire_and_insert(second)
        other_stream = ImputedRecord.from_complete(MATCHING_SEQUENCE[1],
                                                   health_schema)
        candidates = matcher.candidates(other_stream)
        assert {candidate.rid for candidate in candidates} == {"a1", "a2"}

    def test_window_eviction(self, health_config, health_schema):
        config = health_config.replace(window_size=1)
        matcher = NestedLoopMatcher(config=config)
        first = ImputedRecord.from_complete(MATCHING_SEQUENCE[0], health_schema)
        second = ImputedRecord.from_complete(MATCHING_SEQUENCE[2], health_schema)
        assert matcher.expire_and_insert(first) is None
        evicted = matcher.expire_and_insert(second)
        assert evicted.rid == "a1"

    def test_match_counts_pairs(self, health_config, health_schema):
        matcher = NestedLoopMatcher(config=health_config)
        left = ImputedRecord.from_complete(MATCHING_SEQUENCE[0], health_schema)
        right = ImputedRecord.from_complete(MATCHING_SEQUENCE[1], health_schema)
        matches = matcher.match(right, [left])
        assert matcher.pairs_evaluated == 1
        assert len(matches) == 1
        assert matches[0].probability > health_config.alpha


class TestBaselineConstruction:
    def test_build_baseline_registry(self, health_repository, health_config):
        for method in ALL_BASELINES:
            pipeline = build_baseline(method, health_repository, health_config)
            assert pipeline is not None

    def test_unknown_baseline_rejected(self, health_repository, health_config):
        with pytest.raises(KeyError):
            build_baseline("does-not-exist", health_repository, health_config)

    def test_factory_types(self, health_repository, health_config):
        assert isinstance(build_baseline(METHOD_IJ_GER, health_repository,
                                         health_config),
                          IndexedSequentialPipeline)
        assert isinstance(build_baseline(METHOD_CDD_ER, health_repository,
                                         health_config),
                          StraightforwardTERiDS)


class TestBaselineBehaviour:
    @pytest.mark.parametrize("method", list(ALL_BASELINES))
    def test_every_baseline_finds_the_obvious_match(self, method,
                                                    health_repository,
                                                    health_config):
        pipeline = build_baseline(method, health_repository, health_config)
        report = pipeline.run(list(MATCHING_SEQUENCE))
        keys = {pair.key() for pair in report.matches}
        expected_key = (("stream-a", "a1"), ("stream-b", "b1"))
        assert expected_key in keys, f"{method} missed the exact duplicate pair"
        assert report.timestamps_processed == len(MATCHING_SEQUENCE)
        assert report.total_seconds > 0

    @pytest.mark.parametrize("method", list(ALL_BASELINES))
    def test_no_same_stream_pairs(self, method, health_repository, health_config):
        pipeline = build_baseline(method, health_repository, health_config)
        report = pipeline.run(list(MATCHING_SEQUENCE))
        for pair in report.matches:
            assert pair.left_source != pair.right_source

    def test_cdd_er_imputes_incomplete_tuples(self, health_repository,
                                              health_config):
        pipeline = build_cdd_er_pipeline(health_repository, health_config)
        sequence = list(MATCHING_SEQUENCE)
        sequence[1] = _post("b1", "male", "loss of weight blurred vision", None,
                            "drug therapy", source="stream-b")
        report = pipeline.run(sequence)
        keys = {pair.key() for pair in report.matches}
        assert (("stream-a", "a1"), ("stream-b", "b1")) in keys

    def test_con_er_never_touches_repository(self, health_repository,
                                             health_config):
        pipeline = build_con_er_pipeline(health_repository, health_config)
        assert not hasattr(pipeline.imputer, "repository")

    def test_ij_ger_uses_grid_and_indexes(self, health_repository, health_config):
        pipeline = IndexedSequentialPipeline(health_repository, health_config)
        assert pipeline.cdd_indexes
        assert len(pipeline.dr_index) == len(health_repository)
        report = pipeline.run(list(MATCHING_SEQUENCE))
        assert report.method == METHOD_IJ_GER
        assert len(pipeline.grid) == len(MATCHING_SEQUENCE)

    def test_baseline_reports_track_breakup(self, health_repository,
                                            health_config):
        pipeline = build_dd_er_pipeline(health_repository, health_config)
        report = pipeline.run(list(MATCHING_SEQUENCE))
        assert report.imputation_seconds >= 0
        assert report.er_seconds > 0
        assert report.mean_seconds_per_timestamp > 0

    def test_er_er_pipeline_runs(self, health_repository, health_config):
        pipeline = build_er_er_pipeline(health_repository, health_config)
        report = pipeline.run(list(MATCHING_SEQUENCE))
        assert report.method == METHOD_ER_ER

    def test_result_set_expiry_in_straightforward(self, health_repository,
                                                  health_config):
        config = health_config.replace(window_size=1)
        pipeline = build_cdd_er_pipeline(health_repository, config)
        pipeline.process(MATCHING_SEQUENCE[0])
        pipeline.process(MATCHING_SEQUENCE[1])
        # Next stream-a tuple evicts a1; pairs involving it must be dropped.
        pipeline.process(MATCHING_SEQUENCE[2])
        assert all(not pair.involves("a1", "stream-a")
                   for pair in pipeline.result_set.pairs())


class TestBaselineVsEngineConsistency:
    def test_ter_ids_and_ij_ger_report_same_pairs(self, health_repository,
                                                  health_config):
        """The index join changes the cost, not the answer set."""
        from repro.core.engine import TERiDSEngine

        engine = TERiDSEngine(repository=health_repository, config=health_config)
        engine_report = engine.run(list(MATCHING_SEQUENCE))
        baseline = IndexedSequentialPipeline(health_repository, health_config)
        baseline_report = baseline.run(list(MATCHING_SEQUENCE))
        assert ({pair.key() for pair in engine_report.matches}
                == {pair.key() for pair in baseline_report.matches})
