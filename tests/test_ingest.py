"""Tests for the async streaming ingestion subsystem (``repro.ingest``).

The heavyweight guarantees:

* **Golden determinism** — driving the pinned golden workloads through
  ``IngestDriver`` + ``ReplaySource`` (lateness 0, any trigger policy)
  reproduces the offline ``SerialExecutor`` goldens bit-identically —
  match sets, result set, pruning and imputation counters;
* **Checkpoint/resume** — a checkpoint taken mid-ingest, restored into a
  fresh engine + driver fed the remaining records, converges to the same
  final state as the uninterrupted offline run;
* **Lateness semantics** — any arrival interleaving within the lateness
  bound is released watermark-monotone (non-decreasing event time) with
  nothing shed; behind-the-watermark arrivals follow the late policy.
"""

import asyncio
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from golden_utils import (
    GOLDEN_WORKLOADS,
    build_config,
    build_workload,
    canonical_matches,
    golden_path,
)
from repro.core.engine import TERiDSEngine
from repro.core.stream import StreamSet, build_stream
from repro.core.tuples import Record
from repro.imputation.cdd import MAINTENANCE_INCREMENTAL, CDDDiscoveryConfig
from repro.ingest import (
    AdaptiveBatcher,
    BatchPolicy,
    CallbackSource,
    IngestDriver,
    LATE_SHED,
    OBSERVED_LATE_ADMITTED,
    OBSERVED_LATE_SHED,
    OBSERVED_READY,
    OBSERVED_REORDERED,
    ReplaySource,
    StreamElement,
    SyntheticRateSource,
    TRIGGER_DEADLINE,
    TRIGGER_DRAIN,
    TRIGGER_SIZE,
    TRIGGER_WATERMARK,
    WatermarkClock,
)
from repro.ingest.driver import _CLOSE, _ITEM
from repro.persistence import load_checkpoint
from repro.runtime import IngestStats, MicroBatchExecutor, SerialExecutor


def _element(event_time, origin="s", rid=None):
    record = Record(rid=rid or f"r{event_time}", values={"a": "x"},
                    source="stream")
    return StreamElement(record=record, event_time=float(event_time),
                         origin=origin)


def _ingest_reference(workload, config, executor=None, policy=None,
                      **driver_kwargs):
    """Run one workload through the ingest driver; canonical observables.

    Mirrors ``golden_utils.run_reference`` so the result compares directly
    against the pinned offline goldens.
    """
    engine = TERiDSEngine(repository=workload.repository, config=config,
                          executor=executor or SerialExecutor())
    driver = IngestDriver(engine,
                          [ReplaySource(workload.interleaved_records())],
                          policy=policy, **driver_kwargs)
    driver.run()
    engine.close()
    stats = engine.pruning.stats
    return {
        "timestamps_processed": engine.timestamps_processed,
        "matches": canonical_matches(driver.matches),
        "result_set": canonical_matches(engine.current_matches()),
        "pruning_stats": {
            "pairs_considered": stats.pairs_considered,
            "pruned_by_topic": stats.pruned_by_topic,
            "pruned_by_similarity": stats.pruned_by_similarity,
            "pruned_by_probability": stats.pruned_by_probability,
            "pruned_by_instance": stats.pruned_by_instance,
            "refined_matches": stats.refined_matches,
            "refined_non_matches": stats.refined_non_matches,
        },
        "imputation_stats": engine.imputer.stats.as_dict(),
    }


# ---------------------------------------------------------------------------
# Golden determinism: ingestion == offline replay, bit for bit
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("dataset,scale,seed,window", GOLDEN_WORKLOADS)
def test_replay_ingestion_matches_offline_goldens(dataset, scale, seed,
                                                  window):
    golden = json.loads(golden_path(dataset).read_text())["reference"]
    workload = build_workload(dataset, scale, seed)
    config = build_config(workload, window)
    got = _ingest_reference(workload, config,
                            policy=BatchPolicy(max_batch=13))
    assert got == golden


def test_replay_ingestion_golden_any_trigger_policy():
    """Deadline and watermark triggers re-chunk but never change answers."""
    dataset, scale, seed, window = GOLDEN_WORKLOADS[0]
    golden = json.loads(golden_path(dataset).read_text())["reference"]
    workload = build_workload(dataset, scale, seed)
    config = build_config(workload, window)
    for policy in (BatchPolicy(max_batch=256, max_delay=0.002),
                   BatchPolicy(max_batch=256, watermark_stride=9.0),
                   BatchPolicy(max_batch=1)):
        got = _ingest_reference(build_workload(dataset, scale, seed),
                                config, policy=policy)
        assert got == golden


def test_replay_ingestion_golden_micro_batch_executor():
    dataset, scale, seed, window = GOLDEN_WORKLOADS[0]
    golden = json.loads(golden_path(dataset).read_text())["reference"]
    workload = build_workload(dataset, scale, seed)
    config = build_config(workload, window)
    got = _ingest_reference(workload, config,
                            executor=MicroBatchExecutor(batch_size=32),
                            policy=BatchPolicy(max_batch=32))
    assert got == golden


def test_replay_of_stream_set_equals_offline_stream_set_run():
    """A StreamSet replay emits the exact round-robin interleaving.

    StreamSet replay stamps per-stream arrival timestamps (unlike the raw
    golden record lists), so the reference here is an offline engine run
    over the same StreamSet interleaving.
    """
    dataset, scale, seed, window = GOLDEN_WORKLOADS[0]
    workload = build_workload(dataset, scale, seed)
    config = build_config(workload, window)

    def make_streams():
        return StreamSet(streams=[
            build_stream("stream-a", workload.stream_a, workload.schema),
            build_stream("stream-b", workload.stream_b, workload.schema),
        ])

    offline = TERiDSEngine(repository=workload.repository, config=config)
    offline_report = offline.run(make_streams().interleaved())

    streams = make_streams()
    engine = TERiDSEngine(repository=workload.repository, config=config)
    driver = IngestDriver(engine, [ReplaySource(streams, name="set")],
                          policy=BatchPolicy(max_batch=17))
    report = driver.run()
    assert report.tuples_processed == streams.total_records()
    assert streams.exhausted
    assert (canonical_matches(driver.matches)
            == canonical_matches(offline_report.matches))
    assert (canonical_matches(engine.current_matches())
            == canonical_matches(offline.current_matches()))


# ---------------------------------------------------------------------------
# Checkpoint mid-ingest → resume → same final state
# ---------------------------------------------------------------------------
def test_mid_ingest_checkpoint_resumes_to_same_final_state(tmp_path):
    dataset, scale, seed, window = GOLDEN_WORKLOADS[0]
    golden = json.loads(golden_path(dataset).read_text())["reference"]
    workload = build_workload(dataset, scale, seed)
    config = build_config(workload, window)
    records = workload.interleaved_records()
    path = tmp_path / "mid_ingest.ckpt.json"

    first = TERiDSEngine(repository=workload.repository, config=config)

    def stop_after_three(driver, _records):
        if driver.batches_processed == 3:
            driver.stop()

    driver1 = IngestDriver(first, [ReplaySource(records)],
                           policy=BatchPolicy(max_batch=10),
                           checkpoint_path=path, on_batch=stop_after_three)
    driver1.run()
    state = load_checkpoint(path)
    consumed = state["timestamps_processed"]
    assert 0 < consumed < len(records)
    assert state["ingest_stats"]["batches_formed"] == driver1.batches_processed
    assert state["ingest"]["clock"]["high"] == {"replay": consumed - 1}

    resumed_workload = build_workload(dataset, scale, seed)
    resumed = TERiDSEngine(repository=resumed_workload.repository,
                           config=config)
    driver2 = IngestDriver(
        resumed,
        [ReplaySource(records[consumed:], start_event_time=consumed)],
        policy=BatchPolicy(max_batch=17, max_delay=0.01))
    driver2.restore_checkpoint(state)
    driver2.run()

    assert resumed.timestamps_processed == golden["timestamps_processed"]
    assert canonical_matches(resumed.current_matches()) == golden["result_set"]
    assert (canonical_matches(driver1.matches + driver2.matches)
            == golden["matches"])
    assert resumed.imputer.stats.as_dict() == golden["imputation_stats"]


def test_close_markers_survive_a_full_arrival_queue():
    """Regression: a source's close marker must reach the mux even when the
    bounded queue is full at end-of-source, or the run never terminates."""
    workload = build_workload(*GOLDEN_WORKLOADS[0][:3])
    config = build_config(workload, 30)
    records = workload.interleaved_records()
    engine = TERiDSEngine(repository=workload.repository, config=config)
    half = len(records) // 2
    driver = IngestDriver(
        engine,
        [ReplaySource(records[:half], name="a"),
         ReplaySource(records[half:], name="b", start_event_time=half)],
        policy=BatchPolicy(max_batch=4),  # no deadline: a lost close hangs
        queue_capacity=1)

    async def bounded_run():
        return await asyncio.wait_for(driver.run_async(), timeout=60)

    report = asyncio.run(bounded_run())
    assert report.tuples_processed == len(records)


def test_checkpoint_serialises_in_flight_elements(tmp_path):
    """A snapshot taken while tuples sit in the batcher and the reorder
    buffer loses nothing: restore re-injects them in the original order."""
    workload = build_workload(*GOLDEN_WORKLOADS[0][:3])
    config = build_config(workload, 30)
    engine = TERiDSEngine(repository=workload.repository, config=config)
    driver = IngestDriver(engine, [ReplaySource([], name="idle")],
                          policy=BatchPolicy(max_batch=10), lateness=2.0)
    # Admit four elements: 0 and 1 become releasable (batcher pending),
    # 5 and 4 stay behind the watermark (reorder buffer).
    for event_time in (0, 1, 5, 4):
        driver._observe(_element(event_time, rid=f"in-flight-{event_time}"))
    asyncio.run(driver._pump(now=0.0))
    assert driver._batcher.pending == 2
    assert driver._clock.buffered == 2

    state = driver.checkpoint()
    assert state["ingest"]["tuples_admitted"] == 4
    in_flight = state["ingest"]["in_flight"]
    assert [row[0] for row in in_flight["pending"]] == [0.0, 1.0]
    assert [row[0] for row in in_flight["buffered"]] == [4.0, 5.0]

    resumed_engine = TERiDSEngine(repository=workload.repository,
                                  config=config)
    seen = []
    resumed = IngestDriver(
        resumed_engine, [ReplaySource([], name="idle")],
        policy=BatchPolicy(max_batch=10), lateness=2.0,
        on_batch=lambda _driver, records: seen.extend(records))
    resumed.restore_checkpoint(state)
    resumed.run()  # the idle source closes; drain flushes the in-flight set
    assert [record.rid for record in seen] == [
        "in-flight-0", "in-flight-1", "in-flight-4", "in-flight-5"]
    assert resumed_engine.timestamps_processed == 4


def test_out_of_order_resume_with_lateness_matches_uninterrupted_run(
        tmp_path):
    """Checkpoint/resume under lateness > 0 and out-of-order arrivals."""
    workload = build_workload(*GOLDEN_WORKLOADS[0][:3])
    config = build_config(workload, 30)
    records = workload.interleaved_records()[:24]
    # Adjacent pairs swapped: out of order within lateness 1, and the cut
    # below falls on a segment boundary so no disorder spans it.
    times = [t for pair in range(12) for t in (2 * pair + 1, 2 * pair)]

    def run_span(engine, span, **driver_kwargs):
        source = CallbackSource(name="push")
        for index in span:
            source.push(records[index], event_time=float(times[index]))
        source.close()
        driver = IngestDriver(engine, [source],
                              policy=BatchPolicy(max_batch=5), lateness=1.0,
                              **driver_kwargs)
        driver.run()
        return driver

    reference = TERiDSEngine(repository=workload.repository, config=config)
    run_span(reference, range(24))

    path = tmp_path / "ooo.ckpt.json"
    first = TERiDSEngine(
        repository=build_workload(*GOLDEN_WORKLOADS[0][:3]).repository,
        config=config)
    run_span(first, range(16), checkpoint_path=path)
    state = load_checkpoint(path)
    assert state["ingest"]["tuples_admitted"] == 16

    resumed = TERiDSEngine(
        repository=build_workload(*GOLDEN_WORKLOADS[0][:3]).repository,
        config=config)
    source = CallbackSource(name="push")
    for index in range(16, 24):
        source.push(records[index], event_time=float(times[index]))
    source.close()
    driver = IngestDriver(resumed, [source],
                          policy=BatchPolicy(max_batch=7), lateness=1.0)
    driver.restore_checkpoint(state)
    driver.run()

    assert resumed.timestamps_processed == reference.timestamps_processed
    assert (canonical_matches(resumed.current_matches())
            == canonical_matches(reference.current_matches()))


def test_single_use_driver_and_validation():
    workload = build_workload(*GOLDEN_WORKLOADS[0][:3])
    config = build_config(workload, 40)
    engine = TERiDSEngine(repository=workload.repository, config=config)
    driver = IngestDriver(engine, [ReplaySource(workload.stream_a[:4])],
                          policy=BatchPolicy(max_batch=4))
    driver.run()
    with pytest.raises(RuntimeError):
        driver.run()
    with pytest.raises(ValueError):
        IngestDriver(engine, [])
    with pytest.raises(ValueError):
        IngestDriver(engine, [ReplaySource([], name="x"),
                              ReplaySource([], name="x")])
    with pytest.raises(ValueError):
        IngestDriver(engine, [ReplaySource([])], queue_capacity=0)
    with pytest.raises(ValueError):
        IngestDriver(engine, [ReplaySource([])], event_time_window=0)
    with pytest.raises(ValueError):
        # Periodic checkpoints without a path would silently write nothing.
        IngestDriver(engine, [ReplaySource([])], checkpoint_every_batches=5)
    # A checkpointed event-time window must match the resumed driver's.
    windowed = IngestDriver(engine, [ReplaySource([], name="w")],
                            event_time_window=10.0)
    snapshot = windowed.checkpoint()
    narrower = IngestDriver(engine, [ReplaySource([], name="n")],
                            event_time_window=5.0)
    with pytest.raises(ValueError):
        narrower.restore_checkpoint(snapshot)


# ---------------------------------------------------------------------------
# Watermark clock: lateness semantics (property-based)
# ---------------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(times=st.lists(st.integers(min_value=0, max_value=30), min_size=1,
                      max_size=32),
       data=st.data())
def test_any_interleaving_within_lateness_bound_is_watermark_monotone(
        times, data):
    """Bounded-displacement arrival orders release in event-time order.

    For an arbitrary arrival permutation, the smallest sufficient lateness
    bound is ``max_i(max(arrival[:i]) - arrival[i])``; with that bound no
    element is late, and the released sequence (hence every formed batch)
    is non-decreasing in event time and loses nothing.
    """
    arrival = data.draw(st.permutations(times))
    lateness = 0
    high = float("-inf")
    for event_time in arrival:
        if high > event_time:
            lateness = max(lateness, high - event_time)
        high = max(high, event_time)

    clock = WatermarkClock(lateness=float(lateness))
    released = []
    for event_time in arrival:
        status = clock.observe(_element(event_time))
        assert status in (OBSERVED_READY, OBSERVED_REORDERED)
        released.extend(clock.release_ready())
    released.extend(clock.drain())

    event_times = [element.event_time for element in released]
    assert event_times == sorted(event_times)  # watermark-monotone
    assert sorted(event_times) == sorted(float(t) for t in times)  # lossless
    # Any chunking of a monotone sequence is monotone, so every batch the
    # batcher forms from this release order is watermark-monotone too.
    stats = IngestStats()
    batcher = AdaptiveBatcher(BatchPolicy(max_batch=5), stats)
    batches = []
    for element in released:
        batch = batcher.add(element, now=0.0)
        if batch:
            batches.append(batch)
    final = batcher.flush(now=0.0)
    if final:
        batches.append(final)
    flattened = [element.event_time for batch in batches for element in batch]
    assert flattened == event_times
    assert stats.tuples_ingested == len(times)


@settings(max_examples=40, deadline=None)
@given(times=st.lists(st.integers(min_value=0, max_value=30), min_size=2,
                      max_size=24),
       data=st.data())
def test_shed_policy_drops_exactly_the_behind_watermark_arrivals(times, data):
    arrival = data.draw(st.permutations(times))
    clock = WatermarkClock(lateness=0.0, late_policy=LATE_SHED)
    released, shed = [], 0
    for event_time in arrival:
        status = clock.observe(_element(event_time))
        if status == OBSERVED_LATE_SHED:
            shed += 1
        released.extend(clock.release_ready())
    released.extend(clock.drain())
    event_times = [element.event_time for element in released]
    assert event_times == sorted(event_times)  # survivors stay monotone
    assert len(event_times) + shed == len(times)


class TestWatermarkClock:
    def test_global_watermark_is_min_over_open_streams(self):
        clock = WatermarkClock(lateness=1.0)
        clock.register("a")
        clock.register("b")
        assert clock.watermark == float("-inf")
        clock.observe(_element(10, origin="a"))
        assert clock.watermark == float("-inf")  # b still silent
        clock.observe(_element(4, origin="b"))
        assert clock.watermark == 3.0  # min(10, 4) - lateness
        clock.close("b")
        assert clock.watermark == 9.0
        clock.close("a")
        assert clock.watermark == float("inf")

    def test_late_admitted_elements_ride_the_next_release(self):
        clock = WatermarkClock(lateness=0.0)
        clock.observe(_element(5))
        assert [e.event_time for e in clock.release_ready()] == [5.0]
        assert clock.observe(_element(2)) == OBSERVED_LATE_ADMITTED
        assert [e.event_time for e in clock.release_ready()] == [2.0]

    def test_restored_closed_sources_do_not_cap_the_watermark(self):
        """Regression: an exhausted source's stale high mark must not hold
        the global watermark after a checkpoint restore."""
        clock = WatermarkClock(lateness=0.0)
        clock.observe(_element(100, origin="a"))
        clock.release_ready()
        clock.close("a")
        fresh = WatermarkClock(lateness=0.0)
        fresh.restore_state(clock.state_to_dict())
        fresh.open("b")  # the resumed driver reads only b
        fresh.observe(_element(150, origin="b"))
        assert fresh.watermark == 150.0  # a stays closed (not min(100, 150))
        assert [e.event_time for e in fresh.release_ready()] == [150.0]
        # A source the new driver lists is re-opened even if the final
        # drain closed it in the snapshot.
        reopened = WatermarkClock(lateness=0.0)
        reopened.restore_state(clock.state_to_dict())
        reopened.open("a")
        assert reopened.watermark == 100.0

    def test_state_roundtrip_restores_high_marks(self):
        clock = WatermarkClock(lateness=0.0)
        clock.observe(_element(7, origin="a"))
        clock.release_ready()
        state = clock.state_to_dict()
        fresh = WatermarkClock(lateness=0.0)
        fresh.restore_state(state)
        # An arrival behind the restored high mark is late again.
        assert fresh.observe(_element(3, origin="a")) == OBSERVED_LATE_ADMITTED

    def test_state_roundtrip_preserves_idle_marks(self):
        """Regression: the idle set was dropped by ``state_to_dict``, so a
        restored clock silently re-counted a stalled source into the global
        watermark — stalling the resumed run until the next idle timeout,
        or forever when the new driver has none."""
        clock = WatermarkClock(lateness=0.0)
        clock.open("live")
        clock.open("stalled")
        clock.observe(_element(5, origin="live"))
        assert clock.mark_idle("stalled")
        state = clock.state_to_dict()
        assert state["idle"] == ["stalled"]
        fresh = WatermarkClock(lateness=0.0)
        fresh.restore_state(state)
        assert fresh.is_idle("stalled")
        assert fresh.watermark == 5.0  # still released, as before the snapshot
        # The restored mark stays revocable: the source's next arrival
        # wakes it, classified against its own stream watermark.
        assert fresh.observe(_element(3, origin="stalled")) == OBSERVED_READY
        assert not fresh.is_idle("stalled")
        assert fresh.watermark == 3.0

    def test_closed_source_wakes_on_new_emission(self):
        """Regression: ``observe`` woke idle sources but not closed ones,
        so a CallbackSource pushed after a drain kept its infinite stream
        watermark and every element of the revived stream counted late."""
        clock = WatermarkClock(lateness=0.0)
        clock.observe(_element(10, origin="a"))
        clock.observe(_element(20, origin="b"))
        clock.release_ready()
        clock.close("a")
        assert clock.watermark == 20.0
        assert clock.observe(_element(11, origin="a")) == OBSERVED_READY
        assert clock.watermark == 11.0  # 'a' counts into the minimum again
        # An element genuinely behind its own stream watermark is still late.
        assert clock.observe(_element(5, origin="a")) == OBSERVED_LATE_ADMITTED

    def test_closed_source_wake_respects_the_shed_policy(self):
        clock = WatermarkClock(lateness=0.0, late_policy=LATE_SHED)
        clock.observe(_element(10, origin="a"))
        clock.release_ready()
        clock.close("a")
        # In order for the revived stream: admitted, not shed.
        assert clock.observe(_element(12, origin="a")) == OBSERVED_READY
        # Behind the revived stream's watermark: shed by policy, as always.
        assert clock.observe(_element(8, origin="a")) == OBSERVED_LATE_SHED

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            WatermarkClock(lateness=-1)
        with pytest.raises(ValueError):
            WatermarkClock(late_policy="bounce")

    def test_restore_rejects_a_different_lateness_bound(self):
        clock = WatermarkClock(lateness=5.0)
        clock.observe(_element(10))
        state = clock.state_to_dict()
        with pytest.raises(ValueError):
            WatermarkClock(lateness=0.0).restore_state(state)
        WatermarkClock(lateness=5.0).restore_state(state)  # same bound: fine


# ---------------------------------------------------------------------------
# Adaptive batcher triggers
# ---------------------------------------------------------------------------
class TestAdaptiveBatcher:
    def _batcher(self, **kwargs):
        stats = IngestStats()
        return AdaptiveBatcher(BatchPolicy(**kwargs), stats), stats

    def test_size_trigger(self):
        batcher, stats = self._batcher(max_batch=3)
        assert batcher.add(_element(0), now=0.0) is None
        assert batcher.add(_element(1), now=0.0) is None
        batch = batcher.add(_element(2), now=0.5)
        assert [e.event_time for e in batch] == [0.0, 1.0, 2.0]
        assert stats.triggers == {TRIGGER_SIZE: 1}
        assert list(stats.formation_latencies) == [0.5]

    def test_deadline_trigger_and_time_until_due(self):
        batcher, stats = self._batcher(max_batch=100, max_delay=0.2)
        assert batcher.time_until_due(now=0.0) is None  # nothing pending
        batcher.add(_element(0), now=1.0)
        assert batcher.time_until_due(now=1.05) == pytest.approx(0.15)
        assert batcher.poll(now=1.1, watermark=0.0) is None  # not yet due
        batch = batcher.poll(now=1.25, watermark=0.0)
        assert len(batch) == 1
        assert stats.triggers == {TRIGGER_DEADLINE: 1}

    def test_watermark_trigger(self):
        batcher, stats = self._batcher(max_batch=100, watermark_stride=10.0)
        batcher.add(_element(0), now=0.0)
        assert batcher.poll(now=0.0, watermark=4.0) is None
        batch = batcher.poll(now=0.0, watermark=11.0)
        assert len(batch) == 1
        assert stats.triggers == {TRIGGER_WATERMARK: 1}
        # The stride is measured from the pending batch's first event when
        # that lies past the last flush watermark.
        batcher.add(_element(12), now=0.0)
        assert batcher.poll(now=0.0, watermark=15.0) is None
        assert batcher.poll(now=0.0, watermark=21.0) is None  # 21 - 12 < 10
        assert batcher.poll(now=0.0, watermark=22.0) is not None

    def test_idle_watermark_progress_does_not_flush_a_later_trickle(self):
        batcher, stats = self._batcher(max_batch=100, watermark_stride=5.0)
        # Watermark races ahead while nothing is pending…
        assert batcher.poll(now=0.0, watermark=50.0) is None
        # …so the next element must wait for a *fresh* stride.
        batcher.add(_element(50), now=0.0)
        assert batcher.poll(now=0.0, watermark=52.0) is None
        assert batcher.poll(now=0.0, watermark=55.0) is not None

    def test_drain_flush(self):
        batcher, stats = self._batcher(max_batch=100)
        assert batcher.flush(now=0.0) is None
        batcher.add(_element(0), now=0.0)
        assert len(batcher.flush(now=0.0)) == 1
        assert stats.triggers == {TRIGGER_DRAIN: 1}

    def test_rejects_bad_policy(self):
        for kwargs in ({"max_batch": 0}, {"max_delay": 0.0},
                       {"watermark_stride": -1.0}):
            with pytest.raises(ValueError):
                BatchPolicy(**kwargs)


# ---------------------------------------------------------------------------
# Sources
# ---------------------------------------------------------------------------
class TestSources:
    def test_callback_source_capacity_and_close(self):
        source = CallbackSource(name="push", capacity=2)
        r = Record(rid="r1", values={"a": "x"}, source="s")
        assert source.push(r)
        assert source.push(r)
        assert not source.push(r)  # full → dropped, surfaced to producer
        assert source.dropped == 1
        source.close()
        assert not source.push(r)  # closed

        async def collect():
            return [element async for element in source]

        elements = asyncio.run(collect())
        assert [e.event_time for e in elements] == [0.0, 1.0]

    def test_callback_source_explicit_event_times(self):
        source = CallbackSource(name="push")
        r = Record(rid="r1", values={"a": "x"}, source="s")
        source.push(r, event_time=10.0)
        source.push(r)  # auto time continues past the explicit one
        source.close()

        async def collect():
            return [element.event_time async for element in source]

        assert asyncio.run(collect()) == [10.0, 11.0]

    def test_synthetic_rate_source_burst_model(self):
        pool = [Record(rid=f"r{i}", values={"a": "x"}, source="s")
                for i in range(5)]
        source = SyntheticRateSource(lambda i: pool[i % len(pool)], count=12,
                                     burst_every=3, burst_size=2)

        async def collect():
            return [element async for element in source]

        elements = asyncio.run(collect())
        assert len(elements) == 12
        assert [e.event_time for e in elements] == [float(i) for i in range(12)]
        assert all(e.origin == "synthetic" for e in elements)

    def test_replay_source_pacing_validation(self):
        with pytest.raises(ValueError):
            ReplaySource([], pace=-0.1)
        with pytest.raises(ValueError):
            SyntheticRateSource(lambda i: None, count=-1)
        with pytest.raises(ValueError):
            SyntheticRateSource(lambda i: None, count=1, rate=0)


# ---------------------------------------------------------------------------
# Driver behaviours: backpressure, event-time expiry, gated absorption
# ---------------------------------------------------------------------------
def test_backpressure_wait_is_counted_when_the_arrival_queue_is_full():
    workload = build_workload(*GOLDEN_WORKLOADS[0][:3])
    config = build_config(workload, 30)
    engine = TERiDSEngine(repository=workload.repository, config=config)
    driver = IngestDriver(engine, [ReplaySource(workload.stream_a[:3])],
                          queue_capacity=1)

    async def scenario():
        queue = asyncio.Queue(maxsize=1)
        driver._queue = queue
        queue.put_nowait((_ITEM, _element(0)))  # pre-filled → reader waits
        task = asyncio.create_task(
            driver._read(ReplaySource(workload.stream_a[:1], name="r"), queue))
        await asyncio.sleep(0.02)
        assert driver.stats.backpressure_waits >= 1
        queue.get_nowait()          # room: the reader's element goes in
        await asyncio.sleep(0.01)
        assert queue.get_nowait()[0] == _ITEM
        await task                  # the close marker now fits too
        assert queue.get_nowait()[0] == _CLOSE

    asyncio.run(scenario())


def test_event_time_window_retracts_expired_pairs():
    dataset, scale, seed, window = GOLDEN_WORKLOADS[0]
    workload = build_workload(dataset, scale, seed)
    config = build_config(workload, window)
    records = workload.interleaved_records()
    horizon = 20.0
    engine = TERiDSEngine(repository=workload.repository, config=config)
    driver = IngestDriver(engine, [ReplaySource(records)],
                          policy=BatchPolicy(max_batch=16),
                          event_time_window=horizon)
    driver.run()

    golden = json.loads(golden_path(dataset).read_text())["reference"]
    # The match stream itself is untouched (expiry only retracts from the
    # maintained result set, mirroring run_time_based).
    assert canonical_matches(driver.matches) == golden["matches"]
    assert driver.stats.expired_by_watermark > 0
    event_of = {(record.source, record.rid): float(index)
                for index, record in enumerate(records)}
    cutoff = (len(records) - 1) - horizon
    for pair in engine.current_matches():
        assert event_of[(pair.left_source, pair.left_rid)] > cutoff
        assert event_of[(pair.right_source, pair.right_rid)] > cutoff


def test_absorb_complete_tuples_is_gated_by_the_config_flag():
    workload = build_workload("citations", 0.4, 7)
    config = build_config(workload, 30)
    records = workload.interleaved_records()[:40]
    complete = [r for r in records if r.is_complete(workload.schema)]
    assert complete  # the workload must exercise the absorption path

    # Flag off (default): nothing is absorbed.
    engine = TERiDSEngine(repository=workload.repository, config=config)
    before = len(engine.repository)
    assert engine.pipeline.maintenance.absorb_complete_stream_tuples(
        records) == 0
    assert len(engine.repository) == before

    # Flag on, driven by the ingest driver, with incremental rule
    # maintenance: the repository grows by exactly the complete tuples.
    grow_config = config.replace(absorb_complete_tuples=True)
    engine2 = TERiDSEngine(
        repository=build_workload("citations", 0.4, 7).repository,
        config=grow_config,
        discovery_config=CDDDiscoveryConfig(
            maintenance_mode=MAINTENANCE_INCREMENTAL))
    before2 = len(engine2.repository)
    driver = IngestDriver(engine2, [ReplaySource(records)],
                          policy=BatchPolicy(max_batch=8))
    report = driver.run()
    assert report.stats.absorbed_samples == len(complete)
    assert len(engine2.repository) == before2 + len(complete)


def test_graceful_stop_drains_admitted_arrivals(tmp_path):
    workload = build_workload(*GOLDEN_WORKLOADS[0][:3])
    config = build_config(workload, 30)
    records = workload.interleaved_records()
    engine = TERiDSEngine(repository=workload.repository, config=config)

    def stop_immediately(driver, _records):
        driver.stop()

    path = tmp_path / "drain.ckpt.json"
    driver = IngestDriver(engine, [ReplaySource(records)],
                          policy=BatchPolicy(max_batch=5),
                          checkpoint_path=path, on_batch=stop_immediately)
    report = driver.run()
    # Stop after the first batch: the driver still drains what was already
    # admitted, then checkpoints.
    assert report.tuples_processed >= 5
    assert report.tuples_processed < len(records)
    state = load_checkpoint(path)
    assert state["timestamps_processed"] == report.tuples_processed


def test_driver_counts_reordered_and_shed_arrivals():
    workload = build_workload(*GOLDEN_WORKLOADS[0][:3])
    config = build_config(workload, 30)
    engine = TERiDSEngine(repository=workload.repository, config=config)
    source = CallbackSource(name="push")
    records = workload.interleaved_records()[:6]
    # Event times: 0, 1, 5 in order, 4 out of order (within lateness 2),
    # 2 behind the watermark (5 - 2 = 3 → shed), 6 in order.
    for record, event_time in zip(records, [0, 1, 5, 4, 2, 6]):
        source.push(record, event_time=float(event_time))
    source.close()
    driver = IngestDriver(engine, [source], policy=BatchPolicy(max_batch=4),
                          lateness=2.0, late_policy=LATE_SHED)
    report = driver.run()
    assert report.tuples_processed == 5  # one shed
    assert report.stats.shed_late == 1
    assert report.stats.reordered == 1
    assert report.stats.admitted_late == 0


def test_restore_preserves_late_admitted_processing_order():
    """Regression: a late-admitted element pending at snapshot time must
    resume in its *processing* position, not re-sorted by event time."""
    workload = build_workload(*GOLDEN_WORKLOADS[0][:3])
    config = build_config(workload, 30)
    engine = TERiDSEngine(repository=workload.repository, config=config)
    driver = IngestDriver(engine, [ReplaySource([], name="idle")],
                          policy=BatchPolicy(max_batch=10))
    driver._clock.open("idle")
    driver._observe(_element(5, origin="idle", rid="first"))
    asyncio.run(driver._pump(now=0.0))
    # Behind the watermark: admitted out of event-time order.
    driver._observe(_element(2, origin="idle", rid="late"))
    asyncio.run(driver._pump(now=0.0))
    assert driver.stats.admitted_late == 1
    assert [e.record.rid
            for e in driver._batcher.pending_elements()] == ["first", "late"]

    state = driver.checkpoint()
    resumed_engine = TERiDSEngine(repository=workload.repository,
                                  config=config)
    seen = []
    resumed = IngestDriver(
        resumed_engine, [ReplaySource([], name="idle")],
        policy=BatchPolicy(max_batch=10),
        on_batch=lambda _driver, records: seen.extend(records))
    resumed.restore_checkpoint(state)
    resumed.run()
    assert [record.rid for record in seen] == ["first", "late"]


def test_stop_with_a_full_arrival_queue_does_not_deadlock():
    """Regression: stop() while a reader is blocked on the full queue must
    still drain and return (the close-marker fallback must not block after
    the reader's cancellation was delivered)."""
    workload = build_workload(*GOLDEN_WORKLOADS[0][:3])
    config = build_config(workload, 30)
    records = workload.interleaved_records()
    engine = TERiDSEngine(repository=workload.repository, config=config)
    driver = IngestDriver(engine, [ReplaySource(records)],
                          policy=BatchPolicy(max_batch=2), queue_capacity=1,
                          on_batch=lambda d, _records: d.stop())

    async def bounded_run():
        return await asyncio.wait_for(driver.run_async(), timeout=60)

    report = asyncio.run(bounded_run())
    assert report.batches_processed >= 1
    assert report.tuples_processed <= len(records)


def test_reorder_buffer_is_bounded_under_a_stalled_source():
    """A silent source must not let the reorder buffer grow without bound:
    beyond reorder_capacity the oldest elements are force-released."""
    workload = build_workload(*GOLDEN_WORKLOADS[0][:3])
    config = build_config(workload, 30)
    engine = TERiDSEngine(repository=workload.repository, config=config)
    driver = IngestDriver(engine,
                          [ReplaySource([], name="a"),
                           CallbackSource(name="b")],  # silent: wm stays -inf
                          policy=BatchPolicy(max_batch=4),
                          reorder_capacity=8)
    driver._clock.open("a")
    driver._clock.open("b")
    for index in range(20):
        driver._observe(_element(index, origin="a",
                                 rid=f"stalled-{index}"))
        asyncio.run(driver._pump(now=0.0))
        assert driver._clock.buffered <= 8
    assert driver.stats.force_released == 12
    # Oldest first, still in event-time order within the overflow.
    assert engine.timestamps_processed == 12


def test_failing_source_raises_after_securing_admitted_data(tmp_path):
    """Regression: a source whose iterator raises must not masquerade as a
    clean exhaustion — the driver drains, checkpoints, then re-raises."""
    workload = build_workload(*GOLDEN_WORKLOADS[0][:3])
    config = build_config(workload, 30)
    pool = workload.interleaved_records()

    class SourceBlew(RuntimeError):
        pass

    def factory(index):
        if index == 5:
            raise SourceBlew("producer bug")
        return pool[index]

    engine = TERiDSEngine(repository=workload.repository, config=config)
    path = tmp_path / "failed.ckpt.json"
    driver = IngestDriver(engine,
                          [SyntheticRateSource(factory, count=17)],
                          policy=BatchPolicy(max_batch=2),
                          checkpoint_path=path)
    with pytest.raises(SourceBlew):
        driver.run()
    # Everything admitted before the failure was still processed and
    # checkpointed.
    assert engine.timestamps_processed == 5
    assert load_checkpoint(path)["timestamps_processed"] == 5


def test_ingest_stats_roundtrip_and_p95():
    stats = IngestStats()
    stats.record_batch(size=4, latency=0.1, queue_depth=3, trigger="size")
    stats.record_batch(size=2, latency=0.5, queue_depth=1, trigger="drain")
    stats.shed_late = 2
    assert stats.max_queue_depth == 3
    assert stats.p95_formation_latency() == 0.1  # index int(.95 * 1)
    state = stats.as_dict()
    fresh = IngestStats()
    fresh.restore(state)
    assert fresh.tuples_ingested == 6
    assert fresh.batches_formed == 2
    assert fresh.shed_late == 2
    assert fresh.triggers == {"size": 1, "drain": 1}
    assert fresh.p95_formation_latency() == 0.0  # latency series not persisted


# ---------------------------------------------------------------------------
# Idle-source watermark timeout (punctuation)
# ---------------------------------------------------------------------------
def test_clock_mark_idle_releases_watermark_and_wakes_on_arrival():
    clock = WatermarkClock()
    clock.open("live")
    clock.open("stalled")
    clock.observe(_element(5, origin="live"))
    assert clock.watermark == float("-inf")  # stalled holds it back
    assert clock.mark_idle("stalled")
    assert not clock.mark_idle("stalled")  # already idle: one transition
    assert clock.is_idle("stalled")
    assert clock.watermark == 5.0
    assert [e.event_time for e in clock.release_ready()] == [5.0]
    # The source rejoins the watermark with its next arrival — which is
    # classified against its own stream watermark, not the idle infinity.
    assert clock.observe(_element(3, origin="stalled")) == OBSERVED_READY
    assert not clock.is_idle("stalled")
    assert clock.watermark == 3.0


def test_clock_mark_idle_ignores_closed_sources():
    clock = WatermarkClock()
    clock.open("done")
    clock.close("done")
    assert not clock.mark_idle("done")
    assert not clock.is_idle("done")


def test_idle_timeout_unblocks_a_stalled_callback_source():
    """A silent CallbackSource holds the global watermark at -inf; with
    idle_timeout the driver marks it idle and the live stream's tuples
    flow.  The source rejoins on close without disturbing the run."""
    workload = build_workload(*GOLDEN_WORKLOADS[0][:3])
    config = build_config(workload, 30)
    records = workload.interleaved_records()[:12]
    engine = TERiDSEngine(repository=workload.repository, config=config)
    stalled = CallbackSource(name="stalled")

    def close_when_done(driver, _batch):
        if driver.tuples_processed >= len(records):
            stalled.close()

    driver = IngestDriver(engine,
                          [ReplaySource(records), stalled],
                          policy=BatchPolicy(max_batch=4),
                          idle_timeout=0.05,
                          on_batch=close_when_done)

    async def bounded_run():
        return await asyncio.wait_for(driver.run_async(), timeout=60)

    report = asyncio.run(bounded_run())
    assert report.tuples_processed == len(records)
    assert report.stats.idle_timeouts >= 1
    assert engine.timestamps_processed == len(records)


def test_idle_timeout_golden_identity_with_live_sources():
    """A timeout that never fires (sources stay live) changes nothing."""
    dataset, scale, seed, window = GOLDEN_WORKLOADS[0]
    golden = json.loads(golden_path(dataset).read_text())["reference"]
    workload = build_workload(dataset, scale, seed)
    config = build_config(workload, window)
    got = _ingest_reference(workload, config,
                            policy=BatchPolicy(max_batch=13),
                            idle_timeout=30.0)
    assert got == golden


def test_restored_idle_source_does_not_stall_the_resumed_run():
    """A source marked idle at snapshot time stays off the watermark when
    the resumed driver re-opens it: the resumed run below has NO idle
    timeout, so only the restored (and preserved) idle mark lets the live
    stream's tuples flow before the stalled source finally closes."""
    workload = build_workload(*GOLDEN_WORKLOADS[0][:3])
    config = build_config(workload, 30)
    records = workload.interleaved_records()[:12]

    setup_engine = TERiDSEngine(repository=workload.repository, config=config)
    setup = IngestDriver(setup_engine,
                         [ReplaySource([]), CallbackSource(name="stalled")])
    setup._clock.open("stalled")
    setup._clock.mark_idle("stalled")
    state = setup.checkpoint()
    assert state["ingest"]["clock"]["idle"] == ["stalled"]

    engine = TERiDSEngine(repository=workload.repository, config=config)
    stalled = CallbackSource(name="stalled")

    def close_when_done(driver, _batch):
        if driver.tuples_processed >= len(records):
            stalled.close()

    driver = IngestDriver(engine, [ReplaySource(records), stalled],
                          policy=BatchPolicy(max_batch=4),
                          on_batch=close_when_done)
    driver.restore_checkpoint(state)

    async def bounded_run():
        return await asyncio.wait_for(driver.run_async(), timeout=60)

    report = asyncio.run(bounded_run())
    assert report.tuples_processed == len(records)
    assert engine.timestamps_processed == len(records)


def test_idle_timeout_validation():
    workload = build_workload(*GOLDEN_WORKLOADS[0][:3])
    config = build_config(workload, 30)
    engine = TERiDSEngine(repository=workload.repository, config=config)
    with pytest.raises(ValueError, match="idle_timeout"):
        IngestDriver(engine, [ReplaySource([])], idle_timeout=0.0)


# ---------------------------------------------------------------------------
# Off-loop batch processing (process_in_executor)
# ---------------------------------------------------------------------------
def test_executor_offload_matches_offline_golden():
    """Running process_batch on the executor thread changes no answers and
    counts one executor wait per processed batch."""
    dataset, scale, seed, window = GOLDEN_WORKLOADS[0]
    golden = json.loads(golden_path(dataset).read_text())["reference"]
    workload = build_workload(dataset, scale, seed)
    config = build_config(workload, window)
    engine = TERiDSEngine(repository=workload.repository, config=config,
                          executor=SerialExecutor())
    driver = IngestDriver(engine,
                          [ReplaySource(workload.interleaved_records())],
                          policy=BatchPolicy(max_batch=13),
                          process_in_executor=True)
    driver.run()
    stats = engine.pruning.stats
    got = {
        "timestamps_processed": engine.timestamps_processed,
        "matches": canonical_matches(driver.matches),
        "result_set": canonical_matches(engine.current_matches()),
        "pruning_stats": {
            "pairs_considered": stats.pairs_considered,
            "pruned_by_topic": stats.pruned_by_topic,
            "pruned_by_similarity": stats.pruned_by_similarity,
            "pruned_by_probability": stats.pruned_by_probability,
            "pruned_by_instance": stats.pruned_by_instance,
            "refined_matches": stats.refined_matches,
            "refined_non_matches": stats.refined_non_matches,
        },
        "imputation_stats": engine.imputer.stats.as_dict(),
    }
    assert got == golden
    assert driver.stats.executor_waits == driver.batches_processed > 0


def test_executor_offload_keeps_sources_live_under_a_slow_engine():
    """While a slow batch refines on the executor thread, paced sources
    keep feeding the arrival queue instead of stalling behind it."""
    workload = build_workload(*GOLDEN_WORKLOADS[0][:3])
    config = build_config(workload, 30)
    records = workload.interleaved_records()[:10]
    engine = TERiDSEngine(repository=workload.repository, config=config)

    real_process_batch = engine.process_batch
    import time as _time

    def slow_process_batch(batch):
        _time.sleep(0.05)
        return real_process_batch(batch)

    engine.process_batch = slow_process_batch
    arrived_during_processing = []
    driver = IngestDriver(engine,
                          [ReplaySource(records, pace=0.005)],
                          policy=BatchPolicy(max_batch=2),
                          process_in_executor=True,
                          on_batch=lambda d, _b: arrived_during_processing
                          .append(d._queue_depth()))
    report = asyncio.run(asyncio.wait_for(driver.run_async(), timeout=60))
    assert report.tuples_processed == len(records)
    assert report.stats.executor_waits == report.batches_processed
    # At least one batch completed with fresh arrivals already queued — the
    # readers were not frozen behind the engine.
    assert max(arrived_during_processing, default=0) >= 1


def test_slow_inline_batches_do_not_mark_live_sources_idle():
    """Regression: a process_batch call that blocks the loop longer than
    idle_timeout must not count as source silence — during the block no
    source *could* have produced, and marking a live source idle would
    release reorder-buffered elements ahead of its queued ones."""
    workload = build_workload(*GOLDEN_WORKLOADS[0][:3])
    config = build_config(workload, 30)
    records = workload.interleaved_records()[:12]
    engine = TERiDSEngine(repository=workload.repository, config=config)

    real_process_batch = engine.process_batch
    import time as _time

    def slow_process_batch(batch):
        _time.sleep(0.12)
        return real_process_batch(batch)

    engine.process_batch = slow_process_batch
    driver = IngestDriver(engine,
                          [ReplaySource(records[:6], name="a"),
                           ReplaySource(records[6:], name="b", pace=0.001)],
                          policy=BatchPolicy(max_batch=3),
                          idle_timeout=0.05)
    report = asyncio.run(asyncio.wait_for(driver.run_async(), timeout=60))
    assert report.tuples_processed == len(records)
    assert report.stats.idle_timeouts == 0
