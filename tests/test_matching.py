"""Unit tests for the TER-iDS probability (Eq. (2)) and the result set."""

import pytest

from repro.core.matching import (
    EntityResultSet,
    MatchPair,
    instance_pair_matches,
    normalise_keywords,
    ter_ids_probability,
    ter_ids_probability_with_cutoff,
    topic_predicate,
)
from repro.core.tuples import ImputedRecord, Instance, Record, Schema

SCHEMA = Schema(attributes=("x", "y"))


def _imputed(rid, x, y, candidates=None, source="s1"):
    record = Record(rid=rid, values={"x": x, "y": y}, source=source)
    return ImputedRecord(base=record, schema=SCHEMA, candidates=candidates or {})


class TestKeywordHandling:
    def test_normalise_keywords(self):
        assert normalise_keywords(["Diabetes", "FLU", ""]) == {"diabetes", "flu"}

    def test_topic_predicate_true(self):
        record = Record(rid="r", values={"x": "diabetes care", "y": "rest"})
        assert topic_predicate(record, frozenset({"diabetes"}), SCHEMA)

    def test_topic_predicate_false(self):
        record = Record(rid="r", values={"x": "fever", "y": "rest"})
        assert not topic_predicate(record, frozenset({"diabetes"}), SCHEMA)

    def test_topic_predicate_empty_keywords(self):
        record = Record(rid="r", values={"x": "fever", "y": "rest"})
        assert not topic_predicate(record, frozenset(), SCHEMA)


class TestInstancePairMatches:
    def test_similar_topical_pair_matches(self):
        left = Instance(Record(rid="l", values={"x": "diabetes sugar", "y": "drug"}), 1.0)
        right = Instance(Record(rid="r", values={"x": "diabetes sugar", "y": "drug"}), 1.0)
        assert instance_pair_matches(left, right, frozenset({"diabetes"}),
                                     gamma=1.0, schema=SCHEMA)

    def test_similar_non_topical_pair_fails_topic(self):
        left = Instance(Record(rid="l", values={"x": "fever chills", "y": "rest"}), 1.0)
        right = Instance(Record(rid="r", values={"x": "fever chills", "y": "rest"}), 1.0)
        assert not instance_pair_matches(left, right, frozenset({"diabetes"}),
                                         gamma=1.0, schema=SCHEMA)

    def test_no_keywords_disables_topic_requirement(self):
        left = Instance(Record(rid="l", values={"x": "fever chills", "y": "rest"}), 1.0)
        right = Instance(Record(rid="r", values={"x": "fever chills", "y": "rest"}), 1.0)
        assert instance_pair_matches(left, right, frozenset(), gamma=1.0,
                                     schema=SCHEMA)

    def test_dissimilar_pair_fails_gamma(self):
        left = Instance(Record(rid="l", values={"x": "diabetes", "y": "a"}), 1.0)
        right = Instance(Record(rid="r", values={"x": "diabetes", "y": "zzz"}), 1.0)
        # similarity = 1.0 (x) + 0.0 (y) = 1.0, not > 1.5
        assert not instance_pair_matches(left, right, frozenset({"diabetes"}),
                                         gamma=1.5, schema=SCHEMA)


class TestTerIdsProbability:
    def test_complete_identical_pair_probability_one(self):
        left = _imputed("l", "diabetes sugar", "drug therapy")
        right = _imputed("r", "diabetes sugar", "drug therapy", source="s2")
        probability = ter_ids_probability(left, right, frozenset({"diabetes"}),
                                          gamma=1.5)
        assert probability == pytest.approx(1.0)

    def test_probability_weights_candidates(self):
        left = _imputed("l", "diabetes sugar", "drug therapy")
        right = _imputed("r", "diabetes sugar", None,
                         candidates={"y": {"drug therapy": 0.6, "surgery": 0.4}},
                         source="s2")
        probability = ter_ids_probability(left, right, frozenset({"diabetes"}),
                                          gamma=1.5)
        # Only the "drug therapy" instance reaches similarity 2.0 > 1.5.
        assert probability == pytest.approx(0.6)

    def test_probability_zero_when_no_topic(self):
        left = _imputed("l", "fever chills", "rest")
        right = _imputed("r", "fever chills", "rest", source="s2")
        assert ter_ids_probability(left, right, frozenset({"diabetes"}),
                                   gamma=1.0) == 0.0

    def test_probability_zero_when_dissimilar(self):
        left = _imputed("l", "diabetes", "alpha beta")
        right = _imputed("r", "flu", "gamma delta", source="s2")
        assert ter_ids_probability(left, right, frozenset({"diabetes"}),
                                   gamma=1.0) == 0.0

    def test_probability_bounded_by_total_mass(self):
        left = _imputed("l", "diabetes sugar", None,
                        candidates={"y": {"drug": 0.5, "rest": 0.3}})
        right = _imputed("r", "diabetes sugar", "drug", source="s2")
        probability = ter_ids_probability(left, right, frozenset({"diabetes"}),
                                          gamma=1.2)
        assert 0.0 <= probability <= 0.8 + 1e-9


class TestCutoffEvaluation:
    def test_cutoff_agrees_with_exact_on_match(self):
        keywords = frozenset({"diabetes"})
        left = _imputed("l", "diabetes sugar", None,
                        candidates={"y": {"drug therapy": 0.7, "surgery": 0.3}})
        right = _imputed("r", "diabetes sugar", "drug therapy", source="s2")
        exact = ter_ids_probability(left, right, keywords, gamma=1.5)
        estimate, is_match, checked = ter_ids_probability_with_cutoff(
            left, right, keywords, gamma=1.5, alpha=0.5)
        assert is_match == (exact > 0.5)
        assert checked >= 1

    def test_cutoff_early_accept(self):
        keywords = frozenset({"diabetes"})
        left = _imputed("l", "diabetes sugar", "drug therapy")
        right = _imputed("r", "diabetes sugar", "drug therapy", source="s2")
        estimate, is_match, checked = ter_ids_probability_with_cutoff(
            left, right, keywords, gamma=1.0, alpha=0.3)
        assert is_match
        assert checked == 1  # the single instance pair already exceeds alpha

    def test_cutoff_early_reject_via_upper_bound(self):
        keywords = frozenset({"diabetes"})
        # 10 equally likely candidates, none of which can match.
        candidates = {f"value{i} unrelated": 0.1 for i in range(10)}
        left = _imputed("l", "diabetes", None, candidates={"y": candidates})
        right = _imputed("r", "flu", "other stuff entirely", source="s2")
        estimate, is_match, checked = ter_ids_probability_with_cutoff(
            left, right, keywords, gamma=1.9, alpha=0.0)
        assert not is_match

    def test_cutoff_never_exceeds_total_pairs(self):
        left = _imputed("l", "diabetes", None,
                        candidates={"y": {"a": 0.5, "b": 0.5}})
        right = _imputed("r", "diabetes", None,
                         candidates={"y": {"a": 0.5, "c": 0.5}}, source="s2")
        _, _, checked = ter_ids_probability_with_cutoff(
            left, right, frozenset({"diabetes"}), gamma=1.0, alpha=0.99)
        assert checked <= len(left.instances()) * len(right.instances())


class TestMatchPair:
    def test_key_is_order_independent(self):
        pair1 = MatchPair("r1", "a", "r2", "b", 0.9)
        pair2 = MatchPair("r2", "b", "r1", "a", 0.8)
        assert pair1.key() == pair2.key()

    def test_involves(self):
        pair = MatchPair("r1", "a", "r2", "b", 0.9)
        assert pair.involves("r1", "a")
        assert pair.involves("r2", "b")
        assert not pair.involves("r1", "b")

    def test_from_records(self):
        left = Record(rid="r1", values={"x": "a"}, source="a")
        right = Record(rid="r2", values={"x": "a"}, source="b")
        pair = MatchPair.from_records(left, right, 0.7, timestamp=3)
        assert pair.left_rid == "r1"
        assert pair.right_source == "b"
        assert pair.probability == 0.7
        assert pair.timestamp == 3


class TestEntityResultSet:
    def test_add_and_len(self):
        result_set = EntityResultSet()
        result_set.add(MatchPair("r1", "a", "r2", "b", 0.9))
        assert len(result_set) == 1

    def test_duplicate_pairs_deduplicated(self):
        result_set = EntityResultSet()
        result_set.add(MatchPair("r1", "a", "r2", "b", 0.9))
        result_set.add(MatchPair("r2", "b", "r1", "a", 0.95))
        assert len(result_set) == 1

    def test_contains(self):
        result_set = EntityResultSet()
        pair = MatchPair("r1", "a", "r2", "b", 0.9)
        result_set.add(pair)
        assert pair in result_set
        assert MatchPair("r9", "a", "r2", "b", 0.9) not in result_set
        assert "not a pair" not in result_set

    def test_remove_record_drops_involving_pairs(self):
        result_set = EntityResultSet()
        result_set.add(MatchPair("r1", "a", "r2", "b", 0.9))
        result_set.add(MatchPair("r1", "a", "r3", "b", 0.9))
        result_set.add(MatchPair("r4", "a", "r5", "b", 0.9))
        removed = result_set.remove_record("r1", "a")
        assert removed == 2
        assert len(result_set) == 1

    def test_extend_and_clear(self):
        result_set = EntityResultSet()
        result_set.extend([MatchPair("r1", "a", "r2", "b", 0.9),
                           MatchPair("r3", "a", "r4", "b", 0.9)])
        assert len(result_set.pairs()) == 2
        assert len(result_set.pair_keys()) == 2
        result_set.clear()
        assert len(result_set) == 0
