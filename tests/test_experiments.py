"""Tests for the experiment harness and the per-figure runners."""

import pytest

from repro.baselines.pipelines import METHOD_CON_ER, METHOD_TER_IDS
from repro.experiments.figures import (
    figure4_pruning_power,
    figure5a_fscore,
    figure5b_wall_clock,
    figure6_breakup_cost,
    figure7_alpha,
    figure11_pivot_selection_cost,
    figure12_cdd_detection_cost,
    figure13_fscore_missing,
    table4_dataset_statistics,
    table5_parameter_settings,
)
from repro.experiments.harness import (
    default_config,
    format_rows,
    make_workload,
    run_method,
    run_methods,
)
from repro.experiments.params import BENCH_GRID, PAPER_GRID, ParameterGrid

# All figure tests run on one tiny workload so the suite stays fast.
TINY = dict(scale=0.25, seed=11)


class TestHarness:
    def test_make_workload_defaults(self):
        workload = make_workload("citations", **TINY)
        assert workload.name == "citations"
        assert workload.total_stream_size() > 0

    def test_default_config_uses_workload_schema_and_keywords(self):
        workload = make_workload("citations", **TINY)
        config = default_config(workload, window_size=10)
        assert config.schema == workload.schema
        assert config.keywords == workload.keywords
        assert config.window_size == 10

    def test_run_method_ter_ids(self):
        workload = make_workload("citations", **TINY)
        config = default_config(workload, window_size=20)
        result = run_method(METHOD_TER_IDS, workload, config)
        assert result.method == METHOD_TER_IDS
        assert result.dataset == "citations"
        assert 0.0 <= result.f_score <= 1.0
        assert result.total_seconds > 0
        assert result.pruning_power
        assert result.breakup

    def test_run_method_baseline(self):
        workload = make_workload("citations", **TINY)
        config = default_config(workload, window_size=20)
        result = run_method(METHOD_CON_ER, workload, config)
        assert result.method == METHOD_CON_ER
        assert result.pairs_evaluated > 0

    def test_run_methods_multiple(self):
        workload = make_workload("citations", **TINY)
        config = default_config(workload, window_size=20)
        results = run_methods([METHOD_TER_IDS, METHOD_CON_ER], workload, config)
        assert [result.method for result in results] == [METHOD_TER_IDS,
                                                         METHOD_CON_ER]

    def test_result_as_row(self):
        workload = make_workload("citations", **TINY)
        config = default_config(workload, window_size=20)
        row = run_method(METHOD_TER_IDS, workload, config).as_row()
        assert {"method", "dataset", "f_score", "wall_clock_sec_per_tuple"} <= set(row)

    def test_format_rows(self):
        rendered = format_rows([{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}])
        assert "a" in rendered and "22" in rendered
        assert format_rows([]) == "(no rows)"


class TestParameterGrid:
    def test_table5_rows_cover_all_parameters(self):
        rows = table5_parameter_settings()
        assert len(rows) == 6
        parameters = {row["parameter"] for row in rows}
        assert any("alpha" in parameter for parameter in parameters)
        assert any("window" in parameter for parameter in parameters)

    def test_paper_grid_uses_paper_windows(self):
        assert 1000 in PAPER_GRID.window_sizes
        assert PAPER_GRID.default_window_size == 1000

    def test_bench_grid_is_scaled_down(self):
        assert max(BENCH_GRID.window_sizes) < max(PAPER_GRID.window_sizes)

    def test_custom_grid(self):
        grid = ParameterGrid(alpha_values=(0.1,), default_alpha=0.1)
        assert grid.as_table()[0]["default"] == 0.1


class TestFigureRunners:
    def test_table4_statistics(self):
        rows = table4_dataset_statistics(datasets=["citations"], scale=0.25)
        assert len(rows) == 1
        assert rows[0]["dataset"] == "citations"

    def test_figure4_rows(self):
        rows = figure4_pruning_power(datasets=["citations"], scale=0.25,
                                     window_size=15)
        assert len(rows) == 1
        row = rows[0]
        assert 0 <= row["total_pruned_pct"] <= 100
        assert row["pairs_considered"] > 0

    def test_figure5a_rows(self):
        rows = figure5a_fscore(datasets=["citations"],
                               methods=[METHOD_TER_IDS, METHOD_CON_ER],
                               scale=0.25, window_size=15)
        assert len(rows) == 2
        assert all(0 <= row["f_score_pct"] <= 100 for row in rows)

    def test_figure5b_rows(self):
        rows = figure5b_wall_clock(datasets=["citations"],
                                   methods=[METHOD_TER_IDS, METHOD_CON_ER],
                                   scale=0.25, window_size=15)
        assert len(rows) == 2
        assert all(row["seconds_per_tuple"] > 0 for row in rows)

    def test_figure6_rows(self):
        rows = figure6_breakup_cost(datasets=["citations"], scale=0.25,
                                    window_size=15)
        assert len(rows) == 1
        row = rows[0]
        assert row["imputation_sec"] >= 0
        assert row["er_sec"] >= 0

    def test_figure7_sweep_shape(self):
        rows = figure7_alpha(dataset="citations", alphas=[0.2, 0.8],
                             methods=[METHOD_TER_IDS], scale=0.25,
                             window_size=15)
        assert len(rows) == 2
        assert {row["alpha"] for row in rows} == {0.2, 0.8}

    def test_figure13_fscore_sweep(self):
        rows = figure13_fscore_missing(dataset="citations", rates=[0.1, 0.5],
                                       methods=[METHOD_TER_IDS], scale=0.25,
                                       window_size=15)
        assert len(rows) == 2
        assert all("f_score_pct" in row for row in rows)

    def test_figure11_pivot_cost(self):
        rows = figure11_pivot_selection_cost(datasets=["citations"],
                                             ratios=[0.2, 0.4],
                                             cnt_max_values=[1, 2], scale=0.25)
        sweeps = {row["sweep"] for row in rows}
        assert sweeps == {"eta", "cntMax"}
        assert all(row["seconds"] >= 0 for row in rows)

    def test_figure12_cdd_detection(self):
        rows = figure12_cdd_detection_cost(datasets=["citations"], scale=0.25)
        assert rows[0]["cdd_rules_detected"] > 0
        assert rows[0]["seconds"] > 0

    def test_sweep_rejects_unknown_parameter(self):
        from repro.experiments.figures import _sweep

        with pytest.raises(ValueError):
            _sweep("bogus", [1], ["citations"], [METHOD_TER_IDS], "time",
                   0.25, 15, 7)
