"""Tests for the zero-copy shared-memory columnar plane (shm-plane ER).

The heavyweight guarantees:

* **Bit-identity** — the shm-backed sharded ER phase (workers mapping the
  plane + journal replay + targeted delta routing) reproduces the serial
  executor's matches, result set and every pruning / grid counter exactly,
  at any shard count, routing on or off, inline or across real processes;
* **Exactly-once backfill** — a cross-region query triggers a lazy record
  backfill at most once per ``(worker, handle)``;
* **Protocol safety** — generation / epoch header mismatches are detected,
  never silently read through;
* **No segment leaks** — pool close, worker crash and engine teardown all
  unlink every ``/dev/shm`` segment (the autouse conftest fixture rechecks
  after every test in the suite).
"""

import json
import os
import signal
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from golden_utils import (
    GOLDEN_WORKLOADS,
    build_config,
    build_workload,
    golden_path,
    run_reference,
)
from repro.core.engine import TERiDSEngine
from repro.runtime import MicroBatchExecutor, SerialExecutor
from repro.runtime import shm_plane
from repro.runtime.shm_plane import (
    HAS_SHM,
    GridJournal,
    ShmArena,
    ShmArenaView,
    ShmGenerationError,
    ShmPlane,
)
from test_sharded_grid import _observables, _run, _small_config, _small_workload

pytestmark = pytest.mark.skipif(
    not HAS_SHM, reason="requires numpy and multiprocessing.shared_memory")


def _shm_executor(workers, batch_size=8, inline=True, delta_routing=True):
    executor = MicroBatchExecutor(batch_size=batch_size, max_workers=workers,
                                  shard_lookup=True, shm_plane=True,
                                  delta_routing=delta_routing)
    executor._shm_inline = inline
    return executor


def _shm_engine(workload, config, workers=2, **kwargs):
    return TERiDSEngine(repository=workload.repository, config=config,
                        executor=_shm_executor(workers, **kwargs))


# ---------------------------------------------------------------------------
# Knob validation
# ---------------------------------------------------------------------------
def test_shm_plane_requires_shard_lookup():
    with pytest.raises(ValueError, match="shard_lookup"):
        MicroBatchExecutor(max_workers=2, shm_plane=True)


def test_shm_plane_requires_vectorized():
    with pytest.raises(ValueError, match="vectorized"):
        MicroBatchExecutor(max_workers=2, shard_lookup=True, shm_plane=True,
                           vectorized=False)


def test_shm_plane_requires_persistent_pool():
    with pytest.raises(ValueError, match="pool_mode"):
        MicroBatchExecutor(max_workers=2, shard_lookup=True, shm_plane=True,
                           pool_mode="per-batch")


# ---------------------------------------------------------------------------
# Golden bit-identity (seed reference), inline + real processes
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_shm_plane_matches_seed_golden(workers):
    dataset, scale, seed, window = GOLDEN_WORKLOADS[0]
    golden = json.loads(golden_path(dataset).read_text())["reference"]
    workload = build_workload(dataset, scale, seed)
    config = build_config(workload, window)
    executor = _shm_executor(workers, batch_size=16)
    try:
        got = run_reference(
            lambda **kwargs: TERiDSEngine(executor=executor, **kwargs),
            workload, config)
    finally:
        executor.close()
    assert got == golden


def test_shm_plane_matches_serial_across_real_processes():
    """The full cross-process protocol — mapped segments, pickled journal,
    need/backfill round-trips — reproduces the serial observables."""
    workload = _small_workload()
    config = _small_config(workload)
    serial = _run(workload, config, SerialExecutor())
    got = _run(workload, config, _shm_executor(2, inline=False))
    assert got == serial


# ---------------------------------------------------------------------------
# Shm determinism property: any shard count, routing on or off
# ---------------------------------------------------------------------------
_PROPERTY_WORKLOAD = _small_workload()
_PROPERTY_SERIAL = _run(_PROPERTY_WORKLOAD,
                        _small_config(_PROPERTY_WORKLOAD), SerialExecutor())


@given(regions=st.sampled_from([1, 2, 4, 8]),
       batch_size=st.integers(min_value=1, max_value=9),
       delta_routing=st.booleans())
@settings(max_examples=12, deadline=None)
def test_shm_plane_bit_identical_to_serial(regions, batch_size,
                                           delta_routing):
    config = _small_config(_PROPERTY_WORKLOAD)
    got = _run(_PROPERTY_WORKLOAD, config,
               _shm_executor(regions, batch_size=batch_size,
                             delta_routing=delta_routing))
    assert got == _PROPERTY_SERIAL


def test_shm_plane_broadcast_and_routed_pools_identical():
    """Routing is a pure transport optimisation: the routed pool and the
    replicated-broadcast pool produce identical matches and counters, and
    routing strictly reduces the synopses shipped."""
    workload = _small_workload()
    config = _small_config(workload)

    routed_executor = _shm_executor(4)
    broadcast_executor = _shm_executor(4, delta_routing=False)
    routed_engine = TERiDSEngine(repository=workload.repository,
                                 config=config, executor=routed_executor)
    broadcast_engine = TERiDSEngine(repository=workload.repository,
                                    config=config,
                                    executor=broadcast_executor)
    try:
        routed = _observables(
            routed_engine,
            routed_engine.run(workload.interleaved_records()).matches)
        broadcast = _observables(
            broadcast_engine,
            broadcast_engine.run(workload.interleaved_records()).matches)
        assert routed == broadcast
        routed_transport = routed_engine.pipeline.ctx.transport
        broadcast_transport = broadcast_engine.pipeline.ctx.transport
        # Broadcast ships every arrival to every worker; routing plus its
        # backfills must come in strictly under that.
        assert broadcast_transport.deltas_routed \
            == 4 * broadcast_transport.orders_shipped
        assert (routed_transport.deltas_routed + routed_transport.backfills
                < broadcast_transport.deltas_routed)
        assert broadcast_transport.backfills == 0
        assert routed_transport.shm_bytes_mapped > 0
    finally:
        routed_engine.close()
        broadcast_engine.close()


# ---------------------------------------------------------------------------
# Targeted routing: lazy backfill is exactly-once per (worker, handle)
# ---------------------------------------------------------------------------
def test_cross_region_queries_backfill_exactly_once():
    workload = _small_workload()
    config = _small_config(workload)
    executor = _shm_executor(4)
    engine = TERiDSEngine(repository=workload.repository, config=config,
                          executor=executor)
    try:
        engine.run(workload.interleaved_records())
        log = executor._shm_pool.backfill_log
        transport = engine.pipeline.ctx.transport
        # This workload does produce cross-region references...
        assert transport.backfills > 0
        # ...each served exactly once: re-referencing a backfilled handle
        # must hit the worker's residency, not the wire.
        assert len(log) == len(set(log))
        assert transport.backfills == len(log)
    finally:
        engine.close()


# ---------------------------------------------------------------------------
# Checkpoint / restore (segments are process-local scratch)
# ---------------------------------------------------------------------------
def test_shm_checkpoint_restore_mid_stream_into_fresh_pool():
    workload = _small_workload()
    config = _small_config(workload)
    records = list(workload.interleaved_records())
    half = len(records) // 2

    uninterrupted = _run(workload, config, SerialExecutor())

    first = _shm_engine(workload, config)
    try:
        matches = list(first.process_batch(records[:half]))
        state = first.checkpoint()
    finally:
        first.close()

    resumed = _shm_engine(workload, config)
    try:
        resumed.restore_checkpoint(state)
        matches.extend(resumed.process_batch(records[half:]))
        got = _observables(resumed, matches)
    finally:
        resumed.close()
    assert got == uninterrupted


def test_shm_pool_self_heals_after_restore_into_same_engine():
    """Restoring into the same engine leaves the workers' membership
    mirrors stale; the next batch's reset snapshot must repair them."""
    workload = _small_workload()
    config = _small_config(workload)
    records = list(workload.interleaved_records())
    half = len(records) // 2

    uninterrupted = _run(workload, config, SerialExecutor())

    engine = _shm_engine(workload, config)
    try:
        matches = list(engine.process_batch(records[:half]))
        state = engine.checkpoint()
        engine.process_batch(records[half:])
        engine.restore_checkpoint(state)
        matches.extend(engine.process_batch(records[half:]))
        got = _observables(engine, matches)
    finally:
        engine.close()
    assert got == uninterrupted


def test_shm_transport_scalars_ride_in_checkpoints():
    workload = _small_workload()
    config = _small_config(workload)
    engine = _shm_engine(workload, config, workers=4)
    try:
        engine.run(workload.interleaved_records())
        transport = engine.pipeline.ctx.transport
        assert transport.deltas_routed > 0
        state = engine.checkpoint()
    finally:
        engine.close()
    for name in ("deltas_routed", "backfills", "shm_bytes_mapped"):
        assert state["transport_stats"][name] == getattr(transport, name)
    restored = _shm_engine(workload, config)
    try:
        restored.restore_checkpoint(state)
        for name in ("deltas_routed", "backfills", "shm_bytes_mapped"):
            assert getattr(restored.pipeline.ctx.transport, name) \
                == getattr(transport, name)
    finally:
        restored.close()


# ---------------------------------------------------------------------------
# Protocol safety: generation / epoch validation
# ---------------------------------------------------------------------------
def test_view_rejects_generation_mismatch():
    arena = ShmArena("test")
    try:
        arena.rebuild([("data", (4, 2), "f8")])
        descriptor = dict(arena.descriptor())
        descriptor["generation"] = descriptor["generation"] + 1
        view = ShmArenaView()
        with pytest.raises(ShmGenerationError, match="generation"):
            view.attach(descriptor)
        # An already-attached view re-verifies on every attach call.
        view.attach(arena.descriptor())
        with pytest.raises(ShmGenerationError, match="generation"):
            view.attach(descriptor)
        view.close()
    finally:
        arena.close()


def test_view_rejects_epoch_mismatch():
    arena = ShmArena("test")
    view = ShmArenaView()
    try:
        arena.rebuild([("data", (4, 2), "f8")])
        arena.set_epoch(3)
        view.attach(arena.descriptor())
        view.check_epoch(3)
        with pytest.raises(ShmGenerationError, match="epoch"):
            view.check_epoch(4)
    finally:
        view.close()
        arena.close()


def test_view_arrays_are_read_only():
    arena = ShmArena("test")
    view = ShmArenaView()
    try:
        arrays = arena.rebuild([("data", (4, 2), "f8")])
        arrays["data"][1, 1] = 7.5
        view.attach(arena.descriptor())
        assert view.arrays["data"][1, 1] == 7.5
        with pytest.raises((ValueError, RuntimeError)):
            view.arrays["data"][0, 0] = 1.0
    finally:
        view.close()
        arena.close()


def test_arena_growth_prefix_copies_and_retires_old_segment():
    arena = ShmArena("test")
    view = ShmArenaView()
    try:
        arrays = arena.rebuild([("data", (4, 2), "f8")])
        arrays["data"][:] = 1.25
        first_descriptor = arena.descriptor()
        view.attach(first_descriptor)
        assert len(shm_plane.active_segment_names()) == 1

        arrays = arena.rebuild([("data", (16, 2), "f8")])
        assert float(arrays["data"][3, 1]) == 1.25  # prefix carried over
        assert float(arrays["data"][4, 0]) == 0.0   # fresh rows zeroed
        # Old generation already unlinked (the view still maps it safely).
        assert shm_plane.active_segment_names() == [arena.descriptor()["segment"]]
        assert view.arrays["data"][0, 0] == 1.25
        # The stale descriptor is now detectable.
        view.attach(arena.descriptor())
        assert view.arrays["data"].shape == (16, 2)
    finally:
        view.close()
        arena.close()


# ---------------------------------------------------------------------------
# Segment lifecycle: close / crash / leak accounting
# ---------------------------------------------------------------------------
def test_engine_close_unlinks_all_segments_and_localizes_stores():
    workload = _small_workload()
    config = _small_config(workload)
    engine = _shm_engine(workload, config)
    records = list(workload.interleaved_records())
    half = len(records) // 2
    try:
        engine.process_batch(records[:half])
        assert shm_plane.active_segment_names()
        assert shm_plane.scan_dev_shm()
        grid = engine.pipeline.ctx.grid
        assert grid.packed_store.arena is not None
        assert grid.cell_store.arena is not None
    finally:
        engine.close()
    shm_plane._sweep_stale()
    assert shm_plane.active_segment_names() == []
    assert shm_plane.scan_dev_shm() == []
    # The stores were localised out of the unlinked arenas: the engine
    # keeps working serially after its executor is gone.
    assert grid.packed_store.arena is None
    assert grid.cell_store.arena is None
    engine.executor = SerialExecutor()
    engine.process_batch(records[half:])


def test_worker_crash_surfaces_and_segments_still_unlink():
    workload = _small_workload()
    config = _small_config(workload)
    executor = _shm_executor(2, inline=False)
    engine = TERiDSEngine(repository=workload.repository, config=config,
                          executor=executor)
    records = list(workload.interleaved_records())
    try:
        engine.process_batch(records[:10])
        victim = executor._shm_pool._processes[0]
        os.kill(victim.pid, signal.SIGKILL)
        deadline = time.monotonic() + 10
        while victim.is_alive() and time.monotonic() < deadline:
            time.sleep(0.05)
        with pytest.raises(RuntimeError):
            engine.process_batch(records[10:20])
    finally:
        engine.close()
    shm_plane._sweep_stale()
    assert shm_plane.active_segment_names() == []
    assert shm_plane.scan_dev_shm() == []


def test_journal_pre_image_capture_is_first_wins():
    import numpy as np

    journal = GridJournal()
    journal.capture_pre(3, np.array([1.0, 2.0]), np.array([3.0, 4.0]))
    journal.capture_pre(3, np.array([9.0, 9.0]), np.array([9.0, 9.0]))
    assert journal.drain_pre() == {3: ((1.0, 2.0), (3.0, 4.0))}
    assert journal.drain_pre() == {}


def test_plane_nbytes_tracks_both_arenas():
    plane = ShmPlane()
    try:
        assert plane.nbytes == 0
        plane.packed.rebuild([("data", (8, 3), "f8")])
        plane.cells.rebuild([("lb", (8, 3), "f8"), ("ub", (8, 3), "f8")])
        assert plane.nbytes == plane.packed.nbytes + plane.cells.nbytes > 0
    finally:
        plane.close()
    assert plane.nbytes == 0
