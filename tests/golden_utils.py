"""Golden-fixture helpers for the runtime regression tests.

The JSON files under ``tests/data/`` pin the exact match sets (and the
pruning / imputation counters) produced by the *seed* single-tuple engine on
fixed synthetic workloads.  The staged runtime's ``SerialExecutor`` must
reproduce them bit-identically; the ``MicroBatchExecutor`` must reproduce the
match sets (counters may be accumulated in a different grouping but end up
identical too, which the tests also assert).

Regenerate (only when the *intended* semantics change) with::

    PYTHONPATH=src python tests/golden_utils.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.config import TERiDSConfig
from repro.core.engine import TERiDSEngine
from repro.datasets.synthetic import generate_dataset
from repro.experiments.harness import run_evolving_stream, split_repository
from repro.imputation.cdd import MAINTENANCE_INCREMENTAL, CDDDiscoveryConfig

DATA_DIR = Path(__file__).resolve().parent / "data"

#: The pinned workloads: (dataset, scale, seed, window_size).
GOLDEN_WORKLOADS = (
    ("citations", 0.5, 7, 40),
    ("anime", 0.5, 5, 30),
)

#: The evolving-repository workload (Section 5.5): one pinned stream whose
#: repository absorbs the held-out sample tail mid-stream, with the rules
#: maintained incrementally.  (dataset, scale, seed, window_size).
EVOLVING_WORKLOAD = ("citations", 0.5, 7, 40)
EVOLVING_HOLDOUT_FRACTION = 0.3
EVOLVING_PHASES = 3


def golden_path(dataset: str) -> Path:
    return DATA_DIR / f"golden_{dataset}.json"


def evolving_golden_path() -> Path:
    return DATA_DIR / "golden_evolving_repo.json"


def evolving_discovery_config() -> CDDDiscoveryConfig:
    """Discovery config pinned by the evolving-repository golden fixture."""
    return CDDDiscoveryConfig(maintenance_mode=MAINTENANCE_INCREMENTAL)


def build_workload(dataset: str, scale: float, seed: int):
    return generate_dataset(dataset, missing_rate=0.3, scale=scale, seed=seed)


def build_config(workload, window_size: int) -> TERiDSConfig:
    return TERiDSConfig(
        schema=workload.schema,
        keywords=workload.keywords,
        alpha=0.5,
        similarity_ratio=0.5,
        window_size=window_size,
    )


def canonical_matches(matches) -> list:
    """Order-independent, probability-exact canonical form of a match list."""
    rows = [
        {
            "left": [pair.left_source, pair.left_rid],
            "right": [pair.right_source, pair.right_rid],
            "probability": pair.probability,
            "timestamp": pair.timestamp,
        }
        for pair in matches
    ]
    rows.sort(key=lambda row: (row["left"], row["right"], row["timestamp"]))
    return rows


def run_reference(engine_factory, workload, config) -> dict:
    """Run one engine over a workload and canonicalise the observable output."""
    engine = engine_factory(repository=workload.repository, config=config)
    report = engine.run(workload.interleaved_records())
    return {
        "timestamps_processed": report.timestamps_processed,
        "matches": canonical_matches(report.matches),
        "result_set": canonical_matches(engine.current_matches()),
        "pruning_stats": {
            "pairs_considered": report.pruning_stats.pairs_considered,
            "pruned_by_topic": report.pruning_stats.pruned_by_topic,
            "pruned_by_similarity": report.pruning_stats.pruned_by_similarity,
            "pruned_by_probability": report.pruning_stats.pruned_by_probability,
            "pruned_by_instance": report.pruning_stats.pruned_by_instance,
            "refined_matches": report.pruning_stats.refined_matches,
            "refined_non_matches": report.pruning_stats.refined_non_matches,
        },
        "imputation_stats": report.imputation_stats.as_dict(),
    }


def run_evolving_reference(engine_factory, workload, config) -> dict:
    """Run the evolving-repository scenario and canonicalise the output.

    The engine starts from the head of the workload repository; the held-out
    tail is absorbed in tranches between stream phases (incremental rule
    maintenance).  The maintained rule-id sequence is pinned alongside the
    matches so executor-independence of the maintenance path is asserted
    too.
    """
    base, holdout = split_repository(workload.repository,
                                     EVOLVING_HOLDOUT_FRACTION)
    engine = engine_factory(repository=base, config=config,
                            discovery_config=evolving_discovery_config())
    matches = run_evolving_stream(engine, workload.interleaved_records(),
                                  holdout, phases=EVOLVING_PHASES)
    return {
        "timestamps_processed": engine.timestamps_processed,
        "matches": canonical_matches(matches),
        "result_set": canonical_matches(engine.current_matches()),
        "rules": [rule.rule_id for rule in engine.rules],
        "imputation_stats": engine.imputer.stats.as_dict(),
    }


def generate_goldens() -> None:
    DATA_DIR.mkdir(exist_ok=True)
    for dataset, scale, seed, window in GOLDEN_WORKLOADS:
        workload = build_workload(dataset, scale, seed)
        config = build_config(workload, window)
        payload = {
            "dataset": dataset,
            "scale": scale,
            "seed": seed,
            "window_size": window,
            "reference": run_reference(TERiDSEngine, workload, config),
        }
        path = golden_path(dataset)
        path.write_text(json.dumps(payload, indent=2))
        print(f"wrote {path} "
              f"({len(payload['reference']['matches'])} matches)")


def generate_evolving_golden() -> None:
    DATA_DIR.mkdir(exist_ok=True)
    dataset, scale, seed, window = EVOLVING_WORKLOAD
    workload = build_workload(dataset, scale, seed)
    config = build_config(workload, window)
    payload = {
        "dataset": dataset,
        "scale": scale,
        "seed": seed,
        "window_size": window,
        "holdout_fraction": EVOLVING_HOLDOUT_FRACTION,
        "phases": EVOLVING_PHASES,
        "reference": run_evolving_reference(TERiDSEngine, workload, config),
    }
    path = evolving_golden_path()
    path.write_text(json.dumps(payload, indent=2))
    print(f"wrote {path} ({len(payload['reference']['matches'])} matches, "
          f"{len(payload['reference']['rules'])} rules)")


if __name__ == "__main__":
    generate_goldens()
    generate_evolving_golden()
