"""Checkpoint / restore tests: pause a stream, resume, identical answers."""

import json

import pytest

from golden_utils import build_config, build_workload, canonical_matches
from repro.core.engine import TERiDSEngine
from repro.core.tuples import Record
from repro.persistence import load_checkpoint, save_checkpoint
from repro.runtime import MicroBatchExecutor, SerialExecutor


def _fresh(workload, window, executor=None):
    return TERiDSEngine(repository=workload.repository,
                        config=build_config(workload, window),
                        executor=executor)


@pytest.mark.parametrize("resume_executor_factory", [
    lambda: SerialExecutor(),
    lambda: MicroBatchExecutor(batch_size=16),
], ids=["resume-serial", "resume-micro-batch"])
def test_checkpoint_restore_resume_equals_uninterrupted(tmp_path,
                                                        resume_executor_factory):
    """Run N tuples, checkpoint, restore into a fresh engine, run M more."""
    dataset, scale, seed, window = "citations", 0.5, 7, 40
    split = 50

    # Uninterrupted reference run.
    reference_workload = build_workload(dataset, scale, seed)
    reference = _fresh(reference_workload, window)
    reference_report = reference.run(reference_workload.interleaved_records())

    # Interrupted run: N tuples, checkpoint to disk, restore, M more tuples.
    workload = build_workload(dataset, scale, seed)
    records = list(workload.interleaved_records())
    first = _fresh(workload, window)
    first_matches = []
    for record in records[:split]:
        first_matches.extend(first.process(record))
    path = tmp_path / "engine.ckpt.json"
    first.save_checkpoint(path)

    resumed = _fresh(workload, window, executor=resume_executor_factory())
    resumed.load_checkpoint(path)
    assert resumed.timestamps_processed == split
    resumed_matches = list(first_matches)
    resumed_matches.extend(resumed.process_batch(records[split:]))
    resumed.close()

    assert (canonical_matches(resumed_matches)
            == canonical_matches(reference_report.matches))
    assert (canonical_matches(resumed.current_matches())
            == canonical_matches(reference.current_matches()))
    assert resumed.timestamps_processed == reference.timestamps_processed
    assert (resumed.imputer.stats.as_dict()
            == reference.imputer.stats.as_dict())
    assert (resumed.pruning.stats.pairs_considered
            == reference.pruning.stats.pairs_considered)
    assert resumed.pruning.stats.total_pruned == reference.pruning.stats.total_pruned


def test_checkpoint_roundtrip_preserves_state(health_repository, health_config):
    engine = TERiDSEngine(repository=health_repository, config=health_config)
    posts = [
        Record(rid="a1", values={"gender": "male",
                                 "symptom": "loss of weight blurred vision",
                                 "diagnosis": "diabetes",
                                 "treatment": "drug therapy"},
               source="stream-a", timestamp=0),
        Record(rid="b1", values={"gender": "male",
                                 "symptom": "loss of weight blurred vision",
                                 "diagnosis": None,
                                 "treatment": "drug therapy"},
               source="stream-b", timestamp=0),
    ]
    for post in posts:
        engine.process(post)
    assert len(engine.result_set) == 1

    state = engine.checkpoint()
    clone = TERiDSEngine(repository=health_repository, config=health_config)
    clone.restore_checkpoint(state)

    assert clone.timestamps_processed == engine.timestamps_processed
    assert clone.result_set.pair_keys() == engine.result_set.pair_keys()
    assert len(clone.grid) == len(engine.grid)
    for synopsis in engine.grid.synopses():
        restored = clone.grid.get_synopsis(synopsis.record.rid,
                                           synopsis.record.source)
        assert restored is not None
        assert restored.distance_bounds == synopsis.distance_bounds
        assert restored.token_size_bounds == synopsis.token_size_bounds
        assert restored.may_have_keyword == synopsis.may_have_keyword
        assert restored.record.candidates == synopsis.record.candidates
    assert clone.imputer.stats.as_dict() == engine.imputer.stats.as_dict()
    assert clone.timer.totals == engine.timer.totals


def test_checkpoint_file_roundtrip_and_validation(tmp_path, health_repository,
                                                  health_config):
    engine = TERiDSEngine(repository=health_repository, config=health_config)
    engine.process(Record(rid="a1",
                          values={"gender": "male", "symptom": "thirst",
                                  "diagnosis": "diabetes",
                                  "treatment": "insulin"},
                          source="stream-a"))
    path = tmp_path / "state.json"
    engine.save_checkpoint(path)

    # The file is a versioned envelope around the state dict.
    payload = json.loads(path.read_text())
    assert payload["format"] == "ter-ids-checkpoint"
    assert payload["version"] == 1
    assert load_checkpoint(path) == engine.checkpoint()

    # Tampered envelopes are rejected.
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"format": "something-else", "state": {}}))
    with pytest.raises(ValueError):
        load_checkpoint(bad)
    stale = tmp_path / "stale.json"
    stale.write_text(json.dumps({"format": "ter-ids-checkpoint",
                                 "version": 999, "state": {}}))
    with pytest.raises(ValueError):
        load_checkpoint(stale)

    # save_checkpoint accepts any state dict (runtime owns the schema).
    save_checkpoint({"timestamps_processed": 0}, tmp_path / "minimal.json")
    assert load_checkpoint(tmp_path / "minimal.json") == {
        "timestamps_processed": 0}


def test_restore_into_smaller_window_keeps_grid_consistent(tmp_path):
    """Shrinking the window across a restore must not desync grid/windows."""
    workload = build_workload("citations", 0.4, 2)
    config = build_config(workload, 20)
    engine = TERiDSEngine(repository=workload.repository, config=config)
    records = list(workload.interleaved_records())
    for record in records[:30]:
        engine.process(record)
    path = tmp_path / "wide.json"
    engine.save_checkpoint(path)

    shrunk = TERiDSEngine(repository=workload.repository,
                          config=config.replace(window_size=3))
    shrunk.load_checkpoint(path)
    window_total = sum(len(window) for window in shrunk.windows.values())
    assert all(len(window) <= 3 for window in shrunk.windows.values())
    assert len(shrunk.grid) == window_total
    for pair in shrunk.result_set.pairs():
        assert shrunk.grid.contains(pair.left_rid, pair.left_source)
        assert shrunk.grid.contains(pair.right_rid, pair.right_source)


def test_restore_clears_previous_online_state(health_repository, health_config):
    engine = TERiDSEngine(repository=health_repository, config=health_config)
    empty_state = engine.checkpoint()
    engine.process(Record(rid="a1",
                          values={"gender": "male", "symptom": "thirst",
                                  "diagnosis": "diabetes",
                                  "treatment": "insulin"},
                          source="stream-a"))
    assert len(engine.grid) == 1
    engine.restore_checkpoint(empty_state)
    assert len(engine.grid) == 0
    assert engine.timestamps_processed == 0
    assert len(engine.result_set) == 0
    assert all(len(window) == 0 for window in engine.windows.values())
