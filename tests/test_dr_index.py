"""Unit tests for the DR-index I_R over the data repository (Section 5.1)."""

import pytest

from repro.core.tuples import Record
from repro.imputation.cdd import discover_cdd_rules
from repro.indexes.dr_index import DRIndex


@pytest.fixture
def dr_index(health_repository, health_pivots):
    return DRIndex(health_repository, health_pivots, keywords=["diabetes", "flu"])


@pytest.fixture
def health_rules(health_repository):
    return discover_cdd_rules(health_repository)


class TestConstruction:
    def test_every_sample_indexed(self, dr_index, health_repository):
        assert len(dr_index) == len(health_repository)

    def test_height_positive(self, dr_index):
        assert dr_index.height >= 1

    def test_root_keywords_aggregate(self, dr_index):
        keywords = dr_index.root_keywords()
        assert "diabetes" in keywords
        assert "flu" in keywords

    def test_no_keywords_configured(self, health_repository, health_pivots):
        index = DRIndex(health_repository, health_pivots)
        assert index.root_keywords() == frozenset()


class TestCandidateSamples:
    def test_no_false_dismissals(self, dr_index, health_repository, health_rules,
                                 incomplete_health_record):
        """Every sample that exactly satisfies a rule must be returned."""
        for rule in health_rules:
            if rule.dependent != "diagnosis":
                continue
            if not rule.applicable_to(incomplete_health_record, "diagnosis"):
                continue
            exact = {sample.rid for sample in health_repository.samples
                     if rule.matches_sample(incomplete_health_record, sample)}
            candidates = {sample.rid for sample in
                          dr_index.candidate_samples(incomplete_health_record, rule)}
            assert exact <= candidates, rule.describe()

    def test_rule_with_missing_determinant_returns_nothing(self, dr_index,
                                                           health_rules,
                                                           health_repository):
        record = Record(rid="r", values={name: None
                                         for name in health_repository.schema})
        for rule in health_rules[:10]:
            assert dr_index.candidate_samples(record, rule) == []

    def test_nodes_visited_increases(self, dr_index, health_rules,
                                     incomplete_health_record):
        before = dr_index.nodes_visited
        applicable = [rule for rule in health_rules
                      if rule.applicable_to(incomplete_health_record, "diagnosis")]
        if applicable:
            dr_index.candidate_samples(incomplete_health_record, applicable[0])
            assert dr_index.nodes_visited > before

    def test_retriever_hook(self, dr_index, health_rules, incomplete_health_record):
        retriever = dr_index.make_retriever()
        applicable = [rule for rule in health_rules
                      if rule.applicable_to(incomplete_health_record, "diagnosis")]
        if applicable:
            samples = retriever(incomplete_health_record, applicable[0])
            assert isinstance(samples, list)


class TestRangeQueryAndMaintenance:
    def test_full_range_query_returns_everything(self, dr_index, health_repository):
        intervals = [(0.0, 1.0)] * len(health_repository.schema)
        assert len(dr_index.range_query(intervals)) == len(health_repository)

    def test_narrow_range_query_subset(self, dr_index, health_repository):
        intervals = [(0.0, 0.2)] * len(health_repository.schema)
        results = dr_index.range_query(intervals)
        assert len(results) <= len(health_repository)

    def test_insert_sample_updates_repository_and_index(self, dr_index,
                                                        health_repository,
                                                        health_schema):
        before = len(dr_index)
        new_sample = Record(rid="new", values={
            "gender": "female", "symptom": "thirst fatigue",
            "diagnosis": "diabetes", "treatment": "insulin"}, source="repository")
        dr_index.insert_sample(new_sample)
        assert len(dr_index) == before + 1
        assert health_repository.sample_by_rid("new") is not None
        # The new sample must be reachable through a full range query.
        intervals = [(0.0, 1.0)] * len(health_schema)
        assert any(sample.rid == "new" for sample in dr_index.range_query(intervals))
