"""Unit tests for the four pruning strategies (Theorems 4.1-4.4, Lemmas 4.1-4.3).

The crucial property throughout is *safety*: a pruned pair must never be a
true TER-iDS answer.  Every bound is therefore checked against the exact
probability / similarity computed by brute force over the instances.
"""

import pytest

from repro.core.matching import ter_ids_probability
from repro.core.pruning import (
    PruningPipeline,
    PruningStats,
    RecordSynopsis,
    min_attribute_distance,
    probability_prune,
    probability_upper_bound,
    similarity_prune,
    similarity_upper_bound,
    similarity_upper_bound_by_pivot,
    similarity_upper_bound_by_size,
    topic_keyword_prune,
)
from repro.core.similarity import record_similarity
from repro.core.tuples import ImputedRecord, Record, Schema
from repro.imputation.repository import DataRepository
from repro.indexes.pivots import PivotSelectionConfig, select_pivots

SCHEMA = Schema(attributes=("symptom", "diagnosis"))


def _pivots():
    samples = [
        Record(rid="p0", values={"symptom": "fever cough chills",
                                 "diagnosis": "flu"}),
        Record(rid="p1", values={"symptom": "weight loss blurred vision",
                                 "diagnosis": "diabetes"}),
        Record(rid="p2", values={"symptom": "red eye itchy",
                                 "diagnosis": "conjunctivitis"}),
        Record(rid="p3", values={"symptom": "chest pain palpitation",
                                 "diagnosis": "cardio issue"}),
    ]
    repository = DataRepository(schema=SCHEMA, samples=samples)
    return select_pivots(repository, PivotSelectionConfig(buckets=5,
                                                          min_entropy=0.3,
                                                          max_pivots=2))


PIVOTS = _pivots()
KEYWORDS = frozenset({"diabetes"})


def _synopsis(rid, symptom, diagnosis, candidates=None, source="s1",
              keywords=KEYWORDS):
    record = Record(rid=rid, values={"symptom": symptom, "diagnosis": diagnosis},
                    source=source)
    imputed = ImputedRecord(base=record, schema=SCHEMA,
                            candidates=candidates or {})
    return RecordSynopsis.build(imputed, PIVOTS, keywords)


class TestRecordSynopsis:
    def test_identity_passthrough(self):
        synopsis = _synopsis("r1", "fever", "flu")
        assert synopsis.rid == "r1"
        assert synopsis.source == "s1"

    def test_complete_record_has_degenerate_bounds(self):
        synopsis = _synopsis("r1", "fever cough", "flu")
        for attribute in SCHEMA:
            low, high = synopsis.main_interval(attribute)
            assert low == pytest.approx(high)

    def test_imputed_record_has_interval_bounds(self):
        synopsis = _synopsis("r1", "fever cough", None,
                             candidates={"diagnosis": {"flu": 0.5,
                                                       "diabetes": 0.5}})
        low, high = synopsis.main_interval("diagnosis")
        assert low <= high

    def test_build_survives_empty_possible_values(self):
        """Regression: an empty candidate map must not crash ``build``.

        ``ImputedRecord.__post_init__`` rejects empty distributions at
        construction, but callers can end up with one later (hand-built
        records, upstream imputers that retained nothing); ``build`` used to
        die in ``min(sizes)``.  The attribute must behave exactly like an
        unimputable missing value: empty token set, distance 1.0 to every
        pivot.
        """
        record = Record(rid="r1", values={"symptom": "fever cough",
                                          "diagnosis": None}, source="s1")
        imputed = ImputedRecord(base=record, schema=SCHEMA,
                                candidates={"diagnosis": {"flu": 1.0}})
        imputed.candidates["diagnosis"] = {}
        synopsis = RecordSynopsis.build(imputed, PIVOTS, KEYWORDS)
        reference = RecordSynopsis.build(
            ImputedRecord(base=record, schema=SCHEMA, candidates={}),
            PIVOTS, KEYWORDS)
        assert synopsis.token_size_bounds["diagnosis"] == (0, 0)
        assert (synopsis.distance_bounds["diagnosis"]
                == reference.distance_bounds["diagnosis"])
        assert (synopsis.distance_expectations["diagnosis"]
                == reference.distance_expectations["diagnosis"])

    def test_bounds_enclose_every_instance(self):
        synopsis = _synopsis("r1", "fever cough", None,
                             candidates={"diagnosis": {"flu": 0.4,
                                                       "diabetes": 0.3,
                                                       "pneumonia": 0.3}})
        for instance in synopsis.record.instances():
            for index, attribute in enumerate(SCHEMA):
                value = instance.record[attribute]
                distance = PIVOTS.convert_value(attribute, value)
                low, high = synopsis.main_interval(attribute)
                assert low - 1e-9 <= distance <= high + 1e-9

    def test_keyword_flags(self):
        topical = _synopsis("r1", "thirst", "diabetes")
        non_topical = _synopsis("r2", "fever", "flu")
        maybe = _synopsis("r3", "fever", None,
                          candidates={"diagnosis": {"diabetes": 0.1, "flu": 0.9}})
        assert topical.may_have_keyword and topical.must_have_keyword
        assert not non_topical.may_have_keyword
        assert maybe.may_have_keyword and not maybe.must_have_keyword

    def test_total_distance_bounds_sum_attributes(self):
        synopsis = _synopsis("r1", "fever cough", "flu")
        low, high = synopsis.total_distance_bounds()
        assert 0.0 <= low <= high <= len(SCHEMA)

    def test_expected_total_distance_within_bounds(self):
        synopsis = _synopsis("r1", "fever cough", None,
                             candidates={"diagnosis": {"flu": 0.6, "diabetes": 0.4}})
        low, high = synopsis.total_distance_bounds()
        expected = synopsis.expected_total_distance()
        assert low - 1e-9 <= expected <= high + 1e-9

    def test_coordinate_rectangle_dimensions(self):
        synopsis = _synopsis("r1", "fever", "flu")
        assert len(synopsis.coordinate_rectangle()) == len(SCHEMA)


class TestTopicKeywordPruning:
    def test_prunes_when_neither_topical(self):
        left = _synopsis("r1", "fever", "flu")
        right = _synopsis("r2", "cough", "pneumonia", source="s2")
        assert topic_keyword_prune(left, right, KEYWORDS)

    def test_keeps_when_one_side_topical(self):
        left = _synopsis("r1", "thirst", "diabetes")
        right = _synopsis("r2", "cough", "flu", source="s2")
        assert not topic_keyword_prune(left, right, KEYWORDS)

    def test_keeps_when_candidate_may_be_topical(self):
        left = _synopsis("r1", "fever", None,
                         candidates={"diagnosis": {"diabetes": 0.1, "flu": 0.9}})
        right = _synopsis("r2", "cough", "flu", source="s2")
        assert not topic_keyword_prune(left, right, KEYWORDS)

    def test_no_keywords_never_prunes(self):
        left = _synopsis("r1", "fever", "flu", keywords=frozenset())
        right = _synopsis("r2", "cough", "flu", source="s2", keywords=frozenset())
        assert not topic_keyword_prune(left, right, frozenset())

    def test_safety_pruned_pair_has_zero_probability(self):
        left = _synopsis("r1", "fever", "flu")
        right = _synopsis("r2", "fever", "flu", source="s2")
        if topic_keyword_prune(left, right, KEYWORDS):
            assert ter_ids_probability(left.record, right.record, KEYWORDS,
                                       gamma=0.5) == 0.0


class TestSimilarityUpperBounds:
    def test_min_attribute_distance_cases(self):
        assert min_attribute_distance((0.7, 0.9), (0.1, 0.2)) == pytest.approx(0.5)
        assert min_attribute_distance((0.1, 0.2), (0.7, 0.9)) == pytest.approx(0.5)
        assert min_attribute_distance((0.1, 0.5), (0.4, 0.9)) == 0.0

    def test_size_bound_is_valid(self):
        left = _synopsis("r1", "fever cough chills aches", "flu")
        right = _synopsis("r2", "fever", "flu severe case", source="s2")
        bound = similarity_upper_bound_by_size(left, right)
        actual = record_similarity(left.record.base, right.record.base, SCHEMA)
        assert actual <= bound + 1e-9

    def test_pivot_bound_is_valid(self):
        left = _synopsis("r1", "weight loss blurred vision", "diabetes")
        right = _synopsis("r2", "fever cough", "flu", source="s2")
        bound = similarity_upper_bound_by_pivot(left, right)
        actual = record_similarity(left.record.base, right.record.base, SCHEMA)
        assert actual <= bound + 1e-9

    def test_combined_bound_not_larger_than_components(self):
        left = _synopsis("r1", "weight loss", "diabetes")
        right = _synopsis("r2", "fever cough", "flu", source="s2")
        combined = similarity_upper_bound(left, right)
        assert combined <= similarity_upper_bound_by_size(left, right) + 1e-9
        assert combined <= similarity_upper_bound_by_pivot(left, right) + 1e-9

    def test_bound_valid_over_all_instance_pairs(self):
        left = _synopsis("r1", "weight loss", None,
                         candidates={"diagnosis": {"diabetes": 0.5,
                                                   "diabetes type two": 0.5}})
        right = _synopsis("r2", "weight loss thirst", "diabetes", source="s2")
        bound = similarity_upper_bound(left, right)
        for left_instance in left.record.instances():
            for right_instance in right.record.instances():
                actual = record_similarity(left_instance.record,
                                           right_instance.record, SCHEMA)
                assert actual <= bound + 1e-9

    def test_similarity_prune_safety(self):
        """A pruned pair can never have an instance pair above gamma."""
        gamma = 1.0
        left = _synopsis("r1", "chest pain", "cardio issue")
        right = _synopsis("r2", "red eye itchy", "conjunctivitis", source="s2")
        if similarity_prune(left, right, gamma):
            probability = ter_ids_probability(left.record, right.record,
                                              frozenset(), gamma)
            assert probability == 0.0

    def test_identical_pair_not_pruned(self):
        left = _synopsis("r1", "weight loss thirst", "diabetes")
        right = _synopsis("r2", "weight loss thirst", "diabetes", source="s2")
        assert not similarity_prune(left, right, gamma=1.0)


class TestProbabilityUpperBound:
    def test_bound_in_unit_interval(self):
        left = _synopsis("r1", "weight loss", "diabetes")
        right = _synopsis("r2", "fever", "flu", source="s2")
        bound = probability_upper_bound(left, right, gamma=1.0)
        assert 0.0 <= bound <= 1.0

    def test_bound_dominates_exact_probability(self):
        gamma = 1.5
        pairs = [
            (_synopsis("r1", "weight loss blurred vision", "diabetes"),
             _synopsis("r2", "fever cough", "flu", source="s2")),
            (_synopsis("r3", "weight loss", None,
                       candidates={"diagnosis": {"diabetes": 0.6, "flu": 0.4}}),
             _synopsis("r4", "weight loss thirst", "diabetes", source="s2")),
            (_synopsis("r5", "red eye itchy", "conjunctivitis"),
             _synopsis("r6", "chest pain", "cardio issue", source="s2")),
        ]
        for left, right in pairs:
            bound = probability_upper_bound(left, right, gamma)
            exact = ter_ids_probability(left.record, right.record, frozenset(),
                                        gamma)
            assert exact <= bound + 1e-9

    def test_probability_prune_safety(self):
        gamma, alpha = 1.5, 0.5
        left = _synopsis("r1", "red eye itchy", "conjunctivitis")
        right = _synopsis("r2", "chest pain palpitation", "cardio issue",
                          source="s2")
        if probability_prune(left, right, gamma, alpha):
            exact = ter_ids_probability(left.record, right.record, frozenset(),
                                        gamma)
            assert exact <= alpha

    def test_example7_paper_numbers(self):
        """Example 7: hand-computed Paley-Zygmund bound equals 0.82."""
        from repro.core.pruning import RecordSynopsis as RS

        schema3 = Schema(attributes=("A", "B", "C"))
        # Build synopses directly with the example's distance bounds.
        left_record = ImputedRecord(
            base=Record(rid="l", values={"A": "x", "B": "y", "C": None}),
            schema=schema3,
            candidates={"C": {"c1": 1 / 3, "c2": 1 / 3, "c3": 1 / 3}})
        right_record = ImputedRecord(
            base=Record(rid="r", values={"A": "x", "B": "y", "C": None}),
            schema=schema3,
            candidates={"C": {"c1": 0.5, "c2": 0.5}})
        left = RS(record=left_record,
                  distance_bounds={"A": [(0.1, 0.1)], "B": [(0.1, 0.1)],
                                   "C": [(0.1, 0.9)]},
                  distance_expectations={"A": [0.1], "B": [0.1], "C": [0.5]},
                  token_size_bounds={"A": (1, 1), "B": (1, 1), "C": (1, 1)},
                  may_have_keyword=True, must_have_keyword=False)
        right = RS(record=right_record,
                   distance_bounds={"A": [(0.2, 0.2)], "B": [(0.2, 0.2)],
                                    "C": [(0.7, 0.9)]},
                   distance_expectations={"A": [0.2], "B": [0.2], "C": [0.8]},
                   token_size_bounds={"A": (1, 1), "B": (1, 1), "C": (1, 1)},
                   may_have_keyword=True, must_have_keyword=False)
        bound = probability_upper_bound(left, right, gamma=2.8)
        assert bound == pytest.approx(0.82, abs=1e-6)


class TestPruningPipeline:
    def _pipeline(self, **kwargs):
        defaults = dict(keywords=KEYWORDS, gamma=1.0, alpha=0.3)
        defaults.update(kwargs)
        return PruningPipeline(**defaults)

    def test_matching_pair_accepted(self):
        pipeline = self._pipeline()
        left = _synopsis("r1", "weight loss thirst", "diabetes")
        right = _synopsis("r2", "weight loss thirst", "diabetes", source="s2")
        is_match, probability = pipeline.evaluate_pair(left, right)
        assert is_match
        assert probability > 0.3

    def test_non_topical_pair_rejected_and_counted(self):
        pipeline = self._pipeline()
        left = _synopsis("r1", "fever", "flu")
        right = _synopsis("r2", "fever", "flu", source="s2")
        is_match, _ = pipeline.evaluate_pair(left, right)
        assert not is_match
        assert pipeline.stats.pruned_by_topic == 1

    def test_dissimilar_pair_rejected(self):
        pipeline = self._pipeline()
        left = _synopsis("r1", "weight loss", "diabetes")
        right = _synopsis("r2", "red eye itchy", "conjunctivitis", source="s2")
        is_match, _ = pipeline.evaluate_pair(left, right)
        assert not is_match
        assert pipeline.stats.total_pruned + pipeline.stats.refined_non_matches == 1

    def test_pipeline_agrees_with_exact_probability(self):
        """The pipeline's verdict must equal the exact Eq. (2) verdict."""
        pipeline = self._pipeline()
        cases = [
            ("weight loss thirst", "diabetes", "weight loss thirst", "diabetes"),
            ("weight loss", "diabetes", "fever cough", "flu"),
            ("fever cough", "flu", "fever cough chills", "flu"),
            ("weight loss", None, "weight loss blurred vision", "diabetes"),
        ]
        for index, (ls, ld, rs, rd) in enumerate(cases):
            candidates = ({"diagnosis": {"diabetes": 0.7, "flu": 0.3}}
                          if ld is None else None)
            left = _synopsis(f"l{index}", ls, ld, candidates=candidates)
            right = _synopsis(f"x{index}", rs, rd, source="s2")
            is_match, _ = pipeline.evaluate_pair(left, right)
            exact = ter_ids_probability(left.record, right.record, KEYWORDS,
                                        gamma=1.0)
            assert is_match == (exact > 0.3), f"case {index}"

    def test_disabled_strategies_still_correct(self):
        pipeline = self._pipeline(use_topic=False, use_similarity=False,
                                  use_probability=False, use_instance=False)
        left = _synopsis("r1", "weight loss thirst", "diabetes")
        right = _synopsis("r2", "weight loss thirst", "diabetes", source="s2")
        is_match, _ = pipeline.evaluate_pair(left, right)
        assert is_match
        assert pipeline.stats.total_pruned == 0

    def test_stats_pruning_power_sums(self):
        pipeline = self._pipeline()
        pairs = [
            (_synopsis("a", "fever", "flu"),
             _synopsis("b", "cough", "pneumonia", source="s2")),
            (_synopsis("c", "weight loss", "diabetes"),
             _synopsis("d", "red eye", "conjunctivitis", source="s2")),
        ]
        for left, right in pairs:
            pipeline.evaluate_pair(left, right)
        power = pipeline.stats.pruning_power()
        assert power["total"] <= 1.0
        assert pipeline.stats.pairs_considered == 2

    def test_stats_merge(self):
        left = PruningStats(pairs_considered=5, pruned_by_topic=2)
        right = PruningStats(pairs_considered=3, pruned_by_similarity=1)
        left.merge(right)
        assert left.pairs_considered == 8
        assert left.total_pruned == 3
