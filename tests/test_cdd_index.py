"""Unit tests for the CDD-index I_j (lattice + aR-trees, Section 5.1)."""

import pytest

from repro.core.tuples import Record
from repro.imputation.cdd import discover_cdd_rules, group_rules_by_dependent
from repro.indexes.cdd_index import CDDIndex, build_cdd_indexes


@pytest.fixture
def health_rules(health_repository):
    return discover_cdd_rules(health_repository)


@pytest.fixture
def diagnosis_index(health_repository, health_rules, health_pivots):
    return CDDIndex(dependent="diagnosis", rules=health_rules,
                    schema=health_repository.schema, pivots=health_pivots)


class TestConstruction:
    def test_index_keeps_only_its_dependent(self, diagnosis_index, health_rules):
        expected = [rule for rule in health_rules if rule.dependent == "diagnosis"]
        assert diagnosis_index.rule_count == len(expected)

    def test_lattice_levels(self, diagnosis_index):
        levels = diagnosis_index.lattice_levels()
        assert 1 in levels
        assert all(node.level >= 1 for nodes in levels.values() for node in nodes)

    def test_lattice_intervals_bound_rules(self, diagnosis_index):
        for node in diagnosis_index.lattice.values():
            if not node.rules:
                continue
            low, high = node.combined_interval
            for rule in node.rules:
                assert low - 1e-9 <= rule.dependent_interval[0]
                assert rule.dependent_interval[1] <= high + 1e-9

    def test_combined_dependent_interval_covers_all_rules(self, diagnosis_index):
        low, high = diagnosis_index.combined_dependent_interval()
        for rule in diagnosis_index.rules:
            assert low - 1e-9 <= rule.dependent_interval[0]
            assert rule.dependent_interval[1] <= high + 1e-9

    def test_group_trees_exist(self, diagnosis_index):
        assert diagnosis_index.group_count >= 1

    def test_empty_rule_set(self, health_repository, health_pivots):
        index = CDDIndex(dependent="diagnosis", rules=[],
                         schema=health_repository.schema, pivots=health_pivots)
        assert index.rule_count == 0
        assert index.combined_dependent_interval() == (0.0, 1.0)


class TestCandidateRules:
    def test_no_false_dismissals(self, diagnosis_index, health_rules,
                                 incomplete_health_record):
        """Every exactly-applicable rule must be returned by the index."""
        applicable = [
            rule for rule in health_rules
            if rule.dependent == "diagnosis"
            and rule.applicable_to(incomplete_health_record, "diagnosis")
        ]
        candidates = diagnosis_index.candidate_rules(incomplete_health_record)
        candidate_ids = {id(rule) for rule in candidates}
        for rule in applicable:
            assert id(rule) in candidate_ids, rule.describe()

    def test_returned_rules_are_applicable(self, diagnosis_index,
                                           incomplete_health_record):
        for rule in diagnosis_index.candidate_rules(incomplete_health_record):
            assert rule.applicable_to(incomplete_health_record, "diagnosis")

    def test_rules_sorted_tightest_first(self, diagnosis_index,
                                         incomplete_health_record):
        candidates = diagnosis_index.candidate_rules(incomplete_health_record)
        widths = [rule.dependent_width for rule in candidates]
        assert widths == sorted(widths)

    def test_nodes_visited_counter(self, diagnosis_index, incomplete_health_record):
        diagnosis_index.candidate_rules(incomplete_health_record)
        assert diagnosis_index.nodes_visited > 0

    def test_record_with_all_determinants_missing(self, diagnosis_index,
                                                  health_repository):
        record = Record(rid="r", values={name: None
                                         for name in health_repository.schema})
        assert diagnosis_index.candidate_rules(record) == []


class TestBuildAllIndexes:
    def test_one_index_per_dependent(self, health_repository, health_rules,
                                     health_pivots):
        indexes = build_cdd_indexes(health_rules, health_repository.schema,
                                    health_pivots)
        assert set(indexes) == set(group_rules_by_dependent(health_rules))
        for dependent, index in indexes.items():
            assert index.dependent == dependent
            assert index.rule_count > 0
