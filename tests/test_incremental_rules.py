"""Differential tests for incremental CDD-rule maintenance (Section 5.5).

The incremental maintainer is an approximation of full re-mining, so it
ships with a differential harness: every scenario is driven through both
the ``full`` (re-mine) path and the ``incremental`` sketch path and the
outputs are compared — rule sets, imputation candidate distributions, match
results, and checkpoint round-trips.  Where the pair budget forces the
approximation to diverge, the divergence must stay bounded (incremental
intervals contained in the full ones, drift reported).
"""

import json

import pytest

from golden_utils import (
    EVOLVING_PHASES,
    EVOLVING_WORKLOAD,
    GOLDEN_WORKLOADS,
    build_config,
    build_workload,
    canonical_matches,
    evolving_discovery_config,
    evolving_golden_path,
    run_evolving_reference,
)
from repro.core.engine import TERiDSEngine
from repro.core.tuples import Record, Schema
from repro.experiments.harness import run_evolving_stream, split_repository
from repro.imputation.cdd import (
    MAINTENANCE_FULL,
    MAINTENANCE_HYBRID,
    MAINTENANCE_INCREMENTAL,
    CDDDiscoveryConfig,
    RuleError,
    discover_cdd_rules,
)
from repro.imputation.incremental import IncrementalRuleMaintainer
from repro.imputation.repository import DataRepository
from repro.persistence import repository_from_dict, repository_to_dict
from repro.runtime import MicroBatchExecutor, SerialExecutor


def _rule_signature(rules):
    return [(rule.rule_id, rule.dependent_interval, rule.support)
            for rule in rules]


def _chunks(items, size):
    for start in range(0, len(items), size):
        yield items[start:start + size]


INCREMENTAL_CONFIG = CDDDiscoveryConfig(
    maintenance_mode=MAINTENANCE_INCREMENTAL)


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------
class TestMaintenanceConfig:
    def test_unknown_mode_rejected(self):
        with pytest.raises(RuleError):
            CDDDiscoveryConfig(maintenance_mode="sometimes")

    @pytest.mark.parametrize("field,value", [
        ("min_confidence", 0.0),
        ("min_confidence", 1.5),
        ("drift_threshold", 0.0),
        ("pending_pool_size", 0),
        ("max_update_pairs", 0),
        ("max_group_pairs_per_sample", 0),
    ])
    def test_invalid_maintenance_knobs_rejected(self, field, value):
        with pytest.raises(RuleError):
            CDDDiscoveryConfig(**{field: value})


# ---------------------------------------------------------------------------
# Exactness: initialize == full miner; absorb == full re-mine
# ---------------------------------------------------------------------------
class TestMaintainerExactness:
    def test_initialize_matches_full_miner_on_health(self, health_repository):
        full = discover_cdd_rules(health_repository, INCREMENTAL_CONFIG)
        maintainer = IncrementalRuleMaintainer(INCREMENTAL_CONFIG,
                                               health_repository.schema)
        assert (_rule_signature(maintainer.initialize(health_repository))
                == _rule_signature(full))

    @pytest.mark.parametrize("dataset,scale,seed,window", GOLDEN_WORKLOADS)
    def test_initialize_matches_full_miner_on_goldens(self, dataset, scale,
                                                      seed, window):
        workload = build_workload(dataset, scale, seed)
        full = discover_cdd_rules(workload.repository, INCREMENTAL_CONFIG)
        maintainer = IncrementalRuleMaintainer(INCREMENTAL_CONFIG,
                                               workload.schema)
        assert (_rule_signature(maintainer.initialize(workload.repository))
                == _rule_signature(full))

    @pytest.mark.parametrize("dataset,scale,seed,window", GOLDEN_WORKLOADS)
    def test_streamed_updates_match_full_remine(self, dataset, scale, seed,
                                                window):
        """Rule-set equivalence: every update batch, both modes, bit-equal.

        The pair budget of the default config covers every new pair at this
        repository scale, so the sketches are exact and the maintained rule
        set must equal a from-scratch re-mine after every single batch.
        """
        workload = build_workload(dataset, scale, seed)
        base, holdout = split_repository(workload.repository, 0.3)
        repository = DataRepository(schema=workload.schema,
                                    samples=list(base.samples))
        maintainer = IncrementalRuleMaintainer(INCREMENTAL_CONFIG,
                                               workload.schema)
        maintainer.initialize(repository)
        for batch in _chunks(holdout, 3):
            repository.extend(batch)
            report = maintainer.absorb(repository, batch)
            assert not report.remined
            full = discover_cdd_rules(repository, INCREMENTAL_CONFIG)
            assert _rule_signature(report.rules) == _rule_signature(full)

    @pytest.mark.parametrize("dataset,scale,seed,window", GOLDEN_WORKLOADS)
    def test_imputation_candidates_identical(self, dataset, scale, seed,
                                             window):
        """Full-remine engine and incremental engine impute identically."""
        workload = build_workload(dataset, scale, seed)
        config = build_config(workload, window)
        base, holdout = split_repository(workload.repository, 0.3)

        full_engine = TERiDSEngine(
            repository=DataRepository(schema=workload.schema,
                                      samples=list(base.samples)),
            config=config,
            discovery_config=CDDDiscoveryConfig(
                maintenance_mode=MAINTENANCE_FULL))
        inc_engine = TERiDSEngine(
            repository=DataRepository(schema=workload.schema,
                                      samples=list(base.samples)),
            config=config,
            discovery_config=INCREMENTAL_CONFIG)

        for batch in _chunks(holdout, 4):
            full_engine.add_repository_samples(batch, remine_rules=True)
            inc_engine.add_repository_samples(batch)

        assert (_rule_signature(full_engine.rules)
                == _rule_signature(inc_engine.rules))
        incomplete = [record for record
                      in workload.interleaved_records()
                      if record.missing_attributes(workload.schema)]
        assert incomplete
        for record in incomplete:
            for attribute in record.missing_attributes(workload.schema):
                assert (full_engine.imputer.candidate_distribution(
                            record, attribute)
                        == inc_engine.imputer.candidate_distribution(
                            record, attribute))


# ---------------------------------------------------------------------------
# Bounded divergence under a constrained pair budget
# ---------------------------------------------------------------------------
class TestBoundedDrift:
    def test_budgeted_sketches_stay_inside_full_intervals(self):
        """With a tight pair budget the approximation is one-sided.

        A skipped pair can only make a sketch *narrower* than the truth
        (min/max over a subset), so every maintained interval rule must be
        contained in the corresponding full-mine interval and report at most
        the full support; the skipped coverage must surface as drift.
        """
        dataset, scale, seed, _ = GOLDEN_WORKLOADS[0]
        workload = build_workload(dataset, scale, seed)
        base, holdout = split_repository(workload.repository, 0.4)
        config = CDDDiscoveryConfig(maintenance_mode=MAINTENANCE_INCREMENTAL,
                                    max_update_pairs=5)
        repository = DataRepository(schema=workload.schema,
                                    samples=list(base.samples))
        maintainer = IncrementalRuleMaintainer(config, workload.schema)
        maintainer.initialize(repository)
        skipped_total = 0
        for batch in _chunks(holdout, 4):
            repository.extend(batch)
            report = maintainer.absorb(repository, batch)
            skipped_total += report.pairs_skipped
        assert skipped_total > 0
        assert maintainer.drift > 0.0

        full_by_id = {rule.rule_id: rule
                      for rule in discover_cdd_rules(repository, config)}
        checked = 0
        for rule in maintainer.rules:
            if len(rule.determinants) != 1:
                continue
            full_rule = full_by_id.get(rule.rule_id)
            if full_rule is None:
                continue
            low, high = rule.dependent_interval
            full_low, full_high = full_rule.dependent_interval
            assert full_low - 1e-9 <= low
            assert high <= full_high + 1e-9
            assert rule.support <= full_rule.support
            checked += 1
        assert checked > 0

    def test_hybrid_mode_remines_once_drift_exceeds_threshold(self):
        dataset, scale, seed, _ = GOLDEN_WORKLOADS[0]
        workload = build_workload(dataset, scale, seed)
        base, holdout = split_repository(workload.repository, 0.5)
        config = CDDDiscoveryConfig(maintenance_mode=MAINTENANCE_HYBRID,
                                    max_update_pairs=2,
                                    drift_threshold=0.25)
        repository = DataRepository(schema=workload.schema,
                                    samples=list(base.samples))
        maintainer = IncrementalRuleMaintainer(config, workload.schema)
        maintainer.initialize(repository)
        remined = False
        for batch in _chunks(holdout, 3):
            repository.extend(batch)
            report = maintainer.absorb(repository, batch)
            if report.remined:
                remined = True
                # The escape hatch resynchronises exactly and resets drift.
                assert (_rule_signature(report.rules)
                        == _rule_signature(discover_cdd_rules(repository,
                                                              config)))
                assert maintainer.drift == 0.0
                break
        assert remined

    def test_forced_remine_resynchronises_exactly(self, health_repository,
                                                  health_config):
        engine = TERiDSEngine(repository=health_repository,
                              config=health_config,
                              discovery_config=CDDDiscoveryConfig(
                                  maintenance_mode=MAINTENANCE_INCREMENTAL,
                                  max_update_pairs=1))
        additions = [
            Record(rid=f"extra{index}",
                   values={"gender": "female", "symptom": "sneeze pollen rash",
                           "diagnosis": "allergy", "treatment": "antihistamine"},
                   source="repository")
            for index in range(4)
        ]
        report = engine.add_repository_samples(additions, remine_rules=True)
        assert report.remined
        assert (_rule_signature(engine.rules)
                == _rule_signature(discover_cdd_rules(engine.repository,
                                                      engine.discovery_config)))


# ---------------------------------------------------------------------------
# Retirement and the pending pool
# ---------------------------------------------------------------------------
SCHEMA_XY = Schema(attributes=("x", "y"))


def _xy(rid, x, y):
    return Record(rid=rid, values={"x": x, "y": y}, source="repository")


class TestRetirementAndPromotion:
    def test_broken_dependency_is_retired_with_violations_counted(self):
        """New samples that break ``x=alpha -> y`` retire the constant rule.

        The full miner drops the rule too (the group's dependent range blows
        past ``max_dependent_width``), so retirement keeps the two paths
        equivalent while the counters record the observed violations.
        """
        base = [_xy(f"s{i}", "alpha", "beta gamma") for i in range(4)]
        repository = DataRepository(schema=SCHEMA_XY, samples=list(base))
        maintainer = IncrementalRuleMaintainer(INCREMENTAL_CONFIG, SCHEMA_XY)
        maintainer.initialize(repository)
        rule_id = "cdd:x=alpha->y"
        assert any(rule.rule_id == rule_id for rule in maintainer.rules)

        breakers = [_xy(f"b{i}", "alpha", f"unrelated{i} totally{i}")
                    for i in range(4)]
        repository.extend(breakers)
        report = maintainer.absorb(repository, breakers)
        assert rule_id in report.retired
        assert all(rule.rule_id != rule_id for rule in maintainer.rules)
        counters = maintainer.counters[rule_id]
        assert counters.violations >= 2
        assert counters.confidence < INCREMENTAL_CONFIG.min_confidence
        # Differential: the full miner agrees the dependency is gone.
        full_ids = {rule.rule_id
                    for rule in discover_cdd_rules(repository,
                                                   INCREMENTAL_CONFIG)}
        assert rule_id not in full_ids

    def test_long_constants_keep_distinct_rule_ids(self):
        """Two constants sharing a long prefix must not share a rule id.

        Rule ids key the maintainer's counters / retirement / promotion
        state; a truncated id would conflate the two groups and retire both
        rules when only one dependency breaks.
        """
        value_a = "internationalconference alphatrack"
        value_b = "internationalconference betatrack"
        base = ([_xy(f"a{i}", value_a, "proceedings alpha") for i in range(3)]
                + [_xy(f"b{i}", value_b, "proceedings beta") for i in range(3)])
        repository = DataRepository(schema=SCHEMA_XY, samples=list(base))
        maintainer = IncrementalRuleMaintainer(INCREMENTAL_CONFIG, SCHEMA_XY)
        rules = maintainer.initialize(repository)
        constant_ids = {rule.rule_id for rule in rules
                        if rule.rule_id.startswith("cdd:x=international")}
        assert len(constant_ids) == 2

        # Breaking only the alpha dependency must leave the beta rule alive.
        breakers = [_xy(f"k{i}", value_a, f"smashed{i} dependency{i}")
                    for i in range(4)]
        repository.extend(breakers)
        report = maintainer.absorb(repository, breakers)
        surviving = {rule.rule_id for rule in report.rules}
        assert f"cdd:x={value_b}->y" in surviving
        assert f"cdd:x={value_a}->y" not in surviving

    def test_group_pair_cap_surfaces_as_drift(self):
        """Constant-group pairs skipped by the member cap count as drift."""
        config = CDDDiscoveryConfig(maintenance_mode=MAINTENANCE_INCREMENTAL,
                                    max_group_pairs_per_sample=1,
                                    max_update_pairs=100_000)
        base = [_xy(f"s{i}", "shared", f"tail{i}") for i in range(6)]
        repository = DataRepository(schema=SCHEMA_XY, samples=list(base))
        maintainer = IncrementalRuleMaintainer(config, SCHEMA_XY)
        maintainer.initialize(repository)
        additions = [_xy("n0", "shared", "tail6")]
        repository.extend(additions)
        report = maintainer.absorb(repository, additions)
        assert report.pairs_skipped > 0
        assert maintainer.drift > 0.0

    def test_pending_pool_bounds_promotions_per_update(self):
        config = CDDDiscoveryConfig(maintenance_mode=MAINTENANCE_INCREMENTAL,
                                    pending_pool_size=1)
        base = [_xy("s0", "alpha", "beta"), _xy("s1", "alpha", "beta")]
        repository = DataRepository(schema=SCHEMA_XY, samples=list(base))
        maintainer = IncrementalRuleMaintainer(config, SCHEMA_XY)
        maintainer.initialize(repository)

        # A burst of agreeing samples creates several new qualifying rules
        # (a new constant group in each direction plus interval bands).
        additions = [_xy(f"n{i}", "delta", "epsilon") for i in range(4)]
        repository.extend(additions)
        report = maintainer.absorb(repository, additions)
        assert len(report.promoted) <= 1
        assert report.deferred

        # Update-free absorptions keep draining the pool one rule at a time.
        deferred = set(report.deferred)
        follow_up = maintainer.absorb(repository, [])
        assert follow_up.promoted
        assert set(follow_up.promoted) <= deferred

    def test_widened_intervals_are_reported_and_monotone(self):
        base = [_xy("s0", "alpha beta", "left right"),
                _xy("s1", "alpha beta gamma", "left right middle"),
                _xy("s2", "alpha", "left")]
        repository = DataRepository(schema=SCHEMA_XY, samples=list(base))
        maintainer = IncrementalRuleMaintainer(INCREMENTAL_CONFIG, SCHEMA_XY)
        before = {rule.rule_id: rule.dependent_interval
                  for rule in maintainer.initialize(repository)}
        additions = [_xy("n0", "alpha beta", "left right middle centre")]
        repository.extend(additions)
        report = maintainer.absorb(repository, additions)
        assert report.widened > 0
        for rule in maintainer.rules:
            previous = before.get(rule.rule_id)
            if previous is None:
                continue
            assert rule.dependent_interval[0] <= previous[0] + 1e-9
            assert rule.dependent_interval[1] >= previous[1] - 1e-9


# ---------------------------------------------------------------------------
# Golden fixture: the evolving-repository scenario, both executors
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("executor_factory", [
    SerialExecutor,
    lambda: MicroBatchExecutor(batch_size=1),
    lambda: MicroBatchExecutor(batch_size=7),
    lambda: MicroBatchExecutor(batch_size=32),
], ids=["serial", "micro-batch-1", "micro-batch-7", "micro-batch-32"])
def test_evolving_repository_matches_golden(executor_factory):
    golden = json.loads(evolving_golden_path().read_text())["reference"]
    dataset, scale, seed, window = EVOLVING_WORKLOAD
    workload = build_workload(dataset, scale, seed)
    config = build_config(workload, window)
    got = run_evolving_reference(
        lambda **kwargs: TERiDSEngine(executor=executor_factory(), **kwargs),
        workload, config)
    assert got == golden


# ---------------------------------------------------------------------------
# Checkpoint round-trip of the maintainer state (acceptance criterion)
# ---------------------------------------------------------------------------
class TestMaintainerCheckpoint:
    def test_state_round_trip_preserves_rules_and_drift(self):
        dataset, scale, seed, _ = GOLDEN_WORKLOADS[0]
        workload = build_workload(dataset, scale, seed)
        base, holdout = split_repository(workload.repository, 0.3)
        config = CDDDiscoveryConfig(maintenance_mode=MAINTENANCE_INCREMENTAL,
                                    max_update_pairs=20)
        repository = DataRepository(schema=workload.schema,
                                    samples=list(base.samples))
        maintainer = IncrementalRuleMaintainer(config, workload.schema)
        maintainer.initialize(repository)
        repository.extend(holdout)
        maintainer.absorb(repository, holdout)

        state = json.loads(json.dumps(maintainer.state_to_dict()))
        restored = IncrementalRuleMaintainer(config, workload.schema)
        restored_rules = restored.restore_state(state)
        assert (_rule_signature(restored_rules)
                == _rule_signature(maintainer.rules))
        assert restored.drift == maintainer.drift
        assert restored.state_to_dict() == maintainer.state_to_dict()

    def test_restoring_into_non_incremental_engine_raises(self, tmp_path,
                                                          health_repository,
                                                          health_config):
        source = TERiDSEngine(repository=health_repository,
                              config=health_config,
                              discovery_config=INCREMENTAL_CONFIG)
        path = tmp_path / "maintained.ckpt.json"
        source.save_checkpoint(path)
        plain = TERiDSEngine(repository=health_repository,
                             config=health_config)
        with pytest.raises(ValueError, match="maintenance_mode"):
            plain.load_checkpoint(path)

    def test_resumed_stream_produces_identical_matches(self, tmp_path):
        """A checkpointed + resumed incremental stream matches an unbroken one."""
        dataset, scale, seed, window = EVOLVING_WORKLOAD
        workload = build_workload(dataset, scale, seed)
        config = build_config(workload, window)
        base, holdout = split_repository(workload.repository, 0.3)
        records = workload.interleaved_records()
        cut = len(records) // 2

        reference = TERiDSEngine(
            repository=DataRepository(schema=workload.schema,
                                      samples=list(base.samples)),
            config=config, discovery_config=evolving_discovery_config())
        first_half = run_evolving_stream(reference, records[:cut], holdout,
                                         phases=EVOLVING_PHASES)
        checkpoint_path = tmp_path / "evolving.ckpt.json"
        reference.save_checkpoint(checkpoint_path)
        repository_snapshot = repository_to_dict(reference.repository)

        resumed = TERiDSEngine(
            repository=repository_from_dict(repository_snapshot),
            config=config, discovery_config=evolving_discovery_config())
        resumed.load_checkpoint(checkpoint_path)
        assert (_rule_signature(resumed.rules)
                == _rule_signature(reference.rules))
        assert (resumed.rule_maintainer.state_to_dict()
                == reference.rule_maintainer.state_to_dict())

        tail_reference = reference.process_batch(records[cut:])
        tail_resumed = resumed.process_batch(records[cut:])
        assert (canonical_matches(tail_resumed)
                == canonical_matches(tail_reference))
        assert (canonical_matches(resumed.current_matches())
                == canonical_matches(reference.current_matches()))
        assert first_half is not None


# ---------------------------------------------------------------------------
# Engine/stage integration
# ---------------------------------------------------------------------------
class TestEngineIntegration:
    def test_full_mode_reports_none_and_keeps_imputer_object(
            self, health_repository, health_config):
        engine = TERiDSEngine(repository=health_repository,
                              config=health_config)
        assert engine.rule_maintainer is None
        imputer = engine.imputer
        report = engine.add_repository_samples(
            [_health_sample("new0")], remine_rules=True)
        assert report is None
        # install_rules swaps rules in place: same imputer object, new rules.
        assert engine.imputer is imputer
        assert engine.imputer.rules == engine.rules

    def test_incremental_mode_reports_maintenance(self, health_repository,
                                                  health_config):
        engine = TERiDSEngine(repository=health_repository,
                              config=health_config,
                              discovery_config=INCREMENTAL_CONFIG)
        assert engine.rule_maintainer is not None
        report = engine.add_repository_samples([_health_sample("new0"),
                                                _health_sample("new1")])
        assert report is not None
        assert not report.remined
        assert (_rule_signature(engine.rules)
                == _rule_signature(discover_cdd_rules(engine.repository,
                                                      INCREMENTAL_CONFIG)))
        assert engine.imputer.rules == engine.rules

    def test_explicit_rules_disable_the_maintainer(self, health_repository,
                                                   health_config,
                                                   simple_cdd_rule):
        engine = TERiDSEngine(repository=health_repository,
                              config=health_config,
                              rules=[simple_cdd_rule],
                              discovery_config=INCREMENTAL_CONFIG)
        assert engine.rule_maintainer is None
        assert engine.rules == [simple_cdd_rule]


def _health_sample(rid):
    return Record(rid=rid,
                  values={"gender": "female", "symptom": "thirst fatigue",
                          "diagnosis": "diabetes", "treatment": "insulin"},
                  source="repository")


# ---------------------------------------------------------------------------
# Rule installation paths: no-op skip, in-place patch, rebuild
# ---------------------------------------------------------------------------
class TestInstallPaths:
    def test_noop_install_short_circuits(self, health_repository,
                                         health_config):
        engine = TERiDSEngine(repository=health_repository,
                              config=health_config,
                              discovery_config=INCREMENTAL_CONFIG)
        ctx = engine.ctx
        indexes_before = ctx.cdd_indexes
        ctx.install_rules(list(ctx.rules))
        assert ctx.installs_skipped == 1
        assert ctx.installs_patched == 0 and ctx.installs_rebuilt == 0
        # The indexes were not touched, let alone rebuilt.
        assert ctx.cdd_indexes is indexes_before

    def test_live_maintenance_patches_in_place(self, health_repository,
                                               health_config):
        engine = TERiDSEngine(repository=health_repository,
                              config=health_config,
                              discovery_config=INCREMENTAL_CONFIG)
        ctx = engine.ctx
        engine.add_repository_samples([_health_sample("new0"),
                                       _health_sample("new1")])
        assert ctx.installs_patched == 1
        assert ctx.installs_rebuilt == 0
        assert ctx.last_patch_stats is not None
        touched = (ctx.last_patch_stats["groups_patched"]
                   + ctx.last_patch_stats["groups_replayed"]
                   + ctx.last_patch_stats["groups_added"])
        assert touched >= 1

    def test_patch_knob_off_rebuilds(self, health_repository, health_config):
        import dataclasses as _dataclasses
        config = _dataclasses.replace(health_config, patch_cdd_indexes=False)
        engine = TERiDSEngine(repository=health_repository, config=config,
                              discovery_config=INCREMENTAL_CONFIG)
        ctx = engine.ctx
        engine.add_repository_samples([_health_sample("new0"),
                                       _health_sample("new1")])
        assert ctx.installs_rebuilt == 1
        assert ctx.installs_patched == 0

    def test_remine_keeps_rebuild_path(self, health_repository,
                                       health_config):
        engine = TERiDSEngine(repository=health_repository,
                              config=health_config,
                              discovery_config=INCREMENTAL_CONFIG)
        ctx = engine.ctx
        report = engine.add_repository_samples([_health_sample("new0")],
                                               remine_rules=True)
        assert report.remined
        assert ctx.installs_rebuilt + ctx.installs_skipped >= 1
        assert ctx.installs_patched == 0

    def test_restore_keeps_rebuild_path(self, tmp_path, health_repository,
                                        health_config):
        source = TERiDSEngine(repository=health_repository,
                              config=health_config,
                              discovery_config=INCREMENTAL_CONFIG)
        source.add_repository_samples([_health_sample("new0"),
                                       _health_sample("new1")])
        path = tmp_path / "install.ckpt.json"
        source.save_checkpoint(path)
        snapshot = repository_to_dict(source.repository)
        resumed = TERiDSEngine(repository=repository_from_dict(snapshot),
                               config=health_config,
                               discovery_config=INCREMENTAL_CONFIG)
        resumed.load_checkpoint(path)
        # Restore never patches: it either rebuilds or no-op-skips.
        assert resumed.ctx.installs_patched == 0
        assert resumed.ctx.installs_rebuilt + resumed.ctx.installs_skipped >= 1
        assert (_rule_signature(resumed.rules)
                == _rule_signature(source.rules))

    def test_patched_engine_streams_identically_to_rebuilt_engine(self):
        """End-to-end differential: patch path vs rebuild path, bit-equal.

        The same evolving-repository stream is driven through an engine
        with in-place index patching (default) and one with the knob off
        (every install rebuilds).  Matches, rules, imputation stats and the
        per-record candidate sets + nodes_visited of every final index must
        coincide exactly.
        """
        import dataclasses as _dataclasses
        dataset, scale, seed, window = EVOLVING_WORKLOAD
        workload = build_workload(dataset, scale, seed)
        config = build_config(workload, window)
        base, holdout = split_repository(workload.repository, 0.3)
        records = workload.interleaved_records()

        def run(engine_config):
            engine = TERiDSEngine(
                repository=DataRepository(schema=workload.schema,
                                          samples=list(base.samples)),
                config=engine_config,
                discovery_config=evolving_discovery_config())
            matches = run_evolving_stream(engine, records, holdout,
                                          phases=EVOLVING_PHASES)
            return engine, matches

        patched_engine, patched_matches = run(config)
        rebuilt_engine, rebuilt_matches = run(
            _dataclasses.replace(config, patch_cdd_indexes=False))

        assert patched_engine.ctx.installs_patched > 0
        assert patched_engine.ctx.installs_rebuilt == 0
        assert rebuilt_engine.ctx.installs_patched == 0
        assert rebuilt_engine.ctx.installs_rebuilt > 0

        assert canonical_matches(patched_matches) == canonical_matches(
            rebuilt_matches)
        assert patched_engine.rules == rebuilt_engine.rules
        assert (patched_engine.imputer.stats.as_dict()
                == rebuilt_engine.imputer.stats.as_dict())
        assert (list(patched_engine.cdd_indexes)
                == list(rebuilt_engine.cdd_indexes))
        incomplete = [record for record in records
                      if record.missing_attributes(workload.schema)]
        assert incomplete
        for record in incomplete:
            for attribute, patched_index in patched_engine.cdd_indexes.items():
                rebuilt_index = rebuilt_engine.cdd_indexes[attribute]
                assert (patched_index.candidate_rules(record)
                        == rebuilt_index.candidate_rules(record))
                assert (patched_index.nodes_visited
                        == rebuilt_index.nodes_visited)
