"""Tests for the vocabulary / topic-cluster material behind the generators."""

import pytest

from repro.core.similarity import tokenize
from repro.datasets.vocab import (
    BASE_VOCABULARY,
    DOMAIN_SCHEMAS,
    TOPIC_CLUSTERS,
    cluster_tokens,
    topic_keywords,
)


class TestBaseVocabulary:
    def test_tokens_are_single_words(self):
        for word in BASE_VOCABULARY:
            assert tokenize(word) == {word}

    def test_no_duplicates(self):
        assert len(set(BASE_VOCABULARY)) == len(BASE_VOCABULARY)

    def test_reasonably_large(self):
        assert len(BASE_VOCABULARY) >= 50


class TestTopicClusters:
    def test_every_domain_has_schema_and_clusters(self):
        assert set(DOMAIN_SCHEMAS) == set(TOPIC_CLUSTERS)

    def test_each_domain_has_major_and_minority_topics(self):
        for domain, clusters in TOPIC_CLUSTERS.items():
            assert len(clusters) >= 8, domain
            assert any(name.endswith("misc0") for name in clusters), domain

    def test_topic_names_are_single_tokens(self):
        for clusters in TOPIC_CLUSTERS.values():
            for name in clusters:
                assert tokenize(name) == {name}

    def test_cluster_tokens_are_tokens(self):
        for domain, clusters in TOPIC_CLUSTERS.items():
            for name in clusters:
                for token in cluster_tokens(domain, name):
                    assert tokenize(token) == {token}

    def test_topic_keyword_listing(self):
        for domain in TOPIC_CLUSTERS:
            keywords = topic_keywords(domain)
            assert set(keywords) == set(TOPIC_CLUSTERS[domain])

    def test_topic_names_do_not_collide_with_base_vocabulary(self):
        """Keywords must select topical records only, so they cannot also be
        generic filler words."""
        base = set(BASE_VOCABULARY)
        for clusters in TOPIC_CLUSTERS.values():
            for name in clusters:
                assert name not in base

    def test_schemas_have_four_attributes(self):
        for domain, attributes in DOMAIN_SCHEMAS.items():
            assert len(attributes) == 4, domain
            assert len(set(attributes)) == 4
