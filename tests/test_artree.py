"""Unit tests for the aggregate R-tree substrate."""

import random

import pytest

from repro.indexes.artree import Aggregator, ARTree, Rect


class TestRect:
    def test_point_rect(self):
        rect = Rect.from_point([0.2, 0.4])
        assert rect.mins == (0.2, 0.4)
        assert rect.maxs == (0.2, 0.4)
        assert rect.dimensions == 2

    def test_from_intervals(self):
        rect = Rect.from_intervals([(0.1, 0.3), (0.2, 0.6)])
        assert rect.mins == (0.1, 0.2)
        assert rect.maxs == (0.3, 0.6)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Rect(mins=(0.5,), maxs=(0.1,))
        with pytest.raises(ValueError):
            Rect(mins=(0.1, 0.2), maxs=(0.3,))

    def test_union(self):
        union = Rect.from_point([0.1, 0.1]).union(Rect.from_point([0.5, 0.3]))
        assert union.mins == (0.1, 0.1)
        assert union.maxs == (0.5, 0.3)

    def test_intersects(self):
        left = Rect.from_intervals([(0.0, 0.5), (0.0, 0.5)])
        right = Rect.from_intervals([(0.4, 0.9), (0.4, 0.9)])
        apart = Rect.from_intervals([(0.8, 0.9), (0.8, 0.9)])
        assert left.intersects(right)
        assert right.intersects(left)
        assert not left.intersects(apart)

    def test_boundary_touch_counts_as_intersection(self):
        left = Rect.from_intervals([(0.0, 0.5)])
        right = Rect.from_intervals([(0.5, 1.0)])
        assert left.intersects(right)

    def test_contains_point(self):
        rect = Rect.from_intervals([(0.0, 0.5), (0.0, 0.5)])
        assert rect.contains_point([0.25, 0.5])
        assert not rect.contains_point([0.6, 0.1])

    def test_area_and_margin(self):
        rect = Rect.from_intervals([(0.0, 0.5), (0.0, 0.2)])
        assert rect.area() == pytest.approx(0.1)
        assert rect.margin() == pytest.approx(0.7)

    def test_enlargement(self):
        rect = Rect.from_intervals([(0.0, 0.5), (0.0, 0.5)])
        assert rect.enlargement(Rect.from_point([0.25, 0.25])) == pytest.approx(0.0)
        assert rect.enlargement(Rect.from_point([1.0, 0.5])) > 0.0

    def test_min_distance_l1(self):
        left = Rect.from_intervals([(0.0, 0.2), (0.0, 0.2)])
        right = Rect.from_intervals([(0.5, 0.6), (0.1, 0.3)])
        # dim0 gap = 0.3, dim1 overlap = 0.
        assert left.min_distance_to(right) == pytest.approx(0.3)
        assert right.min_distance_to(left) == pytest.approx(0.3)

    def test_center(self):
        rect = Rect.from_intervals([(0.0, 0.4), (0.2, 0.6)])
        assert rect.center() == (0.2, 0.4)


class TestARTreeBasics:
    def test_construction_validation(self):
        with pytest.raises(ValueError):
            ARTree(dimensions=0)
        with pytest.raises(ValueError):
            ARTree(dimensions=2, max_entries=1)

    def test_insert_and_len(self):
        tree = ARTree(dimensions=2, max_entries=4)
        for index in range(10):
            tree.insert_point([index / 10, index / 10], payload=index)
        assert len(tree) == 10

    def test_dimension_mismatch_rejected(self):
        tree = ARTree(dimensions=2)
        with pytest.raises(ValueError):
            tree.insert_point([0.1], payload="x")

    def test_range_search_finds_expected_points(self):
        tree = ARTree(dimensions=2, max_entries=4)
        points = [(i / 20, j / 20) for i in range(10) for j in range(10)]
        for point in points:
            tree.insert_point(point, payload=point)
        query = Rect.from_intervals([(0.0, 0.1), (0.0, 0.1)])
        found = {entry.payload for entry in tree.range_search(query)}
        expected = {point for point in points
                    if point[0] <= 0.1 and point[1] <= 0.1}
        assert found == expected

    def test_range_search_is_exhaustive_random(self):
        rng = random.Random(3)
        tree = ARTree(dimensions=3, max_entries=5)
        points = [tuple(rng.random() for _ in range(3)) for _ in range(200)]
        for point in points:
            tree.insert_point(point, payload=point)
        query = Rect.from_intervals([(0.2, 0.6), (0.1, 0.9), (0.0, 0.5)])
        found = {entry.payload for entry in tree.range_search(query)}
        expected = {point for point in points if query.contains_point(point)}
        assert found == expected

    def test_all_entries_iterates_everything(self):
        tree = ARTree(dimensions=1, max_entries=3)
        for index in range(25):
            tree.insert_point([index / 25], payload=index)
        assert {entry.payload for entry in tree.all_entries()} == set(range(25))

    def test_height_grows_with_inserts(self):
        tree = ARTree(dimensions=1, max_entries=2)
        assert tree.height() == 1
        for index in range(20):
            tree.insert_point([index / 20], payload=index)
        assert tree.height() >= 2

    def test_root_rect_covers_all_points(self):
        tree = ARTree(dimensions=2, max_entries=3)
        rng = random.Random(5)
        points = [(rng.random(), rng.random()) for _ in range(50)]
        for point in points:
            tree.insert_point(point, payload=point)
        root = tree.root_rect
        assert all(root.contains_point(point) for point in points)


class TestAggregates:
    def _counting_tree(self):
        aggregator = Aggregator(
            from_payload=lambda rect, payload: 1,
            merge=lambda left, right: left + right,
        )
        return ARTree(dimensions=1, max_entries=3, aggregator=aggregator)

    def test_root_aggregate_counts_entries(self):
        tree = self._counting_tree()
        for index in range(17):
            tree.insert_point([index / 17], payload=index)
        assert tree.root_aggregate == 17

    def test_keyword_set_aggregate(self):
        aggregator = Aggregator(
            from_payload=lambda rect, payload: frozenset(payload),
            merge=lambda left, right: left | right,
        )
        tree = ARTree(dimensions=1, max_entries=2, aggregator=aggregator)
        tree.insert_point([0.1], payload={"a"})
        tree.insert_point([0.5], payload={"b"})
        tree.insert_point([0.9], payload={"c"})
        assert tree.root_aggregate == {"a", "b", "c"}

    def test_combine_skips_none(self):
        aggregator = Aggregator(from_payload=lambda rect, payload: payload,
                                merge=lambda left, right: left + right)
        assert aggregator.combine([None, 2, None, 3]) == 5
        assert aggregator.combine([None, None]) is None


class TestTraverse:
    def test_traverse_prunes_subtrees(self):
        tree = ARTree(dimensions=1, max_entries=4)
        for index in range(100):
            tree.insert_point([index / 100], payload=index)
        query = Rect.from_intervals([(0.0, 0.05)])
        results, visited = tree.traverse(
            node_filter=lambda rect, aggregate: rect.intersects(query),
            entry_filter=lambda entry: entry.rect.intersects(query),
        )
        assert {entry.payload for entry in results} == set(range(6))
        # Pruning should avoid visiting the whole tree.
        total_nodes = sum(1 for _ in tree.all_entries())
        assert visited < total_nodes

    def test_traverse_without_entry_filter_returns_leaf_entries(self):
        tree = ARTree(dimensions=1, max_entries=4)
        for index in range(10):
            tree.insert_point([index / 10], payload=index)
        results, _ = tree.traverse(node_filter=lambda rect, aggregate: True)
        assert len(results) == 10


def _counting_aggregator():
    return Aggregator(from_payload=lambda rect, payload: 1,
                      merge=lambda left, right: left + right)


def _check_invariants(tree):
    """Every node's MBR/aggregate must match its members; uniform leaf depth."""
    depths = []

    def walk(node, depth):
        if node.is_leaf:
            depths.append(depth)
            members = [(entry.rect, entry.aggregate) for entry in node.entries]
        else:
            assert node.children, "empty branch node"
            members = [walk(child, depth + 1) for child in node.children]
        if not members:
            assert node.rect is None and node.aggregate is None
            return None, None
        rect = members[0][0]
        total = 0
        for member_rect, member_aggregate in members:
            rect = rect.union(member_rect) if member_rect is not rect else rect
            total += member_aggregate
        assert node.rect == rect
        assert node.aggregate == total
        return rect, total

    walk(tree._root, 1)
    assert len(set(depths)) == 1, f"leaves at mixed depths {depths}"


class TestRemove:
    def _populated(self, count, max_entries=4, seed=11):
        rng = random.Random(seed)
        tree = ARTree(dimensions=2, max_entries=max_entries,
                      aggregator=_counting_aggregator())
        items = []
        for index in range(count):
            rect = Rect.from_point([rng.random(), rng.random()])
            items.append((rect, index))
            tree.insert(rect, index)
        return tree, items

    def test_remove_repairs_aggregates_and_mbrs(self):
        tree, items = self._populated(60)
        rng = random.Random(3)
        rng.shuffle(items)
        for removed, (rect, payload) in enumerate(items[:40]):
            assert tree.remove(rect, payload)
            assert len(tree) == 59 - removed
            assert tree.root_aggregate == 59 - removed
            _check_invariants(tree)

    def test_remove_underflow_condenses_and_reinserts(self):
        tree, items = self._populated(80, max_entries=4)
        assert tree.height() > 2  # deep enough for cascading underflow
        survivors = dict((payload, rect) for rect, payload in items)
        rng = random.Random(5)
        order = list(survivors)
        rng.shuffle(order)
        for payload in order[:76]:
            assert tree.remove(survivors.pop(payload), payload)
            _check_invariants(tree)
        # Every survivor is still findable after all the condensing.
        assert {entry.payload for entry in tree.all_entries()} == set(survivors)

    def test_remove_last_entry_leaves_empty_reusable_tree(self):
        tree = ARTree(dimensions=1, aggregator=_counting_aggregator())
        rect = Rect.from_point([0.5])
        tree.insert(rect, "only")
        assert tree.remove(rect, "only")
        assert len(tree) == 0
        assert tree.root_rect is None and tree.root_aggregate is None
        tree.insert(rect, "again")  # tree stays usable
        assert len(tree) == 1 and tree.root_aggregate == 1

    def test_remove_missing_returns_false(self):
        tree, items = self._populated(10)
        assert not tree.remove(Rect.from_point([0.5, 0.5]), "nope")
        assert not tree.remove(items[0][0], "wrong-payload")
        assert len(tree) == 10

    def test_remove_with_match_predicate(self):
        tree = ARTree(dimensions=1)
        rect = Rect.from_point([0.3])
        tree.insert(rect, {"id": "a"})
        tree.insert(rect, {"id": "b"})
        assert tree.remove(rect, match=lambda payload: payload["id"] == "b")
        assert [entry.payload["id"] for entry in tree.all_entries()] == ["a"]

    def test_min_entries_validation(self):
        with pytest.raises(ValueError):
            ARTree(dimensions=1, max_entries=4, min_entries=3)
        with pytest.raises(ValueError):
            ARTree(dimensions=1, max_entries=4, min_entries=0)


class TestUpdate:
    def test_in_place_update_refreshes_aggregate_only(self):
        aggregator = Aggregator(from_payload=lambda rect, payload: payload,
                                merge=lambda left, right: left + right)
        tree = ARTree(dimensions=1, max_entries=4, aggregator=aggregator)
        rects = [Rect.from_point([index / 10]) for index in range(10)]
        for index, rect in enumerate(rects):
            tree.insert(rect, index)
        before = sum(range(10))
        assert tree.root_aggregate == before
        assert tree.update(rects[3], 100, match=lambda payload: payload == 3)
        assert tree.root_aggregate == before - 3 + 100
        assert len(tree) == 10

    def test_in_place_update_preserves_leaf_entry_order(self):
        tree = ARTree(dimensions=1, max_entries=8)
        rects = [Rect.from_point([index / 10]) for index in range(5)]
        for index, rect in enumerate(rects):
            tree.insert(rect, index)
        assert tree.update(rects[2], "swapped", match=lambda payload: payload == 2)
        assert [entry.payload for entry in tree._root.entries] == [
            0, 1, "swapped", 3, 4]

    def test_update_with_moved_rect_relocates_entry(self):
        tree = ARTree(dimensions=1, max_entries=4,
                      aggregator=_counting_aggregator())
        old_rect = Rect.from_point([0.1])
        new_rect = Rect.from_point([0.9])
        tree.insert(old_rect, "mover")
        for index in range(6):
            tree.insert(Rect.from_point([0.2 + index / 20]), index)
        assert tree.update(old_rect, "mover", new_rect=new_rect)
        assert len(tree) == 7
        assert not tree.remove(old_rect, "mover")
        assert tree.remove(new_rect, "mover")

    def test_update_missing_returns_false(self):
        tree = ARTree(dimensions=1)
        assert not tree.update(Rect.from_point([0.5]), "ghost")


class TestBulkLoad:
    def test_bulk_load_equals_inserts_for_small_sets(self):
        items = [(Rect.from_point([index / 10]), index) for index in range(5)]
        tree = ARTree(dimensions=1, max_entries=8)
        tree.bulk_load(items)
        # With at most max_entries items the packed tree is a single leaf
        # holding the input order — identical to sequential insertion.
        assert tree.height() == 1
        assert [entry.payload for entry in tree._root.entries] == list(range(5))

    def test_bulk_load_large_set_invariants_and_search(self):
        rng = random.Random(23)
        items = [(Rect.from_point([rng.random(), rng.random()]), index)
                 for index in range(300)]
        tree = ARTree(dimensions=2, max_entries=6,
                      aggregator=_counting_aggregator())
        tree.bulk_load(items)
        assert len(tree) == 300
        assert tree.root_aggregate == 300
        _check_invariants(tree)
        query = Rect.from_intervals([(0.0, 0.25), (0.0, 0.25)])
        expected = {payload for rect, payload in items
                    if rect.intersects(query)}
        assert {entry.payload
                for entry in tree.range_search(query)} == expected

    def test_bulk_load_requires_empty_tree(self):
        tree = ARTree(dimensions=1)
        tree.insert(Rect.from_point([0.1]), "x")
        with pytest.raises(ValueError):
            tree.bulk_load([(Rect.from_point([0.2]), "y")])

    def test_bulk_load_empty_iterable_is_noop(self):
        tree = ARTree(dimensions=1)
        tree.bulk_load([])
        assert len(tree) == 0 and tree.root_rect is None

    def test_bulk_loaded_tree_supports_remove(self):
        rng = random.Random(31)
        items = [(Rect.from_point([rng.random()]), index)
                 for index in range(100)]
        tree = ARTree(dimensions=1, max_entries=4,
                      aggregator=_counting_aggregator())
        tree.bulk_load(items)
        for rect, payload in items[:50]:
            assert tree.remove(rect, payload)
            _check_invariants(tree)
        assert len(tree) == 50
