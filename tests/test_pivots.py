"""Unit tests for the cost-model-based pivot selection (Section 5.4, App. B)."""

import math

import pytest

from repro.core.tuples import Record, Schema
from repro.imputation.repository import DataRepository
from repro.indexes.pivots import (
    PivotSelectionConfig,
    PivotTable,
    pivot_selection_cost,
    select_pivots,
    shannon_entropy,
)


class TestShannonEntropy:
    def test_uniform_distribution_maximises_entropy(self):
        distances = [i / 10 + 0.05 for i in range(10)]
        entropy = shannon_entropy(distances, buckets=10)
        assert entropy == pytest.approx(math.log(10), rel=1e-6)

    def test_degenerate_distribution_zero_entropy(self):
        assert shannon_entropy([0.5] * 20, buckets=10) == 0.0

    def test_empty_and_invalid_inputs(self):
        assert shannon_entropy([], buckets=10) == 0.0
        assert shannon_entropy([0.5], buckets=1) == 0.0

    def test_entropy_monotone_in_spread(self):
        clumped = shannon_entropy([0.1, 0.11, 0.12, 0.13], buckets=10)
        spread = shannon_entropy([0.05, 0.35, 0.65, 0.95], buckets=10)
        assert spread > clumped

    def test_distance_one_goes_to_last_bucket(self):
        # values exactly 1.0 must not index out of range
        assert shannon_entropy([1.0, 1.0], buckets=10) == 0.0


class TestSelectPivots:
    def test_selects_pivot_per_attribute(self, health_repository):
        pivots = select_pivots(health_repository)
        for attribute in health_repository.schema:
            assert pivots.pivot_count(attribute) >= 1
            assert pivots.main_pivot(attribute) in health_repository.domain(attribute)

    def test_max_pivots_respected(self, health_repository):
        config = PivotSelectionConfig(max_pivots=2, min_entropy=100.0)
        pivots = select_pivots(health_repository, config)
        for attribute in health_repository.schema:
            assert pivots.pivot_count(attribute) == 2

    def test_single_pivot_when_entropy_reached(self, health_repository):
        config = PivotSelectionConfig(max_pivots=5, min_entropy=0.0)
        pivots = select_pivots(health_repository, config)
        for attribute in health_repository.schema:
            assert pivots.pivot_count(attribute) == 1

    def test_main_pivot_has_max_entropy(self, health_repository):
        pivots = select_pivots(health_repository)
        for attribute in health_repository.schema:
            report = pivots.reports[attribute]
            assert report.main_entropy == max(report.entropies)

    def test_empty_repository_rejected(self, health_schema):
        with pytest.raises(ValueError):
            select_pivots(DataRepository(schema=health_schema, samples=[]))

    def test_reports_populated(self, health_repository):
        pivots = select_pivots(health_repository)
        for attribute in health_repository.schema:
            report = pivots.reports[attribute]
            assert report.attribute == attribute
            assert report.candidates_evaluated > 0
            assert len(report.pivots) == len(report.entropies)

    def test_selection_is_deterministic(self, health_repository):
        first = select_pivots(health_repository)
        second = select_pivots(health_repository)
        assert first.pivots == second.pivots


class TestPivotTable:
    def test_convert_value_distance_semantics(self, health_pivots):
        main = health_pivots.main_pivot("diagnosis")
        assert health_pivots.convert_value("diagnosis", main) == 0.0
        assert 0.0 <= health_pivots.convert_value("diagnosis", "flu") <= 1.0

    def test_convert_missing_value_is_far(self, health_pivots):
        assert health_pivots.convert_value("diagnosis", None) == 1.0

    def test_convert_with_auxiliary_pivot_index(self, health_pivots):
        aux = health_pivots.auxiliary_pivots("symptom")
        value = health_pivots.convert_value("symptom", "fever cough",
                                            pivot_index=len(aux))
        assert 0.0 <= value <= 1.0

    def test_convert_record(self, health_pivots, health_repository):
        sample = health_repository.sample_by_rid("s0")
        point = health_pivots.convert_record(sample)
        assert len(point) == len(health_repository.schema)
        assert all(0.0 <= coordinate <= 1.0 for coordinate in point)

    def test_all_pivots_order(self, health_pivots):
        for attribute in health_pivots.schema:
            pivots = health_pivots.all_pivots(attribute)
            assert pivots[0] == health_pivots.main_pivot(attribute)
            assert pivots[1:] == health_pivots.auxiliary_pivots(attribute)


class TestPivotSelectionCost:
    def test_cost_grows_with_repository(self, health_repository, health_schema):
        small = DataRepository(schema=health_schema,
                               samples=health_repository.samples[:3])
        assert pivot_selection_cost(small) < pivot_selection_cost(health_repository)

    def test_cost_positive(self, health_repository):
        assert pivot_selection_cost(health_repository) > 0
