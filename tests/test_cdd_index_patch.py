"""Differential tests for in-place CDD-index patching (``apply_diff``).

The patch path must be *bit-identical* to a fresh rebuild: identical tree
structures (hence ``nodes_visited``), identical candidate-rule order,
identical aggregates and lattice intervals.  A hypothesis property drives
random promote/retire/widen/reorder sequences through ``apply_diff`` and
compares every observable against ``CDDIndex`` built from scratch on the
same rule list.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tuples import Record, Schema
from repro.imputation.cdd import (
    CONSTRAINT_CONSTANT,
    CONSTRAINT_INTERVAL,
    AttributeConstraint,
    CDDRule,
)
from repro.imputation.repository import DataRepository
from repro.indexes.cdd_index import CDDIndex
from repro.indexes.pivots import PivotSelectionConfig, select_pivots

DEPENDENT = "diagnosis"
SCHEMA = Schema(attributes=("gender", "symptom", "diagnosis", "treatment"))

_ROWS = [
    ("male", "weight loss blurred vision", "diabetes", "drug therapy"),
    ("male", "loss of weight thirst", "diabetes", "dietary therapy"),
    ("female", "fever cough low spirit", "pneumonia", "antibiotics rest"),
    ("male", "fever poor appetite cough", "flu", "drink more sleep more"),
    ("female", "red eye itchy shed tears", "conjunctivitis", "eye drop"),
    ("male", "blurred vision fatigue", "diabetes", "drug therapy"),
    ("female", "cough congestion chills", "flu", "fluids rest"),
]

PIVOTS = select_pivots(
    DataRepository(schema=SCHEMA, samples=[
        Record(rid=f"s{index}",
               values=dict(zip(SCHEMA.attributes, row)),
               source="repository")
        for index, row in enumerate(_ROWS)
    ]),
    PivotSelectionConfig(buckets=5, min_entropy=0.5, max_pivots=2),
)


def _record(gender, symptom, treatment):
    return Record(rid="probe", source="stream",
                  values={"gender": gender, "symptom": symptom,
                          "diagnosis": None, "treatment": treatment})


#: Probe records covering complete tuples and missing determinants.
PROBES = [
    _record("male", "weight loss blurred vision", "drug therapy"),
    _record("female", "fever cough", "antibiotics rest"),
    _record("male", None, "eye drop"),
    _record(None, "blurred vision", None),
]


def make_rule_pool():
    """A deterministic pool of promotable rules spanning four lattice groups."""
    pool = []
    bands = [(0.0, 0.3), (0.0, 0.5), (0.2, 0.7), (0.4, 0.9)]
    for determinant in ("gender", "symptom", "treatment"):
        for band_index, (low, high) in enumerate(bands):
            pool.append(CDDRule(
                determinants=(AttributeConstraint(
                    determinant, CONSTRAINT_INTERVAL, interval=(low, high)),),
                dependent=DEPENDENT,
                dependent_interval=(round(0.05 * band_index, 2),
                                    round(0.35 + 0.05 * band_index, 2)),
                support=3 + band_index,
                rule_id=f"pool:{determinant}:band{band_index}"))
    constants = {"gender": ["male", "female"],
                 "treatment": ["drug therapy", "eye drop", "antibiotics rest"]}
    for determinant, values in constants.items():
        for value_index, value in enumerate(values):
            pool.append(CDDRule(
                determinants=(AttributeConstraint(
                    determinant, CONSTRAINT_CONSTANT, constant=value),),
                dependent=DEPENDENT,
                dependent_interval=(0.0, round(0.2 + 0.1 * value_index, 2)),
                support=2 + value_index,
                rule_id=f"pool:{determinant}={value}"))
    for band_index, (low, high) in enumerate(bands[:2]):
        pool.append(CDDRule(
            determinants=(
                AttributeConstraint("gender", CONSTRAINT_CONSTANT,
                                    constant="male"),
                AttributeConstraint("symptom", CONSTRAINT_INTERVAL,
                                    interval=(low, high)),
            ),
            dependent=DEPENDENT,
            dependent_interval=(0.1, round(0.5 + 0.1 * band_index, 2)),
            support=4,
            rule_id=f"pool:gender+symptom:{band_index}"))
    return pool


POOL = make_rule_pool()


def widen(rule: CDDRule, amount: float = 0.1) -> CDDRule:
    """A widened replacement: same rule id, larger interval, more support."""
    low, high = rule.dependent_interval
    return dataclasses.replace(
        rule,
        dependent_interval=(max(0.0, round(low - amount, 4)),
                            min(1.0, round(high + amount, 4))),
        support=rule.support + 1)


def _tree_shape(tree):
    """Full structural fingerprint of an aR-tree (rects, aggregates, order)."""
    def node_shape(node):
        if node.is_leaf:
            return ("leaf", node.rect, node.aggregate,
                    [(entry.rect, entry.payload.rule_id, entry.aggregate)
                     for entry in node.entries])
        return ("branch", node.rect, node.aggregate,
                [node_shape(child) for child in node.children])
    return node_shape(tree._root)


def assert_bit_identical(patched: CDDIndex, fresh: CDDIndex):
    """Patched index must be indistinguishable from a from-scratch build."""
    assert patched.rules == fresh.rules
    assert list(patched.lattice.keys()) == list(fresh.lattice.keys())
    for key, fresh_node in fresh.lattice.items():
        node = patched.lattice[key]
        assert node.level == fresh_node.level
        assert node.combined_interval == fresh_node.combined_interval
        assert node.rules == fresh_node.rules
    assert list(patched._trees.keys()) == list(fresh._trees.keys())
    for key, fresh_tree in fresh._trees.items():
        assert _tree_shape(patched._trees[key]) == _tree_shape(fresh_tree)
    for record in PROBES:
        got = patched.candidate_rules(record)
        got_visited = patched.nodes_visited
        want = fresh.candidate_rules(record)
        want_visited = fresh.nodes_visited
        assert got == want
        assert got_visited == want_visited


def fresh_index(rules, max_entries=8):
    return CDDIndex(dependent=DEPENDENT, rules=rules, schema=SCHEMA,
                    pivots=PIVOTS, max_entries=max_entries)


class TestApplyDiffDeterministic:
    def test_widen_only_patches_in_place(self):
        rules = POOL[:8]
        index = fresh_index(rules)
        new_rules = [widen(rule) if i % 2 == 0 else rule
                     for i, rule in enumerate(rules)]
        stats = index.apply_diff(promoted=[], retired=[],
                                 widened=[r for i, r in enumerate(new_rules)
                                          if i % 2 == 0],
                                 rules=new_rules)
        assert stats.groups_replayed == 0
        assert stats.groups_patched >= 1
        assert stats.entries_updated == 4
        assert_bit_identical(index, fresh_index(new_rules))

    def test_retire_from_single_leaf_uses_remove(self):
        rules = [r for r in POOL if r.determinant_attributes == ("gender",)]
        index = fresh_index(rules)
        survivors = [r for r in rules if r.rule_id != rules[2].rule_id]
        stats = index.apply_diff(promoted=[], retired=[rules[2].rule_id],
                                 widened=[], rules=survivors)
        assert stats.entries_removed == 1
        assert stats.groups_replayed == 0
        assert_bit_identical(index, fresh_index(survivors))

    def test_promote_new_group_creates_lattice_node_and_tree(self):
        singles = [r for r in POOL if len(r.determinant_attributes) == 1]
        combined = [r for r in POOL if len(r.determinant_attributes) == 2]
        index = fresh_index(singles)
        assert ("gender", "symptom") not in index._trees
        new_rules = singles + combined
        stats = index.apply_diff(promoted=combined, retired=[], widened=[],
                                 rules=new_rules)
        assert stats.groups_added == 1
        assert ("gender", "symptom") in index._trees
        assert_bit_identical(index, fresh_index(new_rules))

    def test_retiring_whole_group_drops_tree_and_node(self):
        index = fresh_index(POOL)
        survivors = [r for r in POOL
                     if r.determinant_attributes != ("treatment",)]
        stats = index.apply_diff(
            promoted=[], widened=[],
            retired=[r.rule_id for r in POOL
                     if r.determinant_attributes == ("treatment",)],
            rules=survivors)
        assert stats.groups_removed == 1
        assert ("treatment",) not in index._trees
        assert ("treatment",) not in index.lattice
        assert_bit_identical(index, fresh_index(survivors))

    def test_untouched_groups_keep_their_tree_objects(self):
        index = fresh_index(POOL)
        symptom_tree = index._trees[("symptom",)]
        new_rules = [widen(r) if r.determinant_attributes == ("gender",)
                     else r for r in POOL]
        stats = index.apply_diff(
            promoted=[], retired=[],
            widened=[r for r in new_rules
                     if r.determinant_attributes == ("gender",)],
            rules=new_rules)
        assert stats.groups_untouched >= 2
        assert index._trees[("symptom",)] is symptom_tree
        assert_bit_identical(index, fresh_index(new_rules))

    def test_deep_tree_membership_change_replays_group(self):
        # max_entries=2 forces multi-level trees, where membership changes
        # cannot be patched in place and must replay the group.
        rules = POOL[:12]
        index = fresh_index(rules, max_entries=2)
        survivors = rules[:3] + rules[4:]
        stats = index.apply_diff(promoted=[], retired=[rules[3].rule_id],
                                 widened=[], rules=survivors)
        assert stats.groups_replayed >= 1
        assert_bit_identical(index, fresh_index(survivors, max_entries=2))

    def test_diff_to_empty_rule_set(self):
        index = fresh_index(POOL[:6])
        index.apply_diff(promoted=[],
                         retired=[r.rule_id for r in POOL[:6]],
                         widened=[], rules=[])
        assert index.rules == []
        assert index._trees == {} and index.lattice == {}
        assert_bit_identical(index, fresh_index([]))

    def test_pivot_distance_memo_is_shared_and_stable(self):
        PIVOTS._distance_cache.clear()
        first = fresh_index(POOL)
        assert PIVOTS._distance_cache, "constant coordinates were not memoised"
        cached = dict(PIVOTS._distance_cache)
        second = fresh_index(POOL)
        assert PIVOTS._distance_cache == cached  # pure hits, no new entries
        for key in first._trees:
            assert _tree_shape(first._trees[key]) == _tree_shape(second._trees[key])


class TestApplyDiffProperty:
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_random_diff_sequences_match_fresh_rebuild(self, data):
        max_entries = data.draw(st.sampled_from([2, 8]), label="max_entries")
        start_ids = data.draw(st.sets(st.sampled_from(range(len(POOL))),
                                      min_size=2, max_size=len(POOL)),
                              label="start")
        current = [POOL[i] for i in sorted(start_ids)]
        index = fresh_index(current, max_entries=max_entries)
        steps = data.draw(st.integers(min_value=1, max_value=4), label="steps")
        for _ in range(steps):
            survivors = list(current)
            # retire a few
            retired = []
            if survivors and data.draw(st.booleans(), label="retire?"):
                count = data.draw(st.integers(0, len(survivors) - 1),
                                  label="retire-count")
                for victim in data.draw(
                        st.permutations(range(len(survivors))),
                        label="retire-order")[:count]:
                    retired.append(survivors[victim].rule_id)
                survivors = [r for r in survivors
                             if r.rule_id not in set(retired)]
            # widen a few survivors in place
            widened = []
            for position in range(len(survivors)):
                if data.draw(st.booleans(), label="widen?"):
                    survivors[position] = widen(survivors[position])
                    widened.append(survivors[position])
            # promote unused pool rules at random positions
            current_ids = {r.rule_id for r in survivors}
            available = [r for r in POOL if r.rule_id not in current_ids]
            promoted = []
            if available and data.draw(st.booleans(), label="promote?"):
                count = data.draw(st.integers(1, len(available)),
                                  label="promote-count")
                for rule in available[:count]:
                    position = data.draw(st.integers(0, len(survivors)),
                                         label="promote-at")
                    survivors.insert(position, rule)
                    promoted.append(rule)
            # occasionally reorder the whole list (constant re-ranking in the
            # maintainer reorders emissions without changing membership)
            if data.draw(st.booleans(), label="reorder?"):
                survivors = data.draw(st.permutations(survivors),
                                      label="reorder")
            current = list(survivors)
            index.apply_diff(promoted=promoted, retired=retired,
                             widened=widened, rules=current)
            assert_bit_identical(index,
                                 fresh_index(current, max_entries=max_entries))
