"""Tests for the self-tuning runtime controller and the reconfiguration seams.

The heavyweight guarantee: **bit-identity under any reconfiguration
schedule**.  Whatever sequence of worker re-scalings, pool-mode flips,
batch-size changes and routed↔broadcast transitions is applied at batch
boundaries — by hand or by an active :class:`RuntimeController` — the match
set, the result set and every pruning / grid counter equal the serial
reference exactly (a hypothesis property drives random schedules through
the same assertion).  Around it: hysteresis / cool-down unit tests of the
decision rules, checkpoint round-trips of the controller state, and
regression tests for the seams the reconfiguration path exposed (executor
close→reuse, params-blob staleness, metric re-binding).
"""

import json
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from golden_utils import (
    GOLDEN_WORKLOADS,
    build_config,
    build_workload,
    canonical_matches,
    golden_path,
)
from test_sharded_grid import _observables, _run, _small_config, _small_workload
from repro.core.engine import TERiDSEngine
from repro.ingest.batcher import BatchPolicy
from repro.ingest.driver import IngestDriver
from repro.ingest.sources import ReplaySource
from repro.obs.registry import MetricsRegistry
from repro.runtime import (
    MODE_ACTIVE,
    MODE_OBSERVE,
    MODE_OFF,
    ControllerPolicy,
    MicroBatchExecutor,
    RuntimeController,
    SerialExecutor,
)
from repro.runtime.controller import (
    ACTION_BROADCAST,
    ACTION_RETARGET_DOWN,
    ACTION_RETARGET_UP,
    ACTION_ROUTE,
    ACTION_SCALE_DOWN,
    ACTION_SCALE_UP,
    _effective_cpus,
)
from repro.runtime.shm_plane import HAS_SHM

needs_shm = pytest.mark.skipif(
    not HAS_SHM, reason="requires numpy and multiprocessing.shared_memory")

_WORKLOAD = _small_workload()
_SERIAL = _run(_WORKLOAD, _small_config(_WORKLOAD), SerialExecutor())


def _run_with_schedule(executor, schedule, chunk=16):
    """Feed the workload in fixed chunks, reconfiguring at batch boundaries.

    ``schedule`` maps chunk index → ``reconfigure`` kwargs, applied *before*
    that chunk is processed (a quiescent point, exactly where the controller
    acts).
    """
    config = _small_config(_WORKLOAD)
    engine = TERiDSEngine(repository=_WORKLOAD.repository, config=config,
                          executor=executor)
    records = list(_WORKLOAD.interleaved_records())
    matches = []
    try:
        for index in range(0, len(records), chunk):
            step = schedule.get(index // chunk)
            if step:
                engine.executor.reconfigure(**step)
            matches.extend(engine.process_batch(records[index:index + chunk]))
        return _observables(engine, matches)
    finally:
        engine.close()


# ---------------------------------------------------------------------------
# Bit-identity under forced reconfiguration schedules
# ---------------------------------------------------------------------------
def test_worker_rescale_schedule_is_bit_identical():
    """1 → 2 → 4 → 2 workers mid-stream changes nothing observable."""
    executor = MicroBatchExecutor(batch_size=16, max_workers=1,
                                  pool_mode="per-batch")
    schedule = {1: {"max_workers": 2}, 2: {"max_workers": 4},
                4: {"max_workers": 2}}
    assert _run_with_schedule(executor, schedule) == _SERIAL


def test_pool_mode_flip_schedule_is_bit_identical():
    """persistent ↔ per-batch flips tear pools down and re-seed cleanly."""
    executor = MicroBatchExecutor(batch_size=16, max_workers=2,
                                  pool_mode="persistent")
    schedule = {1: {"pool_mode": "per-batch"},
                3: {"pool_mode": "persistent"},
                5: {"pool_mode": "auto"}}
    assert _run_with_schedule(executor, schedule) == _SERIAL


def test_batch_size_retarget_schedule_is_bit_identical():
    executor = MicroBatchExecutor(batch_size=16)
    schedule = {1: {"batch_size": 4}, 3: {"batch_size": 64},
                5: {"batch_size": 1}}
    assert _run_with_schedule(executor, schedule) == _SERIAL


def test_combined_schedule_is_bit_identical():
    executor = MicroBatchExecutor(batch_size=8, max_workers=1,
                                  pool_mode="per-batch")
    schedule = {
        1: {"max_workers": 3, "pool_mode": "persistent", "batch_size": 4},
        3: {"max_workers": 2, "pool_mode": "per-batch"},
        4: {"batch_size": 32},
    }
    assert _run_with_schedule(executor, schedule) == _SERIAL


@needs_shm
def test_delta_routing_flip_schedule_is_bit_identical():
    """routed ↔ broadcast flips on the live shm plane change nothing."""
    executor = MicroBatchExecutor(batch_size=16, max_workers=2,
                                  shard_lookup=True, shm_plane=True,
                                  delta_routing=True)
    executor._shm_inline = True
    schedule = {1: {"delta_routing": False}, 3: {"delta_routing": True},
                4: {"delta_routing": False}}
    assert _run_with_schedule(executor, schedule) == _SERIAL


_ACTIONS = st.sampled_from([
    {"max_workers": 1}, {"max_workers": 2}, {"max_workers": 3},
    {"pool_mode": "persistent"}, {"pool_mode": "per-batch"},
    {"pool_mode": "auto"},
    {"batch_size": 4}, {"batch_size": 16},
    {"max_workers": 2, "pool_mode": "persistent", "batch_size": 8},
])


@given(schedule=st.dictionaries(st.integers(min_value=0, max_value=8),
                                _ACTIONS, max_size=4))
@settings(max_examples=8, deadline=None)
def test_random_reconfiguration_schedules_are_bit_identical(schedule):
    executor = MicroBatchExecutor(batch_size=8, max_workers=1,
                                  pool_mode="per-batch")
    assert _run_with_schedule(executor, schedule) == _SERIAL


# ---------------------------------------------------------------------------
# reconfigure() validation
# ---------------------------------------------------------------------------
class TestReconfigureValidation:
    def test_rejects_bad_knob_values(self):
        executor = MicroBatchExecutor(batch_size=8)
        with pytest.raises(ValueError, match="batch_size"):
            executor.reconfigure(batch_size=0)
        with pytest.raises(ValueError, match="max_workers"):
            executor.reconfigure(max_workers=0)
        with pytest.raises(ValueError, match="pool_mode"):
            executor.reconfigure(pool_mode="sometimes")

    def test_rejects_delta_routing_without_shm_plane(self):
        executor = MicroBatchExecutor(batch_size=8, max_workers=2)
        with pytest.raises(ValueError, match="shm_plane"):
            executor.reconfigure(delta_routing=False)

    @needs_shm
    def test_rejects_non_persistent_pool_on_shm_plane(self):
        executor = MicroBatchExecutor(batch_size=8, max_workers=2,
                                      shard_lookup=True, shm_plane=True)
        with pytest.raises(ValueError, match="persistent"):
            executor.reconfigure(pool_mode="per-batch")

    def test_reports_changed_knobs_only(self):
        executor = MicroBatchExecutor(batch_size=8, max_workers=2,
                                      pool_mode="per-batch")
        changed = executor.reconfigure(max_workers=4, batch_size=8)
        assert changed == {"max_workers": (2, 4)}
        assert executor.reconfigure(max_workers=4) == {}


# ---------------------------------------------------------------------------
# Controller decision rules (hysteresis, cool-down, modes)
# ---------------------------------------------------------------------------
def _controller_engine(max_workers=2):
    config = _small_config(_WORKLOAD)
    return TERiDSEngine(
        repository=_WORKLOAD.repository, config=config,
        executor=MicroBatchExecutor(batch_size=8, max_workers=max_workers,
                                    pool_mode="per-batch"))


def _tick(controller, seconds, queue_depth):
    """Simulate one batch boundary: ``seconds`` of measured stage time and
    the given arrival-queue depth, then run the evaluation."""
    ctx = controller.ctx
    ctx.timer.totals["synthetic"] = (
        ctx.timer.totals.get("synthetic", 0.0) + seconds)
    ctx.ingest.queue_depths.append(queue_depth)
    ctx.batch_seq += 1
    return controller.after_batch()


class TestControllerDecisions:
    def test_scale_up_under_sustained_overload(self):
        engine = _controller_engine(max_workers=2)
        policy = ControllerPolicy(slo_p95_seconds=0.1, window=3,
                                  cooldown_batches=2, backlog_high=10)
        ctrl = RuntimeController(engine, mode=MODE_ACTIVE, policy=policy)
        try:
            decisions = []
            for _ in range(5):
                decisions.extend(_tick(ctrl, seconds=1.0, queue_depth=50))
            ups = [d for d in decisions if d["action"] == ACTION_SCALE_UP]
            assert ups and ups[0]["applied"]
            assert engine.executor.max_workers == 3
            assert ctrl.state["target_workers"] == 3
            assert ctrl.state["decisions"][ACTION_SCALE_UP] == 1
        finally:
            engine.close()

    def test_cooldown_blocks_consecutive_scalings(self):
        engine = _controller_engine(max_workers=1)
        policy = ControllerPolicy(slo_p95_seconds=0.1, window=2,
                                  cooldown_batches=3, backlog_high=10)
        ctrl = RuntimeController(engine, mode=MODE_ACTIVE, policy=policy)
        try:
            # Enough overloaded ticks to fill the window twice over: without
            # the cool-down this would scale twice, with it exactly once
            # (the second needs the window *and* the cool-down to elapse).
            for _ in range(5):
                _tick(ctrl, seconds=1.0, queue_depth=50)
            assert engine.executor.max_workers == 2
            assert ctrl.state["cooldown_remaining"] > 0
        finally:
            engine.close()

    def test_scale_down_when_idle(self):
        engine = _controller_engine(max_workers=4)
        policy = ControllerPolicy(slo_p95_seconds=10.0, window=3,
                                  cooldown_batches=0, backlog_low=5)
        ctrl = RuntimeController(engine, mode=MODE_ACTIVE, policy=policy)
        try:
            decisions = []
            for _ in range(4):
                decisions.extend(_tick(ctrl, seconds=0.001, queue_depth=0))
            downs = [d for d in decisions
                     if d["action"] == ACTION_SCALE_DOWN]
            assert downs  # multiplicative decrease: 4 -> 2
            assert engine.executor.max_workers == 2
        finally:
            engine.close()

    def test_clamp_rightsizes_workers_to_effective_cpus(self):
        cpus = _effective_cpus()
        engine = _controller_engine(max_workers=cpus + 3)
        policy = ControllerPolicy(max_workers=cpus + 3,
                                  clamp_workers_to_cpus=True, window=8)
        ctrl = RuntimeController(engine, mode=MODE_ACTIVE, policy=policy)
        try:
            # Structural rule: fires on the very first evaluation, long
            # before the 8-batch latency window could fill.
            decisions = _tick(ctrl, seconds=0.01, queue_depth=50)
            downs = [d for d in decisions
                     if d["action"] == ACTION_SCALE_DOWN]
            assert downs and downs[0]["applied"]
            assert "effective_cpus" in downs[0]["reason"]
            assert engine.executor.max_workers == max(1, cpus)
            assert ctrl.state["target_workers"] == max(1, cpus)
            # Rightsized already — the clamp never fires a second time.
            assert _tick(ctrl, seconds=0.01, queue_depth=50) == []
        finally:
            engine.close()

    def test_clamp_disabled_by_default(self):
        engine = _controller_engine(max_workers=_effective_cpus() + 3)
        ctrl = RuntimeController(engine, mode=MODE_ACTIVE,
                                 policy=ControllerPolicy(window=8))
        try:
            assert _tick(ctrl, seconds=0.01, queue_depth=50) == []
            assert engine.executor.max_workers == _effective_cpus() + 3
        finally:
            engine.close()

    def test_clamp_caps_aimd_scale_up(self):
        cpus = _effective_cpus()
        engine = _controller_engine(max_workers=cpus)
        policy = ControllerPolicy(slo_p95_seconds=0.1, window=2,
                                  cooldown_batches=0, backlog_high=10,
                                  max_workers=cpus + 3,
                                  clamp_workers_to_cpus=True)
        ctrl = RuntimeController(engine, mode=MODE_ACTIVE, policy=policy)
        try:
            # Sustained overload would scale up, but the clamp's bound is
            # also the AIMD ceiling — oversubscribing can't help.
            for _ in range(6):
                decisions = _tick(ctrl, seconds=1.0, queue_depth=50)
                assert not [d for d in decisions
                            if d["action"] == ACTION_SCALE_UP]
            assert engine.executor.max_workers == cpus
        finally:
            engine.close()

    def test_no_decision_inside_hysteresis_corridor(self):
        engine = _controller_engine(max_workers=2)
        policy = ControllerPolicy(slo_p95_seconds=1.0, window=2,
                                  cooldown_batches=0, low_band=0.4)
        ctrl = RuntimeController(engine, mode=MODE_ACTIVE, policy=policy)
        try:
            for _ in range(6):  # p95 ~0.7 * slo: inside the corridor
                assert _tick(ctrl, seconds=0.7, queue_depth=0) == []
            assert engine.executor.max_workers == 2
            assert ctrl.state["decisions"] == {}
        finally:
            engine.close()

    def test_observe_mode_logs_without_acting(self):
        engine = _controller_engine(max_workers=2)
        policy = ControllerPolicy(slo_p95_seconds=0.1, window=2,
                                  cooldown_batches=0, backlog_high=10)
        ctrl = RuntimeController(engine, mode=MODE_OBSERVE, policy=policy)
        try:
            decisions = []
            for _ in range(4):
                decisions.extend(_tick(ctrl, seconds=1.0, queue_depth=50))
            assert decisions and not any(d["applied"] for d in decisions)
            assert engine.executor.max_workers == 2  # untouched
            assert ctrl.state["decisions"][ACTION_SCALE_UP] >= 1
        finally:
            engine.close()

    def test_off_mode_never_evaluates(self):
        engine = _controller_engine()
        ctrl = RuntimeController(engine, mode=MODE_OFF)
        try:
            assert _tick(ctrl, seconds=1.0, queue_depth=50) == []
            assert ctrl.state["evaluations"] == 0
        finally:
            engine.close()

    def test_batch_policy_retargets_toward_slo(self):
        engine = _controller_engine(max_workers=1)
        policy = ControllerPolicy(slo_p95_seconds=0.1, window=2,
                                  cooldown_batches=0, backlog_high=10,
                                  min_max_batch=8, max_max_batch=256)
        ctrl = RuntimeController(engine, mode=MODE_ACTIVE, policy=policy)
        batcher_stats = engine.ctx.ingest
        from repro.ingest.batcher import AdaptiveBatcher
        batcher = AdaptiveBatcher(BatchPolicy(max_batch=64), batcher_stats)
        ctrl.batcher = batcher
        try:
            decisions = []
            for _ in range(3):  # overload with empty queue: retarget only
                decisions.extend(_tick(ctrl, seconds=1.0, queue_depth=0))
            assert any(d["action"] == ACTION_RETARGET_DOWN
                       and d["applied"] for d in decisions)
            assert batcher.policy.max_batch == 32
            # Now idle with a standing backlog: grow the batch back.
            decisions = []
            for _ in range(3):
                decisions.extend(_tick(ctrl, seconds=0.0001,
                                       queue_depth=50))
            assert any(d["action"] == ACTION_RETARGET_UP
                       and d["applied"] for d in decisions)
            assert batcher.policy.max_batch == 64
        finally:
            engine.close()

    def test_rejects_unknown_mode(self):
        engine = _controller_engine()
        try:
            with pytest.raises(ValueError, match="mode"):
                RuntimeController(engine, mode="turbo")
        finally:
            engine.close()

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="slo"):
            ControllerPolicy(slo_p95_seconds=0)
        with pytest.raises(ValueError, match="band"):
            ControllerPolicy(low_band=1.2, high_band=1.0)
        with pytest.raises(ValueError, match="window"):
            ControllerPolicy(window=0)
        with pytest.raises(ValueError, match="min_workers"):
            ControllerPolicy(min_workers=5, max_workers=2)

    def test_decision_log_is_bounded(self):
        engine = _controller_engine(max_workers=1)
        policy = ControllerPolicy(slo_p95_seconds=0.1, window=2,
                                  cooldown_batches=0, backlog_high=10,
                                  max_workers=2, decision_log=4)
        ctrl = RuntimeController(engine, mode=MODE_OBSERVE, policy=policy)
        try:
            for _ in range(20):
                _tick(ctrl, seconds=1.0, queue_depth=50)
            assert len(ctrl.decision_log) <= 4
        finally:
            engine.close()


@needs_shm
def test_routing_decisions_follow_measured_backfill_rate():
    config = _small_config(_WORKLOAD)
    executor = MicroBatchExecutor(batch_size=8, max_workers=2,
                                  shard_lookup=True, shm_plane=True,
                                  delta_routing=True)
    executor._shm_inline = True
    engine = TERiDSEngine(repository=_WORKLOAD.repository, config=config,
                          executor=executor)
    policy = ControllerPolicy(slo_p95_seconds=10.0, window=2,
                              backfill_broadcast_rate=0.5,
                              broadcast_probe_batches=3)
    ctrl = RuntimeController(engine, mode=MODE_ACTIVE, policy=policy)
    try:
        transport = engine.ctx.transport
        # Simulate a thrashing routed plane: most orders need a backfill.
        decisions = []
        for _ in range(4):
            transport.record_batch(nbytes=0, orders=4, backfills=4)
            decisions.extend(_tick(ctrl, seconds=0.0, queue_depth=0))
        flips = [d for d in decisions if d["action"] == ACTION_BROADCAST]
        assert flips and flips[0]["applied"]
        assert executor.delta_routing is False
        # After the probe interval the controller re-tries routed mode.
        decisions = []
        for _ in range(4):
            decisions.extend(_tick(ctrl, seconds=0.0, queue_depth=0))
        probes = [d for d in decisions if d["action"] == ACTION_ROUTE]
        assert probes and executor.delta_routing is True
    finally:
        engine.close()


# ---------------------------------------------------------------------------
# Active controller end-to-end: bit-identity + observability
# ---------------------------------------------------------------------------
def test_active_controller_run_is_bit_identical_and_observable():
    """A deliberately twitchy active controller reconfigures mid-stream yet
    the run equals the golden fixture; its decisions are visible in the
    rendered metrics and the decision log."""
    dataset, scale, seed, window = GOLDEN_WORKLOADS[0]
    golden = json.loads(golden_path(dataset).read_text())["reference"]
    workload = build_workload(dataset, scale, seed)
    config = build_config(workload, window)
    engine = TERiDSEngine(
        repository=workload.repository, config=config,
        executor=MicroBatchExecutor(batch_size=16, max_workers=1,
                                    pool_mode="per-batch"))
    engine.enable_telemetry()
    policy = ControllerPolicy(slo_p95_seconds=1e-5, window=2,
                              cooldown_batches=1, backlog_high=0,
                              max_workers=3)
    ctrl = RuntimeController(engine, mode=MODE_ACTIVE, policy=policy)
    driver = IngestDriver(engine, [ReplaySource(workload.interleaved_records())],
                          policy=BatchPolicy(max_batch=16), controller=ctrl)
    try:
        driver.run()
        assert canonical_matches(engine.current_matches()) \
            == golden["result_set"]
        assert ctrl.state["decisions"].get(ACTION_SCALE_UP, 0) >= 1
        assert engine.executor.max_workers == 3
        text = engine.render_metrics()
        assert "terids_controller_evaluations_total" in text
        assert 'terids_controller_decisions_total{action="scale_up"}' in text
        assert any(entry["applied"] for entry in ctrl.decision_log)
    finally:
        engine.close()


# ---------------------------------------------------------------------------
# Checkpoint round-trip of controller state
# ---------------------------------------------------------------------------
def test_controller_state_survives_checkpoint_roundtrip():
    engine = _controller_engine(max_workers=1)
    policy = ControllerPolicy(slo_p95_seconds=0.1, window=2,
                              cooldown_batches=4, backlog_high=10,
                              max_workers=2)
    ctrl = RuntimeController(engine, mode=MODE_ACTIVE, policy=policy)
    try:
        records = list(_WORKLOAD.interleaved_records())
        engine.process_batch(records[:20])
        for _ in range(3):
            _tick(ctrl, seconds=1.0, queue_depth=50)
        assert ctrl.state["decisions"]  # scaled at least once
        state = engine.checkpoint()
        assert state["controller"]["target_workers"] == 2
        assert state["controller"]["cooldown_remaining"] > 0
    finally:
        engine.close()

    resumed = _controller_engine(max_workers=1)
    try:
        resumed.restore_checkpoint(state)
        assert resumed.ctx.controller_state is not None
        adopted = RuntimeController(resumed, mode=MODE_ACTIVE, policy=policy)
        assert adopted.state["evaluations"] == ctrl.state["evaluations"]
        assert adopted.state["decisions"] == ctrl.state["decisions"]
        assert adopted.state["cooldown_remaining"] \
            == ctrl.state["cooldown_remaining"]
        assert adopted.state["target_workers"] == 2
    finally:
        resumed.close()


def test_restore_without_controller_state_clears_leftovers():
    engine = _controller_engine()
    try:
        records = list(_WORKLOAD.interleaved_records())
        engine.process_batch(records[:10])
        state = engine.checkpoint()
        assert "controller" not in state
        engine.ctx.controller_state = {"mode": "stale"}
        engine.restore_checkpoint(state)
        assert engine.ctx.controller_state is None
    finally:
        engine.close()


# ---------------------------------------------------------------------------
# Regression: the seams the reconfiguration path exposed
# ---------------------------------------------------------------------------
def test_executor_is_reusable_after_close():
    """close() is a full teardown, not a tombstone: pools and caches are
    lazily re-seeded on the next batch (the controller's teardown path)."""
    config = _small_config(_WORKLOAD)
    engine = TERiDSEngine(
        repository=_WORKLOAD.repository, config=config,
        executor=MicroBatchExecutor(batch_size=16, max_workers=2,
                                    pool_mode="persistent"))
    records = list(_WORKLOAD.interleaved_records())
    half = len(records) // 2
    matches = []
    try:
        matches.extend(engine.process_batch(records[:half]))
        engine.executor.close()
        engine.executor.close()  # idempotent
        assert engine.executor._shard_params_cache is None
        assert engine.executor._auto_choice is None
        matches.extend(engine.process_batch(records[half:]))
        assert _observables(engine, matches) == _SERIAL
    finally:
        engine.close()


def test_shard_params_blob_tracks_reconfigured_worker_count():
    """The pickled shard params must never ship a stale worker_count."""
    config = _small_config(_WORKLOAD)
    engine = TERiDSEngine(
        repository=_WORKLOAD.repository, config=config,
        executor=MicroBatchExecutor(batch_size=8, max_workers=2,
                                    pool_mode="per-batch", shard_lookup=True))
    try:
        executor = engine.executor
        first = pickle.loads(executor._shard_params_blob(engine.ctx))
        assert first["worker_count"] == 2
        executor.reconfigure(max_workers=3)
        second = pickle.loads(executor._shard_params_blob(engine.ctx))
        assert second["worker_count"] == 3
    finally:
        engine.close()


def test_reenabling_telemetry_does_not_duplicate_bound_metrics():
    """Re-binding the same registry (pool rebuild, telemetry toggle) must
    replace the bound getters, not stack duplicates."""
    config = _small_config(_WORKLOAD)
    engine = TERiDSEngine(repository=_WORKLOAD.repository, config=config)
    try:
        registry = MetricsRegistry()
        engine.enable_telemetry(registry=registry)
        engine.enable_telemetry(registry=registry)
        text = engine.render_metrics()
        sample_lines = [line for line in text.splitlines()
                        if line.startswith("terids_batch_seq ")]
        assert len(sample_lines) == 1
        multi_lines = [line for line in text.splitlines()
                       if line.startswith("terids_ingest_batches_total")]
        assert len(multi_lines) == len(set(multi_lines))
    finally:
        engine.close()
