"""Tests for the staged streaming runtime (stages, executors, equivalence).

The heavyweight guarantees:

* ``SerialExecutor`` is bit-identical to the seed monolithic engine — match
  sets *and* pruning / imputation counters — pinned by the golden fixtures
  under ``tests/data/`` (generated from the seed implementation);
* ``MicroBatchExecutor`` produces the same match sets (and, because its
  cached refinement replicates the seed's float operation order, the same
  counters) at any batch size, with or without the process pool;
* window expiry keeps the ER-grid and the entity result set free of evicted
  tuples under both executors.
"""

import json
from pathlib import Path

import pytest

from golden_utils import (
    GOLDEN_WORKLOADS,
    build_config,
    build_workload,
    canonical_matches,
    golden_path,
    run_reference,
)
from repro.core.config import TERiDSConfig
from repro.core.engine import TERiDSEngine
from repro.core.tuples import Record, Schema
from repro.runtime import (
    MicroBatchExecutor,
    Pipeline,
    SerialExecutor,
    TupleTask,
)
from repro.runtime.evaluation import evaluate_pair_cached, instance_profiles


def _post(rid, gender, symptom, diagnosis, treatment, source="stream-a"):
    return Record(rid=rid, values={"gender": gender, "symptom": symptom,
                                   "diagnosis": diagnosis, "treatment": treatment},
                  source=source)


# ---------------------------------------------------------------------------
# Golden regression: the serial executor is bit-identical to the seed engine
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("dataset,scale,seed,window", GOLDEN_WORKLOADS)
def test_serial_executor_matches_seed_goldens(dataset, scale, seed, window):
    golden = json.loads(golden_path(dataset).read_text())["reference"]
    workload = build_workload(dataset, scale, seed)
    config = build_config(workload, window)
    got = run_reference(
        lambda **kwargs: TERiDSEngine(executor=SerialExecutor(), **kwargs),
        workload, config)
    assert got == golden


@pytest.mark.parametrize("dataset,scale,seed,window", GOLDEN_WORKLOADS)
@pytest.mark.parametrize("batch_size", [1, 7, 32])
def test_micro_batch_executor_matches_seed_goldens(dataset, scale, seed,
                                                   window, batch_size):
    golden = json.loads(golden_path(dataset).read_text())["reference"]
    workload = build_workload(dataset, scale, seed)
    config = build_config(workload, window)
    got = run_reference(
        lambda **kwargs: TERiDSEngine(
            executor=MicroBatchExecutor(batch_size=batch_size), **kwargs),
        workload, config)
    assert got == golden


def test_pooled_micro_batch_matches_seed_golden():
    """The process-pool fan-out (sharded by grid region) changes nothing."""
    dataset, scale, seed, window = GOLDEN_WORKLOADS[0]
    golden = json.loads(golden_path(dataset).read_text())["reference"]
    workload = build_workload(dataset, scale, seed)
    config = build_config(workload, window)
    executor = MicroBatchExecutor(batch_size=16, max_workers=2)
    try:
        got = run_reference(
            lambda **kwargs: TERiDSEngine(executor=executor, **kwargs),
            workload, config)
    finally:
        executor.close()
    assert got == golden


# ---------------------------------------------------------------------------
# Stage-level behaviour
# ---------------------------------------------------------------------------
class TestStages:
    def test_pipeline_exposes_stages_in_dataflow_order(self, health_repository,
                                                       health_config):
        engine = TERiDSEngine(repository=health_repository, config=health_config)
        names = [stage.name for stage in engine.pipeline.stages]
        assert names == ["rule_selection", "imputation", "synopsis",
                         "candidate_lookup", "matching", "maintenance"]

    def test_grouped_rule_selection_equals_per_record(self, health_repository,
                                                      health_config):
        engine = TERiDSEngine(repository=health_repository, config=health_config)
        records = [
            _post("a1", "male", "thirst weight loss", None, "insulin"),
            _post("a2", "male", "blurred vision", None, "drug therapy"),
            _post("a3", "female", "fever cough", "flu", None),
            _post("a4", "male", "chest pain", "cardio issue", "statin"),
        ]
        tasks = [TupleTask(record=record) for record in records]
        engine.pipeline.rule_selection.run(tasks)
        for task in tasks:
            assert task.selected_rules == engine.pipeline.rule_selection.select(
                task.record)

    def test_imputation_stage_skips_complete_records(self, health_repository,
                                                     health_config):
        engine = TERiDSEngine(repository=health_repository, config=health_config)
        complete = _post("a1", "male", "thirst", "diabetes", "insulin")
        task = TupleTask(record=complete)
        engine.pipeline.rule_selection.run([task])
        engine.pipeline.imputation.run([task])
        assert task.imputed.is_trivial()

    def test_maintenance_expire_defers_result_set(self, health_repository,
                                                  health_config):
        config = health_config.replace(window_size=1)
        engine = TERiDSEngine(repository=health_repository, config=config)
        engine.process(_post("a1", "male", "thirst weight loss", "diabetes",
                             "insulin", source="stream-a"))
        matches = engine.process(_post("b1", "male", "thirst weight loss",
                                       "diabetes", "insulin", source="stream-b"))
        assert matches
        evicted = engine.pipeline.maintenance.expire("stream-a",
                                                     defer_result_set=True)
        assert evicted is not None
        assert evicted.record.rid == "a1"
        # The grid no longer holds a1 but the deferred pair is still reported.
        assert not engine.grid.contains("a1", "stream-a")
        assert any(pair.involves("a1", "stream-a")
                   for pair in engine.result_set.pairs())


# ---------------------------------------------------------------------------
# Cached pair evaluation
# ---------------------------------------------------------------------------
class TestCachedEvaluation:
    def test_cached_evaluation_identical_to_pruning_pipeline(
            self, health_repository, health_config):
        """Exhaustive pairwise check: cached verdicts == seed verdicts."""
        from repro.core.pruning import PruningPipeline, PruningStats

        engine = TERiDSEngine(repository=health_repository, config=health_config)
        arrivals = [
            _post("a1", "male", "loss of weight blurred vision", "diabetes",
                  "drug therapy", source="stream-a"),
            _post("b1", "male", "weight loss blurred vision", None,
                  "drug therapy", source="stream-b"),
            _post("a2", "female", "fever cough", "flu", "rest", source="stream-a"),
            _post("b2", "female", "fever cough chills", "flu", None,
                  source="stream-b"),
            _post("a3", "male", "thirst fatigue weight loss", "diabetes", None,
                  source="stream-a"),
        ]
        for record in arrivals:
            engine.process(record)
        synopses = engine.grid.synopses()
        reference = PruningPipeline(keywords=health_config.keywords,
                                    gamma=health_config.gamma,
                                    alpha=health_config.alpha)
        cached_stats = PruningStats()
        for i in range(len(synopses)):
            for j in range(len(synopses)):
                if i == j:
                    continue
                left, right = synopses[i], synopses[j]
                expected = reference.evaluate_pair(left, right)
                got = evaluate_pair_cached(
                    left, right, keywords=health_config.keywords,
                    gamma=health_config.gamma, alpha=health_config.alpha,
                    use_topic=True, use_similarity=True, use_probability=True,
                    use_instance=True, stats=cached_stats)
                assert got == expected
        ref_stats = reference.stats
        assert cached_stats.pairs_considered == ref_stats.pairs_considered
        assert cached_stats.pruned_by_topic == ref_stats.pruned_by_topic
        assert cached_stats.pruned_by_instance == ref_stats.pruned_by_instance
        assert cached_stats.refined_matches == ref_stats.refined_matches

    def test_instance_profiles_cached_on_synopsis(self, health_repository,
                                                  health_config):
        engine = TERiDSEngine(repository=health_repository, config=health_config)
        engine.process(_post("a1", "male", "thirst", None, "insulin"))
        synopsis = engine.grid.synopses()[0]
        first = instance_profiles(synopsis, health_config.keywords)
        second = instance_profiles(synopsis, health_config.keywords)
        assert first is second
        assert len(first) == len(synopsis.record.instances())

    def test_instance_profiles_rebuilt_for_different_keywords(
            self, health_repository, health_config):
        engine = TERiDSEngine(repository=health_repository, config=health_config)
        engine.process(_post("a1", "male", "thirst", "diabetes", "insulin"))
        synopsis = engine.grid.synopses()[0]
        with_topic = instance_profiles(synopsis, frozenset({"diabetes"}))
        assert with_topic[0][2] is True
        without_topic = instance_profiles(synopsis, frozenset({"zzz"}))
        assert without_topic[0][2] is False


# ---------------------------------------------------------------------------
# Expiry consistency (satellite): grid and result set drop evicted tuples
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("executor_factory", [
    SerialExecutor,
    lambda: MicroBatchExecutor(batch_size=4),
], ids=["serial", "micro-batch"])
def test_expiry_leaves_no_grid_or_result_references(health_repository,
                                                    health_config,
                                                    executor_factory):
    config = health_config.replace(window_size=2)
    engine = TERiDSEngine(repository=health_repository, config=config,
                          executor=executor_factory())
    arrivals = []
    for index in range(6):
        arrivals.append(_post(f"a{index}", "male", "thirst weight loss",
                              "diabetes", "insulin", source="stream-a"))
        arrivals.append(_post(f"b{index}", "male", "thirst weight loss",
                              "diabetes", "insulin", source="stream-b"))
    engine.process_batch(arrivals)

    surviving = {(item.record.rid, item.record.source)
                 for window in engine.windows.values()
                 for item in window.items()}
    # Exactly the last window_size tuples per stream survive.
    assert surviving == {("a4", "stream-a"), ("a5", "stream-a"),
                         ("b4", "stream-b"), ("b5", "stream-b")}
    # The grid holds exactly the surviving tuples.
    in_grid = {(synopsis.record.rid, synopsis.record.source)
               for synopsis in engine.grid.synopses()}
    assert in_grid == surviving
    for index in range(4):
        assert not engine.grid.contains(f"a{index}", "stream-a")
        assert not engine.grid.contains(f"b{index}", "stream-b")
    # No reported pair references an evicted tuple.
    for pair in engine.result_set.pairs():
        for index in range(4):
            assert not pair.involves(f"a{index}", "stream-a")
            assert not pair.involves(f"b{index}", "stream-b")
    # The surviving cross-stream pairs are still reported.
    assert len(engine.result_set) > 0


# ---------------------------------------------------------------------------
# Engine facade behaviour
# ---------------------------------------------------------------------------
class TestEngineFacade:
    def test_process_batch_equals_tuple_at_a_time(self, health_repository,
                                                  health_config):
        arrivals = [
            _post("a1", "male", "loss of weight blurred vision", "diabetes",
                  "drug therapy", source="stream-a"),
            _post("b1", "male", "weight loss blurred vision", None,
                  "drug therapy", source="stream-b"),
            _post("a2", "female", "fever cough", "flu", "rest",
                  source="stream-a"),
            _post("b2", "male", "thirst weight loss", "diabetes", None,
                  source="stream-b"),
        ]
        serial = TERiDSEngine(repository=health_repository, config=health_config)
        serial_matches = []
        for record in arrivals:
            serial_matches.extend(serial.process(record))

        batched = TERiDSEngine(repository=health_repository,
                               config=health_config,
                               executor=MicroBatchExecutor(batch_size=4))
        batch_matches = batched.process_batch(arrivals)

        assert canonical_matches(batch_matches) == canonical_matches(serial_matches)
        assert (canonical_matches(batched.current_matches())
                == canonical_matches(serial.current_matches()))
        assert batched.timestamps_processed == serial.timestamps_processed

    def test_run_chunks_by_executor_batch_size(self, health_repository,
                                               health_config):
        records = [
            _post(f"a{index}", "male", "thirst weight loss", "diabetes",
                  "insulin", source="stream-a")
            for index in range(5)
        ]
        engine = TERiDSEngine(repository=health_repository, config=health_config,
                              executor=MicroBatchExecutor(batch_size=2))
        report = engine.run(records)
        assert report.timestamps_processed == 5
        assert report.total_seconds > 0

    def test_executor_close_is_idempotent(self, health_repository,
                                          health_config):
        engine = TERiDSEngine(repository=health_repository, config=health_config,
                              executor=MicroBatchExecutor(batch_size=2))
        engine.close()
        engine.close()

    def test_micro_batch_executor_validates_arguments(self):
        with pytest.raises(ValueError):
            MicroBatchExecutor(batch_size=0)
        with pytest.raises(ValueError):
            MicroBatchExecutor(batch_size=4, max_workers=0)


# ---------------------------------------------------------------------------
# Batched stream emission (satellite)
# ---------------------------------------------------------------------------
class TestBatchedEmission:
    def _streams(self, health_schema):
        from repro.core.stream import StreamSet, build_stream

        stream_a = [_post(f"a{index}", "male", "thirst", "diabetes", "insulin")
                    for index in range(5)]
        stream_b = [_post(f"b{index}", "female", "fever", "flu", "rest")
                    for index in range(3)]
        return StreamSet(streams=[
            build_stream("stream-a", stream_a, health_schema),
            build_stream("stream-b", stream_b, health_schema),
        ])

    def test_interleaved_batches_preserve_interleaving(self, health_schema):
        streams = self._streams(health_schema)
        reference = [record.rid for record in self._streams(health_schema)
                     .interleaved()]
        batches = list(streams.interleaved_batches(3))
        assert [len(batch) for batch in batches] == [3, 3, 2]
        assert [record.rid for batch in batches for record in batch] == reference

    def test_interleaved_batches_rejects_bad_size(self, health_schema):
        with pytest.raises(ValueError):
            list(self._streams(health_schema).interleaved_batches(0))

    def test_next_batch_drains_stream(self, health_schema):
        streams = self._streams(health_schema)
        stream = streams.streams[1]
        first = stream.next_batch(2)
        assert [record.rid for record in first] == ["b0", "b1"]
        assert [record.timestamp for record in first] == [0, 1]
        rest = stream.next_batch(10)
        assert [record.rid for record in rest] == ["b2"]
        assert stream.next_batch(4) == []
        with pytest.raises(ValueError):
            stream.next_batch(0)

    def test_batched_emission_drives_micro_batch_engine(self, health_repository,
                                                        health_config):
        streams = self._streams(health_config.schema)
        engine = TERiDSEngine(repository=health_repository, config=health_config,
                              executor=MicroBatchExecutor(batch_size=3))
        for batch in streams.interleaved_batches(3):
            engine.process_batch(batch)
        assert engine.timestamps_processed == 8


# ---------------------------------------------------------------------------
# Dynamic repository maintenance (satellite)
# ---------------------------------------------------------------------------
class TestRepositoryMaintenance:
    def test_added_samples_reach_repository_and_index(self, health_repository,
                                                      health_config):
        engine = TERiDSEngine(repository=health_repository, config=health_config)
        before = len(engine.repository)
        new_sample = _post("new", "female", "thirst fatigue", "diabetes",
                           "insulin", source="repository")
        engine.add_repository_samples([new_sample])
        assert len(engine.repository) == before + 1
        assert len(engine.dr_index) == before + 1
        assert engine.repository.sample_by_rid("new") is not None

    def test_remining_sees_added_samples(self, health_schema, health_config):
        """Re-mined rules must reflect the extended repository, not a stale one."""
        from repro.imputation.repository import DataRepository

        rows = [
            ("male", "weight loss blurred vision", "diabetes", "drug therapy"),
            ("male", "loss of weight thirst", "diabetes", "dietary therapy"),
            ("female", "fever cough low spirit", "pneumonia", "antibiotics rest"),
            ("male", "fever poor appetite cough", "flu", "drink more"),
            ("male", "blurred vision fatigue", "diabetes", "drug therapy"),
        ]
        samples = [
            Record(rid=f"s{index}",
                   values={"gender": gender, "symptom": symptom,
                           "diagnosis": diagnosis, "treatment": treatment},
                   source="repository")
            for index, (gender, symptom, diagnosis, treatment) in enumerate(rows)
        ]
        repository = DataRepository(schema=health_schema, samples=samples)
        engine = TERiDSEngine(repository=repository, config=health_config)
        # A burst of near-identical samples creates support for new rule
        # patterns; remining must be computed over the extended repository.
        additions = [
            _post(f"extra{index}", "female", "sneeze pollen rash", "allergy",
                  "antihistamine", source="repository")
            for index in range(4)
        ]
        engine.add_repository_samples(additions, remine_rules=True)
        assert len(engine.repository) == len(rows) + len(additions)
        assert engine.imputer.repository is engine.repository
        # The rules were re-mined over a repository containing the additions:
        # mining the same repository directly yields the identical rule set.
        from repro.imputation.cdd import discover_cdd_rules
        expected = discover_cdd_rules(engine.repository, engine.discovery_config)
        assert [rule.rule_id for rule in engine.rules] == [
            rule.rule_id for rule in expected]

    def test_remining_preserves_imputation_stats(self, health_repository,
                                                 health_config):
        engine = TERiDSEngine(repository=health_repository, config=health_config)
        engine.process(_post("a1", "male", "thirst", None, "insulin"))
        counted = engine.imputer.stats.records_imputed
        assert counted >= 1
        engine.add_repository_samples(
            [_post("new", "female", "thirst fatigue", "diabetes", "insulin",
                   source="repository")],
            remine_rules=True)
        assert engine.imputer.stats.records_imputed == counted

    def test_adding_samples_clears_candidate_cache(self, health_repository,
                                                   health_config):
        """Domain growth invalidates the cache keys; stale entries are dropped."""
        engine = TERiDSEngine(repository=health_repository, config=health_config,
                              executor=MicroBatchExecutor(batch_size=4))
        engine.process_batch([_post("a1", "male", "thirst weight loss", None,
                                    "insulin")])
        assert engine.imputer.candidate_cache  # populated by the batch path
        engine.add_repository_samples(
            [_post("new", "female", "thirst fatigue", "diabetes", "insulin",
                   source="repository")])
        assert engine.imputer.candidate_cache == {}


# ---------------------------------------------------------------------------
# Imputation scoped-rules API (satellite)
# ---------------------------------------------------------------------------
class TestScopedImputation:
    def test_rules_override_matches_scoped_imputer(self, health_repository,
                                                   health_config):
        """The ``rules=`` override equals a per-attribute scoped CDDImputer.

        This is the exact pattern the seed hot path used (one throwaway
        imputer per missing attribute); the override must produce identical
        distributions and counters without the construction cost.
        """
        from repro.imputation.imputer import CDDImputer

        engine = TERiDSEngine(repository=health_repository, config=health_config)
        incomplete = [
            _post("q1", "male", "thirst weight loss", None, None),
            _post("q2", "male", "blurred vision fatigue", None, "drug therapy"),
            _post("q3", "female", "fever cough", None, "rest"),
        ]
        for record in incomplete:
            for attribute in record.missing_attributes(engine.schema):
                index = engine.cdd_indexes.get(attribute)
                selected = index.candidate_rules(record) if index else []
                if not selected:
                    continue
                # Seed-style throwaway scoped imputer.
                scoped = CDDImputer(
                    repository=engine.repository,
                    rules=selected,
                    max_candidates_per_sample=engine.imputer.max_candidates_per_sample,
                    max_rules_per_attribute=engine.imputer.max_rules_per_attribute,
                    max_candidate_values=engine.imputer.max_candidate_values,
                    sample_retriever=engine.imputer.sample_retriever,
                )
                expected = scoped.candidate_distribution(record, attribute)
                got = engine.imputer.candidate_distribution(record, attribute,
                                                            rules=selected)
                assert got == expected

    def test_candidate_cache_does_not_change_distributions(
            self, health_repository, health_config):
        from repro.imputation.cdd import discover_cdd_rules
        from repro.imputation.imputer import CDDImputer

        rules = discover_cdd_rules(health_repository)
        plain = CDDImputer(repository=health_repository, rules=rules)
        cached = CDDImputer(repository=health_repository, rules=rules,
                            candidate_cache={})
        record = _post("q1", "male", "thirst weight loss", None, None)
        for attribute in ("diagnosis", "treatment"):
            assert (plain.candidate_distribution(record, attribute)
                    == cached.candidate_distribution(record, attribute))
        assert len(cached.candidate_cache) > 0


# ---------------------------------------------------------------------------
# Adaptive pool-mode selection (pool_mode="auto")
# ---------------------------------------------------------------------------
class TestAutoPoolMode:
    """Pins the decision boundaries of ``resolve_auto_pool_mode``."""

    def _transport(self, batches=0, orders=0, nbytes=0):
        from repro.runtime import TransportStats

        transport = TransportStats()
        for _ in range(batches):
            transport.record_batch(0)
        transport.orders_shipped = orders
        transport.bytes_shipped = nbytes
        return transport

    def test_large_configured_batches_always_pick_persistent(self):
        from repro.runtime.executors import (
            AUTO_PERSISTENT_MIN_BATCH,
            POOL_PERSISTENT,
            resolve_auto_pool_mode,
        )

        transport = self._transport()
        assert resolve_auto_pool_mode(AUTO_PERSISTENT_MIN_BATCH,
                                      transport) == POOL_PERSISTENT
        assert resolve_auto_pool_mode(AUTO_PERSISTENT_MIN_BATCH + 100,
                                      transport) == POOL_PERSISTENT

    def test_small_batches_start_per_batch_without_history(self):
        from repro.runtime.executors import (
            AUTO_PERSISTENT_MIN_BATCH,
            POOL_PER_BATCH,
            resolve_auto_pool_mode,
        )

        transport = self._transport()
        assert resolve_auto_pool_mode(AUTO_PERSISTENT_MIN_BATCH - 1,
                                      transport) == POOL_PER_BATCH
        assert resolve_auto_pool_mode(1, transport) == POOL_PER_BATCH

    def test_measured_shipping_cost_upgrades_small_batches(self):
        from repro.runtime.executors import (
            AUTO_PERSISTENT_BYTES_PER_ORDER,
            AUTO_WARMUP_BATCHES,
            POOL_PER_BATCH,
            POOL_PERSISTENT,
            resolve_auto_pool_mode,
        )

        heavy = self._transport(
            batches=AUTO_WARMUP_BATCHES, orders=4,
            nbytes=4 * AUTO_PERSISTENT_BYTES_PER_ORDER + 1)
        assert resolve_auto_pool_mode(4, heavy) == POOL_PERSISTENT
        # Exactly at the threshold (strict >) stays per-batch.
        at_threshold = self._transport(
            batches=AUTO_WARMUP_BATCHES, orders=4,
            nbytes=4 * AUTO_PERSISTENT_BYTES_PER_ORDER)
        assert resolve_auto_pool_mode(4, at_threshold) == POOL_PER_BATCH
        # Insufficient warm-up history is not trusted, however heavy.
        cold = self._transport(
            batches=AUTO_WARMUP_BATCHES - 1, orders=4,
            nbytes=40 * AUTO_PERSISTENT_BYTES_PER_ORDER)
        assert resolve_auto_pool_mode(4, cold) == POOL_PER_BATCH

    def test_executor_resolution_is_sticky_once_persistent(self):
        from repro.runtime.executors import (
            AUTO_PERSISTENT_BYTES_PER_ORDER,
            POOL_AUTO,
            POOL_PER_BATCH,
            POOL_PERSISTENT,
        )

        class _Ctx:
            pass

        class _FakePool:
            shut_down = False

            def shutdown(self):
                self.shut_down = True

        ctx = _Ctx()
        ctx.transport = self._transport()
        executor = MicroBatchExecutor(batch_size=4, max_workers=2,
                                      pool_mode=POOL_AUTO)
        assert executor._resolve_pool_mode(ctx, batch_len=4) == POOL_PER_BATCH
        warmup_pool = _FakePool()
        executor._pool = warmup_pool
        # Heavy measured shipping upgrades the choice…
        ctx.transport = self._transport(
            batches=5, orders=5,
            nbytes=5 * (AUTO_PERSISTENT_BYTES_PER_ORDER + 1))
        assert executor._resolve_pool_mode(ctx, batch_len=4) == POOL_PERSISTENT
        # …releasing the warm-up phase's per-batch pool as it goes.
        assert warmup_pool.shut_down
        assert executor._pool is None
        # …and it sticks even if the stats go quiet again (the workers'
        # resident stores are warm).
        ctx.transport = self._transport()
        assert executor._resolve_pool_mode(ctx, batch_len=4) == POOL_PERSISTENT

    def test_explicit_modes_bypass_resolution(self):
        from repro.runtime.executors import POOL_PER_BATCH, POOL_PERSISTENT

        for mode in (POOL_PERSISTENT, POOL_PER_BATCH):
            executor = MicroBatchExecutor(batch_size=4, max_workers=2,
                                          pool_mode=mode)
            assert executor._resolve_pool_mode(ctx=None, batch_len=4) == mode
        with pytest.raises(ValueError):
            MicroBatchExecutor(pool_mode="bogus")

    def test_auto_pooled_micro_batch_matches_seed_golden(self):
        """End to end: auto mode (resolving to persistent) changes nothing."""
        dataset, scale, seed, window = GOLDEN_WORKLOADS[0]
        golden = json.loads(golden_path(dataset).read_text())["reference"]
        workload = build_workload(dataset, scale, seed)
        config = build_config(workload, window)
        executor = MicroBatchExecutor(batch_size=16, max_workers=2,
                                      pool_mode="auto")
        try:
            got = run_reference(
                lambda **kwargs: TERiDSEngine(executor=executor, **kwargs),
                workload, config)
            assert executor._auto_choice == "persistent"
        finally:
            executor.close()
        assert got == golden
