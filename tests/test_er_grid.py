"""Unit tests for the ER-grid synopsis over sliding windows (Section 5.2)."""

import pytest

from repro.core.matching import ter_ids_probability
from repro.core.pruning import RecordSynopsis
from repro.core.tuples import ImputedRecord, Record, Schema
from repro.imputation.repository import DataRepository
from repro.indexes.er_grid import ERGrid, GridCell
from repro.indexes.pivots import PivotSelectionConfig, select_pivots

SCHEMA = Schema(attributes=("symptom", "diagnosis"))
KEYWORDS = frozenset({"diabetes"})


def _pivots():
    samples = [
        Record(rid="p0", values={"symptom": "fever cough chills", "diagnosis": "flu"}),
        Record(rid="p1", values={"symptom": "weight loss blurred vision",
                                 "diagnosis": "diabetes"}),
        Record(rid="p2", values={"symptom": "red eye itchy",
                                 "diagnosis": "conjunctivitis"}),
    ]
    repository = DataRepository(schema=SCHEMA, samples=samples)
    return select_pivots(repository, PivotSelectionConfig(buckets=5,
                                                          min_entropy=0.3,
                                                          max_pivots=2))


PIVOTS = _pivots()


def _synopsis(rid, symptom, diagnosis, candidates=None, source="s1"):
    record = Record(rid=rid, values={"symptom": symptom, "diagnosis": diagnosis},
                    source=source)
    imputed = ImputedRecord(base=record, schema=SCHEMA,
                            candidates=candidates or {})
    return RecordSynopsis.build(imputed, PIVOTS, KEYWORDS)


class TestGridMaintenance:
    def test_insert_and_len(self):
        grid = ERGrid(SCHEMA, cells_per_dim=4)
        grid.insert(_synopsis("r1", "fever", "flu"))
        grid.insert(_synopsis("r2", "thirst", "diabetes"))
        assert len(grid) == 2
        assert grid.cell_count >= 1

    def test_contains_and_get(self):
        grid = ERGrid(SCHEMA, cells_per_dim=4)
        synopsis = _synopsis("r1", "fever", "flu")
        grid.insert(synopsis)
        assert grid.contains("r1", "s1")
        assert grid.get_synopsis("r1", "s1") is synopsis
        assert not grid.contains("r1", "other")

    def test_remove(self):
        grid = ERGrid(SCHEMA, cells_per_dim=4)
        grid.insert(_synopsis("r1", "fever", "flu"))
        assert grid.remove("r1", "s1")
        assert len(grid) == 0
        assert grid.cell_count == 0
        assert not grid.remove("r1", "s1")

    def test_reinsert_replaces(self):
        grid = ERGrid(SCHEMA, cells_per_dim=4)
        grid.insert(_synopsis("r1", "fever", "flu"))
        grid.insert(_synopsis("r1", "thirst", "diabetes"))
        assert len(grid) == 1

    def test_invalid_resolution(self):
        with pytest.raises(ValueError):
            ERGrid(SCHEMA, cells_per_dim=0)

    def test_imputed_record_spans_multiple_cells(self):
        grid = ERGrid(SCHEMA, cells_per_dim=8)
        wide = _synopsis("r1", "fever", None,
                         candidates={"diagnosis": {"flu": 0.5, "diabetes": 0.5}})
        grid.insert(wide)
        # The record's diagnosis interval is wide, so it should register in
        # at least one cell (possibly several).
        assert grid.cell_count >= 1
        assert grid.remove("r1", "s1")


class TestCellAggregates:
    def test_cell_keyword_flag(self):
        grid = ERGrid(SCHEMA, cells_per_dim=1)  # everything in one cell
        grid.insert(_synopsis("r1", "fever", "flu"))
        cell = next(iter(grid._cells.values()))
        assert not cell.may_have_keyword
        grid.insert(_synopsis("r2", "thirst", "diabetes"))
        cell = next(iter(grid._cells.values()))
        assert cell.may_have_keyword

    def test_cell_aggregates_bound_entries(self):
        grid = ERGrid(SCHEMA, cells_per_dim=1)
        synopses = [_synopsis("r1", "fever cough", "flu"),
                    _synopsis("r2", "weight loss", "diabetes")]
        for synopsis in synopses:
            grid.insert(synopsis)
        cell = next(iter(grid._cells.values()))
        for index, attribute in enumerate(SCHEMA):
            low, high = cell.distance_intervals[index]
            size_low, size_high = cell.token_size_intervals[index]
            for synopsis in synopses:
                entry_low, entry_high = synopsis.main_interval(attribute)
                assert low - 1e-9 <= entry_low and entry_high <= high + 1e-9
                entry_size_low, entry_size_high = synopsis.token_size_bounds[attribute]
                assert size_low <= entry_size_low and entry_size_high <= size_high

    def test_cell_recompute_after_removal(self):
        grid = ERGrid(SCHEMA, cells_per_dim=1)
        grid.insert(_synopsis("r1", "thirst", "diabetes"))
        grid.insert(_synopsis("r2", "fever", "flu"))
        grid.remove("r1", "s1")
        cell = next(iter(grid._cells.values()))
        assert not cell.may_have_keyword

    def test_cell_bounds(self):
        grid = ERGrid(SCHEMA, cells_per_dim=4)
        bounds = grid.cell_bounds((0, 3))
        assert bounds[0] == (0.0, 0.25)
        assert bounds[1] == (0.75, 1.0)


class TestCandidateRetrieval:
    def _populate(self, grid):
        synopses = [
            _synopsis("a1", "weight loss blurred vision", "diabetes", source="sa"),
            _synopsis("a2", "fever cough", "flu", source="sa"),
            _synopsis("b1", "weight loss blurred vision", "diabetes", source="sb"),
            _synopsis("b2", "red eye itchy", "conjunctivitis", source="sb"),
        ]
        for synopsis in synopses:
            grid.insert(synopsis)
        return synopses

    def test_no_false_dismissals_vs_exact(self):
        """Grid retrieval must return every tuple whose exact probability passes."""
        grid = ERGrid(SCHEMA, cells_per_dim=4)
        self._populate(grid)
        query = _synopsis("q", "weight loss blurred vision", "diabetes",
                          source="sq")
        gamma = 1.0
        candidates = grid.candidate_synopses(query, gamma=gamma,
                                             keywords=KEYWORDS)
        candidate_keys = {(c.rid, c.source) for c in candidates}
        for synopsis in grid.synopses():
            probability = ter_ids_probability(query.record, synopsis.record,
                                              KEYWORDS, gamma)
            if probability > 0:
                assert (synopsis.rid, synopsis.source) in candidate_keys

    def test_exclude_source(self):
        grid = ERGrid(SCHEMA, cells_per_dim=4)
        self._populate(grid)
        query = _synopsis("q", "weight loss blurred vision", "diabetes",
                          source="sa")
        candidates = grid.candidate_synopses(query, gamma=1.0,
                                             exclude_source="sa")
        assert all(candidate.source != "sa" for candidate in candidates)

    def test_query_excludes_itself(self):
        grid = ERGrid(SCHEMA, cells_per_dim=4)
        synopsis = _synopsis("a1", "fever", "flu", source="sa")
        grid.insert(synopsis)
        candidates = grid.candidate_synopses(synopsis, gamma=0.5)
        assert all(candidate.rid != "a1" or candidate.source != "sa"
                   for candidate in candidates)

    def test_counters_increase(self):
        grid = ERGrid(SCHEMA, cells_per_dim=4)
        self._populate(grid)
        query = _synopsis("q", "weight loss", "diabetes", source="sq")
        grid.candidate_synopses(query, gamma=1.0)
        assert grid.cells_examined > 0

    def test_distant_tuples_can_be_skipped(self):
        grid = ERGrid(SCHEMA, cells_per_dim=8)
        # Far-apart populations: many dissimilar tuples plus one similar.
        for index in range(20):
            grid.insert(_synopsis(f"far{index}", "red eye itchy watery",
                                  "conjunctivitis", source="sb"))
        grid.insert(_synopsis("near", "weight loss blurred vision", "diabetes",
                              source="sb"))
        query = _synopsis("q", "weight loss blurred vision", "diabetes",
                          source="sa")
        candidates = grid.candidate_synopses(query, gamma=1.8)
        candidate_rids = {candidate.rid for candidate in candidates}
        assert "near" in candidate_rids
        # With a tight gamma the distant population should be (at least
        # partially) pruned at the cell level.
        assert grid.tuples_examined <= 21


class TestCellStoreEdgeCases:
    def test_enabled_empty_store_scan_returns_all_dead(self):
        """Regression: ``CellStore.scan`` dereferenced its ``None`` arrays
        when a lookup preceded the first insert on a freshly enabled store
        (the arrays are only allocated by the first write) — e.g. a
        query-time resolve against a just-enabled grid."""
        grid = ERGrid(SCHEMA, cells_per_dim=4)
        store = grid.enable_cell_store()
        if store is None:
            pytest.skip("requires numpy")
        query = _synopsis("q", "weight loss", "diabetes", source="sq")
        mask = store.scan(query.coordinate_rectangle(), margin=2.0,
                          require_keyword=False)
        assert len(mask) == 0
        assert grid.candidate_synopses(query, gamma=0.5) == []


class TestMaintenanceListeners:
    def test_listener_fires_on_insert_and_remove_with_touched_cells(self):
        grid = ERGrid(SCHEMA, cells_per_dim=4)
        events = []
        grid.add_maintenance_listener(lambda cells: events.append(sorted(cells)))
        grid.insert(_synopsis("r1", "fever", "flu"))
        touched = sorted(grid.record_cells("r1", "s1"))
        assert events == [touched]
        grid.remove("r1", "s1")
        assert events == [touched, touched]
