"""Differential tests: the vectorized pruning kernel and the persistent pool.

The contract under test is *identity*, not just safety: the columnar
:func:`~repro.core.pruning.batch_prune` kernel must reproduce the scalar
cascade's survivor mask, per-strategy pruned counts, verdicts and
probabilities bit-for-bit, for arbitrary synopses (hypothesis) and on the
golden workloads (both executors, in-process and both pooled refinement
modes).
"""

import json

import pytest

np = pytest.importorskip("numpy")

from hypothesis import given, settings, strategies as st

from golden_utils import (
    GOLDEN_WORKLOADS,
    build_config,
    build_workload,
    canonical_matches,
    golden_path,
    run_reference,
)
from repro.core.config import TERiDSConfig
from repro.core.engine import TERiDSEngine
from repro.core.pruning import (
    PackedStore,
    PruningStats,
    RecordSynopsis,
    batch_prune,
    ensure_packed,
    probability_prune,
    similarity_prune,
    topic_keyword_prune,
)
from repro.core.tuples import ImputedRecord, Record, Schema
from repro.imputation.repository import DataRepository
from repro.indexes.pivots import PivotSelectionConfig, select_pivots
from repro.runtime import (
    POOL_PER_BATCH,
    POOL_PERSISTENT,
    MicroBatchExecutor,
    SerialExecutor,
    evaluate_candidates,
    evaluate_pair_cached,
)

SCHEMA = Schema(attributes=("symptom", "diagnosis"))
KEYWORDS = frozenset({"diabetes"})


def _pivots():
    samples = [
        Record(rid="p0", values={"symptom": "fever cough chills",
                                 "diagnosis": "flu"}),
        Record(rid="p1", values={"symptom": "weight loss blurred vision",
                                 "diagnosis": "diabetes"}),
        Record(rid="p2", values={"symptom": "red eye itchy",
                                 "diagnosis": "conjunctivitis"}),
        Record(rid="p3", values={"symptom": "chest pain palpitation",
                                 "diagnosis": "cardio issue"}),
    ]
    repository = DataRepository(schema=SCHEMA, samples=samples)
    return select_pivots(repository, PivotSelectionConfig(buckets=5,
                                                          min_entropy=0.3,
                                                          max_pivots=2))


PIVOTS = _pivots()

#: Token pool for the hypothesis-generated records (overlaps the pivots so
#: every similarity/probability branch is reachable).
WORDS = ("fever", "cough", "chills", "weight", "loss", "blurred", "vision",
         "diabetes", "flu", "red", "eye", "pain", "itchy", "thirst", "")


def _make_synopsis(index, symptom, diagnosis, candidates):
    record = Record(rid=f"r{index}", values={"symptom": symptom or None,
                                             "diagnosis": diagnosis or None},
                    source=f"s{index % 2}")
    imputed = ImputedRecord(base=record, schema=SCHEMA,
                            candidates=candidates or {})
    return RecordSynopsis.build(imputed, PIVOTS, KEYWORDS)


def _scalar_cascade(query, candidates, keywords, gamma, alpha,
                    use_topic=True, use_similarity=True,
                    use_probability=True):
    """The three bound strategies applied per pair, with attribution."""
    mask = []
    counts = [0, 0, 0]
    for candidate in candidates:
        if use_topic and topic_keyword_prune(query, candidate, keywords):
            counts[0] += 1
            mask.append(False)
            continue
        if use_similarity and similarity_prune(query, candidate, gamma):
            counts[1] += 1
            mask.append(False)
            continue
        if use_probability and probability_prune(query, candidate, gamma,
                                                 alpha):
            counts[2] += 1
            mask.append(False)
            continue
        mask.append(True)
    return mask, tuple(counts)


# ---------------------------------------------------------------------------
# Hypothesis: arbitrary synopses, arbitrary thresholds
# ---------------------------------------------------------------------------
value_strategy = st.lists(st.sampled_from(WORDS), min_size=0, max_size=4).map(
    " ".join)
candidates_strategy = st.dictionaries(
    st.sampled_from(WORDS[:8]).filter(bool),
    st.floats(min_value=0.05, max_value=0.33),
    min_size=1, max_size=3)
record_strategy = st.tuples(
    value_strategy,
    value_strategy,
    st.one_of(st.none(), candidates_strategy),
)


@settings(max_examples=60, deadline=None)
@given(
    records=st.lists(record_strategy, min_size=2, max_size=8),
    gamma=st.floats(min_value=0.1, max_value=1.9),
    alpha=st.floats(min_value=0.05, max_value=0.95),
    use_keywords=st.booleans(),
)
def test_vectorized_kernel_identical_to_scalar_cascade(records, gamma, alpha,
                                                       use_keywords):
    keywords = KEYWORDS if use_keywords else frozenset()
    synopses = []
    for index, (symptom, diagnosis, extra) in enumerate(records):
        candidates = {"diagnosis": extra} if (extra and not diagnosis) else None
        synopses.append(_make_synopsis(index, symptom, diagnosis, candidates))
    query, candidates = synopses[0], synopses[1:]

    alive, topic, similarity, probability = batch_prune(
        query, candidates, keywords=keywords, gamma=gamma, alpha=alpha)
    mask, counts = _scalar_cascade(query, candidates, keywords, gamma, alpha)
    assert list(alive) == mask
    assert (topic, similarity, probability) == counts

    # Full verdicts (bounds + instance-level refinement) and counters.
    vector_stats = PruningStats()
    scalar_stats = PruningStats()
    vectorized = evaluate_candidates(
        query, candidates, keywords=keywords, gamma=gamma, alpha=alpha,
        use_topic=True, use_similarity=True, use_probability=True,
        use_instance=True, stats=vector_stats, vectorized=True)
    scalar = evaluate_candidates(
        query, candidates, keywords=keywords, gamma=gamma, alpha=alpha,
        use_topic=True, use_similarity=True, use_probability=True,
        use_instance=True, stats=scalar_stats, vectorized=False)
    assert vectorized == scalar
    assert vector_stats == scalar_stats


@settings(max_examples=25, deadline=None)
@given(
    records=st.lists(record_strategy, min_size=2, max_size=6),
    gamma=st.floats(min_value=0.1, max_value=1.9),
    alpha=st.floats(min_value=0.05, max_value=0.95),
    toggles=st.tuples(st.booleans(), st.booleans(), st.booleans()),
)
def test_vectorized_kernel_respects_strategy_toggles(records, gamma, alpha,
                                                     toggles):
    use_topic, use_similarity, use_probability = toggles
    synopses = [
        _make_synopsis(index, symptom, diagnosis,
                       {"diagnosis": extra} if (extra and not diagnosis)
                       else None)
        for index, (symptom, diagnosis, extra) in enumerate(records)
    ]
    query, candidates = synopses[0], synopses[1:]
    alive, topic, similarity, probability = batch_prune(
        query, candidates, keywords=KEYWORDS, gamma=gamma, alpha=alpha,
        use_topic=use_topic, use_similarity=use_similarity,
        use_probability=use_probability)
    mask, counts = _scalar_cascade(query, candidates, KEYWORDS, gamma, alpha,
                                   use_topic=use_topic,
                                   use_similarity=use_similarity,
                                   use_probability=use_probability)
    assert list(alive) == mask
    assert (topic, similarity, probability) == counts


# ---------------------------------------------------------------------------
# Engine-populated window: kernel + store vs scalar, pair for pair
# ---------------------------------------------------------------------------
def _populated_engine():
    workload = build_workload("citations", 0.4, 7)
    config = build_config(workload, 40)
    engine = TERiDSEngine(repository=workload.repository, config=config)
    engine.run(list(workload.interleaved_records())[:120])
    return engine, config


def test_kernel_with_resident_store_matches_scalar_on_window():
    engine, config = _populated_engine()
    synopses = engine.grid.synopses()
    assert len(synopses) > 30
    store = PackedStore()
    for synopsis in synopses:
        store.insert(synopsis)
    for query in synopses[:25]:
        candidates = [s for s in synopses if s is not query]
        alive, topic, similarity, probability = batch_prune(
            query, candidates, keywords=config.keywords, gamma=config.gamma,
            alpha=config.alpha, store=store)
        mask, counts = _scalar_cascade(query, candidates, config.keywords,
                                       config.gamma, config.alpha)
        assert list(alive) == mask
        assert (topic, similarity, probability) == counts


def test_evaluate_candidates_verdicts_and_stats_match_scalar():
    engine, config = _populated_engine()
    synopses = engine.grid.synopses()
    vector_stats = PruningStats()
    scalar_stats = PruningStats()
    for query in synopses[:20]:
        candidates = [s for s in synopses if s is not query]
        vectorized = evaluate_candidates(
            query, candidates, keywords=config.keywords, gamma=config.gamma,
            alpha=config.alpha, use_topic=True, use_similarity=True,
            use_probability=True, use_instance=True, stats=vector_stats,
            vectorized=True)
        scalar = [
            evaluate_pair_cached(
                query, candidate, keywords=config.keywords,
                gamma=config.gamma, alpha=config.alpha, use_topic=True,
                use_similarity=True, use_probability=True, use_instance=True,
                stats=scalar_stats)
            for candidate in candidates
        ]
        assert vectorized == scalar
    assert vector_stats == scalar_stats


# ---------------------------------------------------------------------------
# Golden regression: vectorized kernel on, every refinement mode
# ---------------------------------------------------------------------------
def _golden(dataset):
    return json.loads(golden_path(dataset).read_text())["reference"]


@pytest.mark.parametrize("dataset,scale,seed,window", GOLDEN_WORKLOADS)
def test_vectorized_in_process_matches_seed_goldens(dataset, scale, seed,
                                                    window):
    workload = build_workload(dataset, scale, seed)
    config = build_config(workload, window)
    got = run_reference(
        lambda **kwargs: TERiDSEngine(
            executor=MicroBatchExecutor(batch_size=16, vectorized=True),
            **kwargs),
        workload, config)
    assert got == _golden(dataset)


@pytest.mark.parametrize("pool_mode", [POOL_PERSISTENT, POOL_PER_BATCH])
def test_vectorized_pooled_matches_seed_golden(pool_mode):
    dataset, scale, seed, window = GOLDEN_WORKLOADS[0]
    workload = build_workload(dataset, scale, seed)
    config = build_config(workload, window)
    executor = MicroBatchExecutor(batch_size=16, max_workers=2,
                                  vectorized=True, pool_mode=pool_mode)
    try:
        got = run_reference(
            lambda **kwargs: TERiDSEngine(executor=executor, **kwargs),
            workload, config)
    finally:
        executor.close()
    assert got == _golden(dataset)


def test_scalar_pooled_matches_seed_golden():
    """The persistent pool is verdict-identical with the kernel off too."""
    dataset, scale, seed, window = GOLDEN_WORKLOADS[0]
    workload = build_workload(dataset, scale, seed)
    config = build_config(workload, window)
    executor = MicroBatchExecutor(batch_size=16, max_workers=2,
                                  vectorized=False)
    try:
        got = run_reference(
            lambda **kwargs: TERiDSEngine(executor=executor, **kwargs),
            workload, config)
    finally:
        executor.close()
    assert got == _golden(dataset)


# ---------------------------------------------------------------------------
# Persistent pool: transport accounting + self-healing residency
# ---------------------------------------------------------------------------
def _transport_run(pool_mode, batch_size=16):
    workload = build_workload("citations", 0.5, 7)
    config = build_config(workload, 40)
    executor = MicroBatchExecutor(batch_size=batch_size, max_workers=2,
                                  pool_mode=pool_mode)
    engine = TERiDSEngine(repository=workload.repository, config=config,
                          executor=executor)
    report = engine.run(workload.interleaved_records())
    transport = engine.ctx.transport
    engine.close()
    return sorted(pair.key() for pair in report.matches), transport


def test_persistent_pool_ships_fewer_bytes_than_per_batch():
    per_batch_matches, per_batch = _transport_run(POOL_PER_BATCH)
    persistent_matches, persistent = _transport_run(POOL_PERSISTENT)
    assert persistent_matches == per_batch_matches
    assert per_batch.batches == persistent.batches > 0
    # Every batch re-ships the window in per-batch mode; the resident-store
    # protocol ships each synopsis roughly once.
    assert persistent.synopses_shipped < per_batch.synopses_shipped / 4
    assert (persistent.steady_state_bytes()
            < per_batch.steady_state_bytes() / 2)


def test_persistent_pool_repairs_residency_after_restore(tmp_path):
    """A restored engine re-ships re-built window synopses transparently."""
    dataset, scale, seed, window = "citations", 0.5, 7, 40
    split = 60

    reference_workload = build_workload(dataset, scale, seed)
    reference = TERiDSEngine(repository=reference_workload.repository,
                             config=build_config(reference_workload, window))
    reference_report = reference.run(reference_workload.interleaved_records())

    workload = build_workload(dataset, scale, seed)
    records = list(workload.interleaved_records())
    first = TERiDSEngine(repository=workload.repository,
                         config=build_config(workload, window))
    matches = []
    for record in records[:split]:
        matches.extend(first.process(record))
    path = tmp_path / "persistent.ckpt.json"
    first.save_checkpoint(path)

    executor = MicroBatchExecutor(batch_size=16, max_workers=2,
                                  pool_mode=POOL_PERSISTENT)
    resumed = TERiDSEngine(repository=workload.repository,
                           config=build_config(workload, window),
                           executor=executor)
    resumed.load_checkpoint(path)
    matches.extend(resumed.process_batch(records[split:]))
    resumed.close()
    assert (canonical_matches(matches)
            == canonical_matches(reference_report.matches))


def test_persistent_pool_matches_in_process_on_unvalidatable_record():
    """Worker-side rebuild must mirror pickle, not re-run validation.

    A record whose candidate map was emptied after construction is handled
    by ``RecordSynopsis.build`` everywhere in-process; the delta protocol
    rebuilds the imputed record in the worker and must tolerate (and agree
    on) the same state instead of dying in ``ImputedRecord.__init__``.
    """
    from repro.core.pruning import PruningStats as Stats
    from repro.runtime import PersistentRefinementPool, TupleTask

    record = Record(rid="q1", values={"symptom": "weight loss",
                                      "diagnosis": None}, source="s0")
    imputed = ImputedRecord(base=record, schema=SCHEMA,
                            candidates={"diagnosis": {"diabetes": 1.0}})
    imputed.candidates["diagnosis"] = {}
    query = RecordSynopsis.build(imputed, PIVOTS, KEYWORDS)
    candidates = [_make_synopsis(index, "weight loss blurred vision",
                                 "diabetes", None) for index in (1, 2, 3)]

    expected_stats = Stats()
    expected = evaluate_candidates(
        query, candidates, keywords=KEYWORDS, gamma=1.0, alpha=0.3,
        use_topic=True, use_similarity=True, use_probability=True,
        use_instance=True, stats=expected_stats, vectorized=True)

    task = TupleTask(record=record)
    task.synopsis = query
    task.candidates = candidates
    pool = PersistentRefinementPool(workers=1, params={
        "pivots": PIVOTS, "keywords": KEYWORDS, "gamma": 1.0, "alpha": 0.3,
        "use_topic": True, "use_similarity": True, "use_probability": True,
        "use_instance": True, "vectorized": True})
    try:
        verdicts, stats = pool.evaluate_batch([task], [(0, 0)], [])
    finally:
        pool.close()
    assert verdicts[0] == expected
    assert stats == expected_stats


def test_persistent_pool_rebinds_when_executor_is_reused():
    """Handing the executor to a second engine must not keep stale params.

    The pool freezes the pivot table and thresholds at creation; a second
    engine (different config/repository) must get a fresh pool, or its
    verdicts would silently use the first operator's parameters.
    """
    executor = MicroBatchExecutor(batch_size=16, max_workers=2)

    workload = build_workload("citations", 0.4, 7)
    first = TERiDSEngine(repository=workload.repository,
                         config=build_config(workload, 30), executor=executor)
    first.run(list(workload.interleaved_records())[:60])
    first_pool = executor._persistent_pool
    assert first_pool is not None

    dataset, scale, seed, window = GOLDEN_WORKLOADS[1]
    golden_workload = build_workload(dataset, scale, seed)
    config = build_config(golden_workload, window)
    got = run_reference(
        lambda **kwargs: TERiDSEngine(executor=executor, **kwargs),
        golden_workload, config)
    assert executor._persistent_pool is not first_pool
    executor.close()
    assert got == _golden(dataset)


def test_persistent_pool_tracks_residency_and_closes_idempotently():
    workload = build_workload("citations", 0.4, 7)
    config = build_config(workload, 30)
    executor = MicroBatchExecutor(batch_size=16, max_workers=2,
                                  pool_mode=POOL_PERSISTENT)
    engine = TERiDSEngine(repository=workload.repository, config=config,
                          executor=executor)
    engine.run(list(workload.interleaved_records())[:90])
    pool = executor._persistent_pool
    assert pool is not None
    # Residency is bounded by what is (or recently was) referenced from the
    # windows — it can never exceed the union of window capacities.
    assert 0 < pool.resident_count <= 2 * config.window_size
    engine.close()
    engine.close()
    assert executor._persistent_pool is None


# ---------------------------------------------------------------------------
# PackedStore mechanics
# ---------------------------------------------------------------------------
class TestPackedStore:
    def _synopses(self, count=5):
        return [_make_synopsis(index, "fever cough", "flu", None)
                for index in range(count)]

    def test_insert_gather_roundtrip(self):
        store = PackedStore()
        synopses = self._synopses()
        rows = [store.insert(s) for s in synopses]
        assert len(store) == len(synopses)
        for synopsis, row in zip(synopses, rows):
            assert store.row_for(synopsis) == row
            packed = ensure_packed(synopsis)
            assert np.array_equal(store.dist_lb[row], packed.dist_lb)
            assert np.array_equal(store.tok_max[row], packed.tok_max)

    def test_remove_recycles_rows(self):
        store = PackedStore()
        synopses = self._synopses()
        rows = [store.insert(s) for s in synopses]
        assert store.remove(synopses[2].rid, synopses[2].source)
        assert store.row_for(synopses[2]) is None
        replacement = _make_synopsis(99, "red eye", "conjunctivitis", None)
        assert store.insert(replacement) == rows[2]
        assert store.row_for(replacement) == rows[2]

    def test_row_for_requires_identity(self):
        """A re-built synopsis with the same key must not hit a stale row."""
        store = PackedStore()
        original = self._synopses(1)[0]
        store.insert(original)
        rebuilt = _make_synopsis(0, "fever cough", "flu", None)
        assert rebuilt.rid == original.rid
        assert store.row_for(original) is not None
        assert store.row_for(rebuilt) is None

    def test_growth_beyond_initial_capacity(self):
        store = PackedStore()
        synopses = [_make_synopsis(index, "fever", "flu", None)
                    for index in range(130)]
        for synopsis in synopses:
            store.insert(synopsis)
        assert len(store) == 130
        assert store.row_for(synopses[-1]) is not None


# ---------------------------------------------------------------------------
# Executor argument surface
# ---------------------------------------------------------------------------
def test_micro_batch_executor_validates_new_arguments():
    with pytest.raises(ValueError):
        MicroBatchExecutor(batch_size=4, pool_mode="bogus")
    executor = MicroBatchExecutor(batch_size=4)
    assert executor.vectorized is True  # numpy present in the test env
    assert MicroBatchExecutor(batch_size=4, vectorized=False).vectorized is False
