"""Incremental maintenance of the DD baseline rule set.

:class:`IncrementalDDMaintainer` delegates to the CDD sketch machinery over
the DD-translated configuration (interval bands only, no constant groups,
no combined determinants).  These tests pin the delegation: initialization
and every absorbed batch must regenerate exactly the rules a from-scratch
:func:`discover_dd_rules` mine would produce, the checkpoint state must
round-trip, and the DD-level knobs must validate like the CDD ones.
"""

from __future__ import annotations

import pytest

from golden_utils import GOLDEN_WORKLOADS, build_workload
from repro.experiments.harness import split_repository
from repro.imputation.cdd import (
    CONSTRAINT_INTERVAL,
    MAINTENANCE_HYBRID,
    MAINTENANCE_INCREMENTAL,
    RuleError,
)
from repro.imputation.dd import (
    DDDiscoveryConfig,
    DDMaintenanceReport,
    DDRule,
    IncrementalDDMaintainer,
    discover_dd_rules,
)
from repro.imputation.repository import DataRepository

INCREMENTAL_DD_CONFIG = DDDiscoveryConfig(
    maintenance_mode=MAINTENANCE_INCREMENTAL)


def _signature(rules):
    return [(rule.rule.rule_id, rule.dependent_interval, rule.support)
            for rule in rules]


def _chunks(items, size):
    for start in range(0, len(items), size):
        yield items[start:start + size]


# ---------------------------------------------------------------------------
# Config passthrough and validation
# ---------------------------------------------------------------------------
class TestDDMaintenanceConfig:
    def test_maintenance_knobs_reach_the_shared_config(self):
        config = DDDiscoveryConfig(maintenance_mode=MAINTENANCE_HYBRID,
                                   min_confidence=0.7,
                                   drift_threshold=0.2,
                                   pending_pool_size=9,
                                   max_update_pairs=123,
                                   max_group_pairs_per_sample=7)
        cdd = config.as_cdd_config()
        assert cdd.maintenance_mode == MAINTENANCE_HYBRID
        assert cdd.min_confidence == 0.7
        assert cdd.drift_threshold == 0.2
        assert cdd.pending_pool_size == 9
        assert cdd.max_update_pairs == 123
        assert cdd.max_group_pairs_per_sample == 7
        # The DD translation itself is unchanged by the maintenance knobs.
        assert cdd.max_constant_conditions == 0
        assert cdd.combine_determinants is False

    @pytest.mark.parametrize("field,value", [
        ("maintenance_mode", "sometimes"),
        ("min_confidence", 0.0),
        ("drift_threshold", 0.0),
        ("pending_pool_size", 0),
        ("max_update_pairs", 0),
        ("max_group_pairs_per_sample", 0),
    ])
    def test_invalid_knobs_rejected_at_construction(self, field, value):
        with pytest.raises(RuleError):
            DDDiscoveryConfig(**{field: value})


# ---------------------------------------------------------------------------
# Exactness: initialize == full DD mine; absorb == full DD re-mine
# ---------------------------------------------------------------------------
class TestDDMaintainerExactness:
    def test_initialize_matches_full_miner_on_health(self, health_repository):
        full = discover_dd_rules(health_repository, INCREMENTAL_DD_CONFIG)
        maintainer = IncrementalDDMaintainer(INCREMENTAL_DD_CONFIG,
                                             health_repository.schema)
        assert (_signature(maintainer.initialize(health_repository))
                == _signature(full))

    def test_streamed_updates_match_full_remine(self):
        dataset, scale, seed, _ = GOLDEN_WORKLOADS[0]
        workload = build_workload(dataset, scale, seed)
        base, holdout = split_repository(workload.repository, 0.3)
        repository = DataRepository(schema=workload.schema,
                                    samples=list(base.samples))
        maintainer = IncrementalDDMaintainer(INCREMENTAL_DD_CONFIG,
                                             workload.schema)
        maintainer.initialize(repository)
        batches = 0
        for batch in _chunks(holdout, 3):
            repository.extend(batch)
            report = maintainer.absorb(repository, batch)
            assert isinstance(report, DDMaintenanceReport)
            assert not report.remined
            full = discover_dd_rules(repository, INCREMENTAL_DD_CONFIG)
            assert _signature(report.rules) == _signature(full)
            assert _signature(maintainer.rules) == _signature(full)
            batches += 1
        assert batches > 1

    def test_emitted_rules_are_interval_only_dds(self, health_repository):
        maintainer = IncrementalDDMaintainer(INCREMENTAL_DD_CONFIG,
                                             health_repository.schema)
        rules = maintainer.initialize(health_repository)
        assert rules
        for rule in rules:
            assert isinstance(rule, DDRule)
            assert len(rule.determinants) == 1
            for constraint in rule.determinants:
                assert constraint.kind == CONSTRAINT_INTERVAL

    def test_forced_full_remine_reports_remined(self, health_repository):
        maintainer = IncrementalDDMaintainer(INCREMENTAL_DD_CONFIG,
                                             health_repository.schema)
        maintainer.initialize(health_repository)
        report = maintainer.absorb(health_repository, [], force_full=True)
        assert report.remined
        assert (_signature(report.rules)
                == _signature(discover_dd_rules(health_repository,
                                                INCREMENTAL_DD_CONFIG)))


# ---------------------------------------------------------------------------
# Checkpointing the sketches
# ---------------------------------------------------------------------------
class TestDDMaintainerState:
    def test_state_round_trip_restores_rules_and_sketches(self):
        dataset, scale, seed, _ = GOLDEN_WORKLOADS[0]
        workload = build_workload(dataset, scale, seed)
        base, holdout = split_repository(workload.repository, 0.3)
        repository = DataRepository(schema=workload.schema,
                                    samples=list(base.samples))
        maintainer = IncrementalDDMaintainer(INCREMENTAL_DD_CONFIG,
                                             workload.schema)
        maintainer.initialize(repository)
        cut = len(holdout) // 2
        repository.extend(holdout[:cut])
        maintainer.absorb(repository, holdout[:cut])

        state = maintainer.state_to_dict()
        resumed = IncrementalDDMaintainer(INCREMENTAL_DD_CONFIG,
                                          workload.schema)
        restored_rules = resumed.restore_state(state)
        assert _signature(restored_rules) == _signature(maintainer.rules)

        # The restored sketches keep absorbing exactly like the original.
        repository.extend(holdout[cut:])
        original = maintainer.absorb(repository, holdout[cut:])
        replayed = resumed.absorb(repository, holdout[cut:])
        assert _signature(original.rules) == _signature(replayed.rules)
        assert original.widened_ids == replayed.widened_ids
        assert maintainer.drift == resumed.drift
