"""Round-trip tests for the JSON persistence layer."""

import pytest

from repro.core.matching import MatchPair
from repro.core.tuples import Record
from repro.imputation.cdd import discover_cdd_rules
from repro.indexes.pivots import select_pivots
from repro.persistence import (
    load_matches,
    load_pivots,
    load_repository,
    load_rules,
    match_from_dict,
    match_to_dict,
    pivots_from_dict,
    pivots_to_dict,
    record_from_dict,
    record_to_dict,
    repository_from_dict,
    repository_to_dict,
    rule_from_dict,
    rule_to_dict,
    save_matches,
    save_pivots,
    save_repository,
    save_rules,
)


class TestRecordRoundTrip:
    def test_complete_record(self):
        record = Record(rid="r1", values={"x": "a b", "y": "c"}, source="s1",
                        timestamp=4)
        restored = record_from_dict(record_to_dict(record))
        assert restored == record
        assert restored.values == record.values
        assert restored.timestamp == 4

    def test_incomplete_record_keeps_none(self):
        record = Record(rid="r1", values={"x": "a", "y": None})
        restored = record_from_dict(record_to_dict(record))
        assert restored.is_missing("y")


class TestRepositoryRoundTrip:
    def test_repository(self, health_repository, tmp_path):
        data = repository_to_dict(health_repository)
        restored = repository_from_dict(data)
        assert len(restored) == len(health_repository)
        assert list(restored.schema) == list(health_repository.schema)
        assert restored.domain("diagnosis") == health_repository.domain("diagnosis")

        path = tmp_path / "repository.json"
        save_repository(health_repository, path)
        loaded = load_repository(path)
        assert len(loaded) == len(health_repository)


class TestRuleRoundTrip:
    def test_single_rule(self, simple_cdd_rule):
        restored = rule_from_dict(rule_to_dict(simple_cdd_rule))
        assert restored == simple_cdd_rule

    def test_mined_rules_file(self, health_repository, tmp_path):
        rules = discover_cdd_rules(health_repository)
        path = tmp_path / "rules.json"
        save_rules(rules, path)
        loaded = load_rules(path)
        assert loaded == list(rules)

    def test_invalid_constraint_kind_rejected(self):
        with pytest.raises(ValueError):
            rule_from_dict({
                "determinants": [{"attribute": "a", "kind": "bogus"}],
                "dependent": "b",
                "dependent_interval": [0.0, 0.1],
            })


class TestPivotRoundTrip:
    def test_pivot_table(self, health_repository, tmp_path):
        pivots = select_pivots(health_repository)
        restored = pivots_from_dict(pivots_to_dict(pivots))
        assert restored.pivots == pivots.pivots
        for attribute in health_repository.schema:
            assert (restored.main_pivot(attribute)
                    == pivots.main_pivot(attribute))

        path = tmp_path / "pivots.json"
        save_pivots(pivots, path)
        loaded = load_pivots(path)
        assert loaded.pivots == pivots.pivots

    def test_converted_values_identical_after_roundtrip(self, health_repository):
        pivots = select_pivots(health_repository)
        restored = pivots_from_dict(pivots_to_dict(pivots))
        sample = health_repository.samples[0]
        assert restored.convert_record(sample) == pivots.convert_record(sample)


class TestMatchRoundTrip:
    def test_single_match(self):
        pair = MatchPair("r1", "a", "r2", "b", 0.75, timestamp=9)
        restored = match_from_dict(match_to_dict(pair))
        assert restored == pair

    def test_match_file(self, tmp_path):
        pairs = [MatchPair("r1", "a", "r2", "b", 0.75),
                 MatchPair("r3", "a", "r4", "b", 0.9, timestamp=2)]
        path = tmp_path / "matches.json"
        save_matches(pairs, path)
        loaded = load_matches(path)
        assert loaded == pairs

    def test_engine_results_can_be_persisted(self, health_repository,
                                             health_config, tmp_path):
        from repro.core.engine import TERiDSEngine

        engine = TERiDSEngine(repository=health_repository, config=health_config)
        records = [
            Record(rid="a1", values={"gender": "male",
                                     "symptom": "thirst weight loss",
                                     "diagnosis": "diabetes",
                                     "treatment": "insulin"}, source="stream-a"),
            Record(rid="b1", values={"gender": "male",
                                     "symptom": "thirst weight loss",
                                     "diagnosis": "diabetes",
                                     "treatment": "insulin"}, source="stream-b"),
        ]
        report = engine.run(records)
        path = tmp_path / "matches.json"
        save_matches(report.matches, path)
        assert load_matches(path) == report.matches
