"""Unit tests for incomplete data streams and sliding windows (Defs 1-2)."""

import pytest

from repro.core.stream import (
    IncompleteDataStream,
    SlidingWindow,
    StreamError,
    StreamSet,
    build_stream,
)
from repro.core.tuples import Record, Schema

SCHEMA = Schema(attributes=("x", "y"))


def _records(count, missing_every=None, source="s"):
    out = []
    for index in range(count):
        y = None if missing_every and index % missing_every == 0 else f"y{index}"
        out.append(Record(rid=f"r{index}", values={"x": f"x{index}", "y": y},
                          source=source))
    return out


class TestIncompleteDataStream:
    def test_emission_order_and_timestamps(self):
        stream = build_stream("s1", _records(3), SCHEMA)
        emitted = [stream.next_record() for _ in range(3)]
        assert [record.rid for record in emitted] == ["r0", "r1", "r2"]
        assert [record.timestamp for record in emitted] == [0, 1, 2]
        assert all(record.source == "s1" for record in emitted)

    def test_exhaustion(self):
        stream = build_stream("s1", _records(2), SCHEMA)
        stream.next_record()
        stream.next_record()
        assert stream.exhausted
        with pytest.raises(StreamError):
            stream.next_record()

    def test_peek_does_not_consume(self):
        stream = build_stream("s1", _records(2), SCHEMA)
        assert stream.peek().rid == "r0"
        assert stream.peek().rid == "r0"
        assert stream.remaining == 2

    def test_peek_on_exhausted_stream(self):
        stream = build_stream("s1", _records(1), SCHEMA)
        stream.next_record()
        assert stream.peek() is None

    def test_iteration(self):
        stream = build_stream("s1", _records(4), SCHEMA)
        assert len(list(stream)) == 4
        assert stream.exhausted

    def test_missing_rate_tracking(self):
        stream = build_stream("s1", _records(4, missing_every=2), SCHEMA)
        list(stream)
        assert stream.missing_rate == pytest.approx(0.5)

    def test_missing_rate_before_emission(self):
        stream = build_stream("s1", _records(4), SCHEMA)
        assert stream.missing_rate == 0.0

    def test_reset(self):
        stream = build_stream("s1", _records(3), SCHEMA)
        list(stream)
        stream.reset()
        assert not stream.exhausted
        assert stream.next_record().timestamp == 0


class TestSlidingWindow:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SlidingWindow(capacity=0)

    def test_insert_until_full_returns_no_eviction(self):
        window = SlidingWindow(capacity=2)
        records = _records(2)
        assert window.insert(records[0]) is None
        assert window.insert(records[1]) is None
        assert len(window) == 2
        assert window.is_full

    def test_eviction_order_is_fifo(self):
        window = SlidingWindow(capacity=2)
        records = _records(3)
        window.insert(records[0])
        window.insert(records[1])
        evicted = window.insert(records[2])
        assert evicted.rid == "r0"
        assert [item.rid for item in window.items()] == ["r1", "r2"]

    def test_membership_and_lookup(self):
        window = SlidingWindow(capacity=3)
        records = _records(2)
        window.insert(records[0])
        assert records[0] in window
        assert records[1] not in window
        assert window.get("r0", "s").rid == "r0"
        assert window.get("missing", "s") is None

    def test_evicted_item_not_in_lookup(self):
        window = SlidingWindow(capacity=1)
        records = _records(2)
        window.insert(records[0])
        window.insert(records[1])
        assert window.get("r0", "s") is None
        assert window.get("r1", "s") is not None

    def test_clear(self):
        window = SlidingWindow(capacity=2)
        window.insert(_records(1)[0])
        window.clear()
        assert len(window) == 0
        assert not window.is_full


class TestStreamSet:
    def test_requires_at_least_one_stream(self):
        with pytest.raises(ValueError):
            StreamSet(streams=[])

    def test_requires_homogeneous_schema(self):
        stream_a = build_stream("a", _records(1), SCHEMA)
        other_schema = Schema(attributes=("x", "z"))
        stream_b = IncompleteDataStream(name="b", schema=other_schema, records=[])
        with pytest.raises(ValueError):
            StreamSet(streams=[stream_a, stream_b])

    def test_round_robin_interleaving(self):
        stream_a = build_stream("a", _records(2, source="a"), SCHEMA)
        stream_b = build_stream("b", _records(3, source="b"), SCHEMA)
        streams = StreamSet(streams=[stream_a, stream_b])
        order = [(record.source, record.rid) for record in streams.interleaved()]
        assert order == [("a", "r0"), ("b", "r0"), ("a", "r1"), ("b", "r1"),
                         ("b", "r2")]

    def test_total_records_and_names(self):
        stream_a = build_stream("a", _records(2), SCHEMA)
        stream_b = build_stream("b", _records(3), SCHEMA)
        streams = StreamSet(streams=[stream_a, stream_b])
        assert streams.total_records() == 5
        assert streams.names == ["a", "b"]
        assert len(streams) == 2
        assert streams.schema == SCHEMA

    def test_reset_rewinds_all(self):
        stream_a = build_stream("a", _records(2), SCHEMA)
        stream_b = build_stream("b", _records(2), SCHEMA)
        streams = StreamSet(streams=[stream_a, stream_b])
        list(streams.interleaved())
        streams.reset()
        assert not stream_a.exhausted
        assert not stream_b.exhausted
