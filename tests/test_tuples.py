"""Unit tests for the record / imputed-record / instance model (Defs 1 and 4)."""

import pytest

from repro.core.tuples import (
    ImputedRecord,
    Instance,
    Record,
    Schema,
    SchemaError,
    make_records,
)


class TestSchema:
    def test_basic_properties(self):
        schema = Schema(attributes=("a", "b", "c"))
        assert len(schema) == 3
        assert schema.dimensionality == 3
        assert list(schema) == ["a", "b", "c"]
        assert "a" in schema
        assert "z" not in schema

    def test_index(self):
        schema = Schema(attributes=("a", "b"))
        assert schema.index("b") == 1

    def test_index_unknown_attribute(self):
        schema = Schema(attributes=("a",))
        with pytest.raises(SchemaError):
            schema.index("missing")

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema(attributes=())

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError):
            Schema(attributes=("a", "a"))


class TestRecord:
    schema = Schema(attributes=("x", "y"))

    def test_getitem_and_get(self):
        record = Record(rid="r1", values={"x": "hello", "y": None})
        assert record["x"] == "hello"
        assert record["y"] is None
        assert record.get("y", "default") == "default"

    def test_is_missing(self):
        record = Record(rid="r1", values={"x": "hello", "y": None})
        assert not record.is_missing("x")
        assert record.is_missing("y")
        assert record.is_missing("unknown")

    def test_missing_attributes_in_schema_order(self):
        record = Record(rid="r1", values={"x": None, "y": None})
        assert record.missing_attributes(self.schema) == ["x", "y"]

    def test_is_complete(self):
        complete = Record(rid="r1", values={"x": "a", "y": "b"})
        incomplete = Record(rid="r2", values={"x": "a", "y": None})
        assert complete.is_complete(self.schema)
        assert not incomplete.is_complete(self.schema)

    def test_tokens_of_missing_attribute_empty(self):
        record = Record(rid="r1", values={"x": "a b", "y": None})
        assert record.tokens("y") == frozenset()
        assert record.tokens("x") == {"a", "b"}

    def test_all_tokens(self):
        record = Record(rid="r1", values={"x": "a b", "y": "b c"})
        assert record.all_tokens(self.schema) == {"a", "b", "c"}

    def test_contains_keyword(self):
        record = Record(rid="r1", values={"x": "diabetes care", "y": "rest"})
        assert record.contains_keyword(["diabetes"], self.schema)
        assert record.contains_keyword(["Diabetes"], self.schema)
        assert not record.contains_keyword(["flu"], self.schema)

    def test_with_value_returns_new_record(self):
        record = Record(rid="r1", values={"x": "a", "y": None})
        updated = record.with_value("y", "filled")
        assert updated["y"] == "filled"
        assert record["y"] is None
        assert updated.rid == record.rid

    def test_with_timestamp(self):
        record = Record(rid="r1", values={"x": "a", "y": "b"})
        stamped = record.with_timestamp(5)
        assert stamped.timestamp == 5
        assert record.timestamp == -1

    def test_display_row_uses_dash(self):
        record = Record(rid="r1", values={"x": "a", "y": None})
        assert record.as_display_row(self.schema) == ["a", "-"]

    def test_identity_is_rid_and_source(self):
        left = Record(rid="r1", values={"x": "a"}, source="s1")
        right = Record(rid="r1", values={"x": "completely different"}, source="s1")
        other = Record(rid="r1", values={"x": "a"}, source="s2")
        assert left == right
        assert left != other
        assert hash(left) == hash(right)

    def test_make_records_assigns_ids(self):
        records = make_records([{"x": "a", "y": "b"}, {"x": "c"}], self.schema,
                               source="src", prefix="t")
        assert [record.rid for record in records] == ["t0", "t1"]
        assert records[1]["y"] is None
        assert all(record.source == "src" for record in records)


class TestInstance:
    def test_probability_validation(self):
        record = Record(rid="r1", values={"x": "a"})
        with pytest.raises(ValueError):
            Instance(record=record, probability=1.5)
        with pytest.raises(ValueError):
            Instance(record=record, probability=-0.1)

    def test_tokens_delegate(self):
        record = Record(rid="r1", values={"x": "a b"})
        instance = Instance(record=record, probability=0.5)
        assert instance.tokens("x") == {"a", "b"}


class TestImputedRecord:
    schema = Schema(attributes=("x", "y"))

    def test_trivial_complete_record(self):
        record = Record(rid="r1", values={"x": "a", "y": "b"})
        imputed = ImputedRecord.from_complete(record, self.schema)
        assert imputed.is_trivial()
        instances = imputed.instances()
        assert len(instances) == 1
        assert instances[0].probability == 1.0
        assert imputed.total_probability() == pytest.approx(1.0)

    def test_single_missing_attribute_instances(self):
        record = Record(rid="r1", values={"x": "a", "y": None})
        imputed = ImputedRecord(base=record, schema=self.schema,
                                candidates={"y": {"b": 0.5, "c": 0.5}})
        instances = imputed.instances()
        assert len(instances) == 2
        values = {instance.record["y"] for instance in instances}
        assert values == {"b", "c"}
        assert imputed.total_probability() == pytest.approx(1.0)

    def test_multiple_missing_attributes_cross_product(self):
        record = Record(rid="r1", values={"x": None, "y": None})
        imputed = ImputedRecord(
            base=record, schema=self.schema,
            candidates={"x": {"a": 0.5, "b": 0.5}, "y": {"c": 0.4, "d": 0.6}})
        instances = imputed.instances()
        assert len(instances) == 4
        assert imputed.total_probability() == pytest.approx(1.0)
        probabilities = sorted(instance.probability for instance in instances)
        assert probabilities == pytest.approx([0.2, 0.2, 0.3, 0.3])

    def test_probabilities_may_sum_below_one(self):
        record = Record(rid="r1", values={"x": "a", "y": None})
        imputed = ImputedRecord(base=record, schema=self.schema,
                                candidates={"y": {"b": 0.4, "c": 0.3}})
        assert imputed.total_probability() == pytest.approx(0.7)

    def test_probabilities_above_one_rejected(self):
        record = Record(rid="r1", values={"x": "a", "y": None})
        with pytest.raises(ValueError):
            ImputedRecord(base=record, schema=self.schema,
                          candidates={"y": {"b": 0.8, "c": 0.4}})

    def test_empty_candidate_distribution_rejected(self):
        record = Record(rid="r1", values={"x": "a", "y": None})
        with pytest.raises(ValueError):
            ImputedRecord(base=record, schema=self.schema, candidates={"y": {}})

    def test_unknown_candidate_attribute_rejected(self):
        record = Record(rid="r1", values={"x": "a", "y": "b"})
        with pytest.raises(SchemaError):
            ImputedRecord(base=record, schema=self.schema,
                          candidates={"z": {"v": 1.0}})

    def test_possible_values_for_observed_attribute(self):
        record = Record(rid="r1", values={"x": "a", "y": None})
        imputed = ImputedRecord(base=record, schema=self.schema,
                                candidates={"y": {"b": 1.0}})
        assert imputed.possible_values("x") == {"a": 1.0}
        assert imputed.possible_values("y") == {"b": 1.0}

    def test_possible_values_unimputed_missing(self):
        record = Record(rid="r1", values={"x": "a", "y": None})
        imputed = ImputedRecord(base=record, schema=self.schema, candidates={})
        assert imputed.possible_values("y") == {"": 1.0}

    def test_token_size_bounds(self):
        record = Record(rid="r1", values={"x": "a", "y": None})
        imputed = ImputedRecord(base=record, schema=self.schema,
                                candidates={"y": {"one two": 0.5, "three": 0.5}})
        assert imputed.token_size_bounds("y") == (1, 2)
        assert imputed.token_size_bounds("x") == (1, 1)

    def test_may_contain_keyword_on_candidates(self):
        record = Record(rid="r1", values={"x": "a", "y": None})
        imputed = ImputedRecord(base=record, schema=self.schema,
                                candidates={"y": {"diabetes risk": 0.2,
                                                  "flu": 0.8}})
        assert imputed.may_contain_keyword(["diabetes"])
        assert not imputed.may_contain_keyword(["allergy"])
        assert not imputed.may_contain_keyword([])

    def test_must_contain_keyword(self):
        record = Record(rid="r1", values={"x": "diabetes care", "y": None})
        imputed = ImputedRecord(base=record, schema=self.schema,
                                candidates={"y": {"flu": 1.0}})
        assert imputed.must_contain_keyword(["diabetes"])
        record2 = Record(rid="r2", values={"x": "a", "y": None})
        imputed2 = ImputedRecord(base=record2, schema=self.schema,
                                 candidates={"y": {"diabetes": 0.5, "flu": 0.5}})
        assert not imputed2.must_contain_keyword(["diabetes"])

    def test_expected_instance_is_most_probable(self):
        record = Record(rid="r1", values={"x": "a", "y": None})
        imputed = ImputedRecord(base=record, schema=self.schema,
                                candidates={"y": {"b": 0.7, "c": 0.3}})
        assert imputed.expected_instance()["y"] == "b"

    def test_instance_cap_keeps_most_probable(self):
        record = Record(rid="r1", values={"x": None, "y": None})
        many = {f"value{i}": 1.0 / 40 for i in range(40)}
        imputed = ImputedRecord(base=record, schema=self.schema,
                                candidates={"x": dict(many), "y": dict(many)})
        instances = imputed.instances()
        assert len(instances) == ImputedRecord.MAX_INSTANCES
        assert imputed.total_probability() <= 1.0 + 1e-9

    def test_imputed_attributes_listing(self):
        record = Record(rid="r1", values={"x": "a", "y": None})
        imputed = ImputedRecord(base=record, schema=self.schema,
                                candidates={"y": {"b": 1.0}})
        assert imputed.imputed_attributes == ["y"]
        assert not imputed.is_trivial()
