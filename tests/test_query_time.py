"""Tests for query-time (on-demand) resolution over the live window.

The heavyweight guarantees:

* **Closure bit-identity** — ``resolve(entity)`` returns exactly the
  transitive closure of the eager result set restricted to the query's
  connected component (members, pair orientation, probabilities and
  timestamps all bit-identical), for *every* in-window entity, across the
  serial, vectorized, sharded and shm-plane configurations and at any
  point mid-stream;
* **Cache soundness** — a cached cluster is never served stale: entries
  are dropped when window maintenance (insert, count-based expiry,
  event-time retraction, checkpoint restore) touches their grid regions,
  and untouched entries survive;
* **Counter hygiene** — interactive lookups leave the eager path's
  golden-pinned pruning and grid counters untouched.
"""

import json
from collections import defaultdict
from concurrent.futures import Future

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from golden_utils import (
    GOLDEN_WORKLOADS,
    build_config,
    build_workload,
)
from repro.core.config import TERiDSConfig
from repro.core.engine import TERiDSEngine
from repro.core.pruning import HAS_NUMPY
from repro.datasets.synthetic import generate_dataset
from repro.runtime import MicroBatchExecutor, QueryResolver, SerialExecutor
from repro.runtime.shm_plane import HAS_SHM

needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="requires numpy")
needs_shm = pytest.mark.skipif(
    not HAS_SHM, reason="requires numpy and multiprocessing.shared_memory")


def _small_workload():
    return generate_dataset("citations", missing_rate=0.3, scale=0.3, seed=11)


def _small_config(workload, window=20):
    return TERiDSConfig(schema=workload.schema, keywords=workload.keywords,
                        alpha=0.5, similarity_ratio=0.5, window_size=window)


class _InlinePool:
    """Future-returning inline stand-in for a process pool (see
    ``test_sharded_grid``): exercises the sharded code path without
    process spawn cost."""

    def submit(self, fn, *args, **kwargs):
        future = Future()
        future.set_result(fn(*args, **kwargs))
        return future

    def shutdown(self, wait=True):
        pass


def _serial_executor():
    return SerialExecutor()


def _vectorized_executor():
    return MicroBatchExecutor(batch_size=8)


def _sharded_executor():
    executor = MicroBatchExecutor(batch_size=8, max_workers=2,
                                  pool_mode="per-batch", shard_lookup=True)
    executor._pool = _InlinePool()
    return executor


def _shm_inline_executor():
    executor = MicroBatchExecutor(batch_size=8, max_workers=2,
                                  shard_lookup=True, shm_plane=True,
                                  delta_routing=True)
    executor._shm_inline = True
    return executor


EXECUTORS = [
    pytest.param(_serial_executor, id="serial"),
    pytest.param(_vectorized_executor, id="vectorized",
                 marks=needs_numpy),
    pytest.param(_sharded_executor, id="sharded-inline",
                 marks=needs_numpy),
    pytest.param(_shm_inline_executor, id="shm-inline", marks=needs_shm),
]


def eager_closure(engine, rid, source):
    """The ground truth: BFS over the eager result set's match edges.

    Returns ``(members, pairs)`` in :class:`ResolvedCluster`'s canonical
    shape — sorted ``(source, rid)`` members (the query is always one) and
    the component's edges sorted by pair key.
    """
    adjacency = defaultdict(set)
    by_key = {}
    for pair in engine.current_matches():
        left = (pair.left_source, pair.left_rid)
        right = (pair.right_source, pair.right_rid)
        adjacency[left].add(right)
        adjacency[right].add(left)
        by_key[pair.key()] = pair
    start = (source, rid)
    component = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        for neighbour in adjacency[node]:
            if neighbour not in component:
                component.add(neighbour)
                stack.append(neighbour)
    edges = [pair for pair in by_key.values()
             if (pair.left_source, pair.left_rid) in component]
    return (tuple(sorted(component)),
            tuple(sorted(edges, key=lambda pair: pair.key())))


def _pair_tuple(pair):
    return (pair.left_rid, pair.left_source, pair.right_rid,
            pair.right_source, pair.probability, pair.timestamp)


def assert_cluster_equals_closure(engine, rid, source, cluster=None):
    cluster = cluster if cluster is not None else engine.resolve(rid, source)
    members, pairs = eager_closure(engine, rid, source)
    assert cluster.members == members
    assert [_pair_tuple(p) for p in cluster.pairs] == \
        [_pair_tuple(p) for p in pairs]
    return cluster


# ---------------------------------------------------------------------------
# Closure bit-identity: every in-window entity, every configuration
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("make_executor", EXECUTORS)
def test_resolve_equals_eager_closure_for_every_entity(make_executor):
    workload = _small_workload()
    engine = TERiDSEngine(repository=workload.repository,
                          config=_small_config(workload),
                          executor=make_executor())
    try:
        engine.run(workload.interleaved_records())
        multi = 0
        for (rid, source), _ in engine.grid.synopsis_items():
            cluster = assert_cluster_equals_closure(engine, rid, source)
            if len(cluster) > 1:
                multi += 1
        assert multi > 0  # the workload must actually exercise expansion
    finally:
        engine.close()


@pytest.mark.parametrize("dataset,scale,seed,window", GOLDEN_WORKLOADS)
def test_resolve_equals_eager_closure_on_goldens(dataset, scale, seed,
                                                window):
    workload = build_workload(dataset, scale, seed)
    engine = TERiDSEngine(repository=workload.repository,
                          config=build_config(workload, window))
    try:
        engine.run(workload.interleaved_records())
        for (rid, source), _ in engine.grid.synopsis_items():
            assert_cluster_equals_closure(engine, rid, source)
    finally:
        engine.close()


def test_resolve_mid_stream_tracks_the_moving_window():
    """Resolving between batches answers against the window *right now*."""
    workload = _small_workload()
    engine = TERiDSEngine(repository=workload.repository,
                          config=_small_config(workload))
    try:
        records = list(workload.interleaved_records())
        step = max(1, len(records) // 7)
        for start in range(0, len(records), step):
            engine.process_batch(records[start:start + step])
            for (rid, source), _ in engine.grid.synopsis_items()[:5]:
                assert_cluster_equals_closure(engine, rid, source)
    finally:
        engine.close()


_PROPERTY_WORKLOAD = _small_workload()
_PROPERTY_RECORDS = list(_PROPERTY_WORKLOAD.interleaved_records())

#: ``(factory, available)`` — unavailable configurations degrade to serial
#: so every drawn example still checks the property somewhere.
_PROPERTY_CONFIGS = [
    (_serial_executor, True),
    (_vectorized_executor, HAS_NUMPY),
    (_sharded_executor, HAS_NUMPY),
    (_shm_inline_executor, HAS_SHM),
]


@given(config_index=st.integers(min_value=0,
                                max_value=len(_PROPERTY_CONFIGS) - 1),
       probe=st.integers(min_value=0, max_value=10 ** 6))
@settings(max_examples=12, deadline=None)
def test_property_any_entity_any_config_matches_closure(config_index, probe):
    factory, available = _PROPERTY_CONFIGS[config_index]
    if not available:
        factory = _serial_executor
    engine = TERiDSEngine(repository=_PROPERTY_WORKLOAD.repository,
                          config=_small_config(_PROPERTY_WORKLOAD),
                          executor=factory())
    try:
        engine.run(_PROPERTY_RECORDS)
        items = engine.grid.synopsis_items()
        (rid, source), _ = items[probe % len(items)]
        assert_cluster_equals_closure(engine, rid, source)
    finally:
        engine.close()


# ---------------------------------------------------------------------------
# API surface
# ---------------------------------------------------------------------------
def test_resolve_unknown_entity_raises_key_error():
    workload = _small_workload()
    engine = TERiDSEngine(repository=workload.repository,
                          config=_small_config(workload))
    try:
        engine.run(workload.interleaved_records())
        with pytest.raises(KeyError, match="not in the live window"):
            engine.resolve("no-such-rid", "stream-a")
    finally:
        engine.close()


def test_resolve_with_stricter_gamma_shrinks_to_singleton():
    workload = _small_workload()
    engine = TERiDSEngine(repository=workload.repository,
                          config=_small_config(workload))
    try:
        engine.run(workload.interleaved_records())
        rid = source = None
        for (candidate_rid, candidate_source), _ in engine.grid.synopsis_items():
            if len(engine.resolve(candidate_rid, candidate_source)) > 1:
                rid, source = candidate_rid, candidate_source
                break
        assert rid is not None
        # gamma = d makes the similarity bound unsatisfiable for any
        # distinct pair, so the same entity resolves to a singleton.
        strict = engine.resolve(rid, source,
                                gamma=float(len(workload.schema)))
        assert strict.members == ((source, rid),)
        assert strict.pairs == ()
        # The default lookup is cached separately and still the closure.
        assert_cluster_equals_closure(engine, rid, source)
    finally:
        engine.close()


def test_resolve_with_topic_override_caches_per_signature():
    workload = _small_workload()
    engine = TERiDSEngine(repository=workload.repository,
                          config=_small_config(workload))
    try:
        engine.run(workload.interleaved_records())
        (rid, source), _ = engine.grid.synopsis_items()[0]
        default = engine.resolve(rid, source)
        narrowed = engine.resolve(rid, source,
                                  topic=frozenset({"zzz-unseen-keyword"}))
        assert narrowed.topic == frozenset({"zzz-unseen-keyword"})
        # Distinct signatures, distinct cache slots: repeating each is a hit.
        assert engine.resolve(rid, source) is default
        assert engine.resolve(
            rid, source, topic=frozenset({"zzz-unseen-keyword"})) is narrowed
        assert engine.ctx.query.cache_hits == 2
        assert engine.ctx.query.cache_misses == 2
    finally:
        engine.close()


def test_resolver_rejects_bad_cache_size():
    workload = _small_workload()
    engine = TERiDSEngine(repository=workload.repository,
                          config=_small_config(workload))
    try:
        with pytest.raises(ValueError, match="cache_size"):
            QueryResolver(engine.ctx, cache_size=0)
    finally:
        engine.close()


# ---------------------------------------------------------------------------
# Cache semantics: hits, LRU bound, region-targeted invalidation
# ---------------------------------------------------------------------------
def test_repeat_query_is_a_cache_hit_returning_the_same_object():
    workload = _small_workload()
    engine = TERiDSEngine(repository=workload.repository,
                          config=_small_config(workload))
    try:
        engine.run(workload.interleaved_records())
        (rid, source), _ = engine.grid.synopsis_items()[0]
        first = engine.resolve(rid, source)
        again = engine.resolve(rid, source)
        assert again is first
        stats = engine.ctx.query.as_dict()
        assert stats["resolves"] == 2
        assert stats["cache_hits"] == 1
        assert stats["cache_misses"] == 1
    finally:
        engine.close()


def test_cache_respects_the_lru_bound():
    workload = _small_workload()
    engine = TERiDSEngine(repository=workload.repository,
                          config=_small_config(workload))
    try:
        engine.run(workload.interleaved_records())
        resolver = QueryResolver(engine.ctx, cache_size=4)
        items = engine.grid.synopsis_items()
        assert len(items) > 4
        for (rid, source), _ in items:
            resolver.resolve(rid, source)
        assert len(resolver) == 4
        # The most recent queries are the retained ones.
        (rid, source), _ = items[-1]
        hits_before = engine.ctx.query.cache_hits
        resolver.resolve(rid, source)
        assert engine.ctx.query.cache_hits == hits_before + 1
    finally:
        engine.close()


def test_window_maintenance_invalidates_only_intersecting_entries():
    """Every entity's cached cluster stays correct across the whole run:
    stale entries are dropped by region, and whatever survives a batch is
    re-checked against the ground-truth closure (a stale serve would fail
    the bit-identity assertion)."""
    workload = _small_workload()
    engine = TERiDSEngine(repository=workload.repository,
                          config=_small_config(workload, window=10))
    try:
        records = list(workload.interleaved_records())
        engine.process_batch(records[:30])
        step = max(1, len(records[30:]) // 6)
        invalidations_seen = 0
        for start in range(30, len(records), step):
            # Warm the cache for everything in-window...
            for (rid, source), _ in engine.grid.synopsis_items():
                engine.resolve(rid, source)
            before = engine.ctx.query.cache_invalidations
            engine.process_batch(records[start:start + step])
            invalidations_seen += engine.ctx.query.cache_invalidations - before
            # ...then verify every post-maintenance answer (cached or
            # recomputed) against the eager closure.
            for (rid, source), _ in engine.grid.synopsis_items():
                assert_cluster_equals_closure(engine, rid, source)
        assert invalidations_seen > 0  # maintenance did hit cached regions
    finally:
        engine.close()


def test_member_expiry_drops_the_cached_cluster():
    workload = _small_workload()
    window = 10
    engine = TERiDSEngine(repository=workload.repository,
                          config=_small_config(workload, window=window))
    try:
        records = list(workload.interleaved_records())
        engine.process_batch(records[:2 * window])
        (rid, source), _ = engine.grid.synopsis_items()[0]  # oldest first
        engine.resolve(rid, source)
        # Push enough arrivals through the query's stream to expire it.
        engine.process_batch(records[2 * window:4 * window])
        assert not engine.grid.contains(rid, source)
        with pytest.raises(KeyError):
            engine.resolve(rid, source)
        assert engine.ctx.query.cache_invalidations > 0
    finally:
        engine.close()


def test_event_time_retraction_drops_the_cached_cluster():
    workload = _small_workload()
    engine = TERiDSEngine(repository=workload.repository,
                          config=_small_config(workload))
    try:
        engine.run(workload.interleaved_records())
        (rid, source), _ = engine.grid.synopsis_items()[0]
        cold = engine.resolve(rid, source)
        assert engine.resolve(rid, source) is cold

        class _Expired:
            def __init__(self, rid, source):
                self.rid = rid
                self.source = source

        before = engine.ctx.query.cache_invalidations
        engine.pipeline.maintenance.retract([_Expired(rid, source)])
        assert engine.ctx.query.cache_invalidations > before
        assert not engine.grid.contains(rid, source)
        with pytest.raises(KeyError):
            engine.resolve(rid, source)
        # Other entities still answer correctly after the retraction.
        for (other_rid, other_source), _ in engine.grid.synopsis_items()[:5]:
            assert_cluster_equals_closure(engine, other_rid, other_source)
    finally:
        engine.close()


def test_counters_and_pruning_stats_untouched_by_lookups():
    """Interactive lookups must not perturb the golden-pinned eager
    counters (grid examination counts, Figure-4 pruning stats)."""
    workload = _small_workload()
    engine = TERiDSEngine(repository=workload.repository,
                          config=_small_config(workload))
    try:
        engine.run(workload.interleaved_records())
        grid_before = (engine.grid.cells_examined,
                       engine.grid.tuples_examined)
        stats = engine.pruning.stats
        pruning_before = (stats.pairs_considered, stats.refined_matches,
                          stats.refined_non_matches)
        for (rid, source), _ in engine.grid.synopsis_items():
            engine.resolve(rid, source)
        assert (engine.grid.cells_examined,
                engine.grid.tuples_examined) == grid_before
        assert (stats.pairs_considered, stats.refined_matches,
                stats.refined_non_matches) == pruning_before
    finally:
        engine.close()


# ---------------------------------------------------------------------------
# Checkpoints: counters persist, cached clusters do not
# ---------------------------------------------------------------------------
def test_checkpoint_restores_query_stats_but_drops_the_cache():
    workload = _small_workload()
    config = _small_config(workload)
    engine = TERiDSEngine(repository=workload.repository, config=config)
    try:
        engine.run(workload.interleaved_records())
        for (rid, source), _ in engine.grid.synopsis_items()[:6]:
            engine.resolve(rid, source)
        expected = engine.ctx.query.as_dict()
        assert expected["resolves"] == 6
        state = json.loads(json.dumps(engine.checkpoint()))  # JSON-safe

        clone = TERiDSEngine(repository=workload.repository, config=config)
        try:
            clone.restore_checkpoint(state)
            assert clone.ctx.query.as_dict() == expected
            assert len(clone.resolver) == 0  # cache is scratch
            # Post-restore lookups are cold but still the exact closure.
            (rid, source), _ = clone.grid.synopsis_items()[0]
            assert_cluster_equals_closure(clone, rid, source)
        finally:
            clone.close()

        # Restoring into the *same* engine clears its warm cache too.
        assert len(engine.resolver) > 0
        engine.restore_checkpoint(state)
        assert len(engine.resolver) == 0
        assert engine.ctx.query.as_dict() == expected
    finally:
        engine.close()


# ---------------------------------------------------------------------------
# Batched resolution: resolve_many shares one expansion across queries
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("make_executor", EXECUTORS)
def test_resolve_many_is_bit_identical_to_per_seed_resolve(make_executor):
    workload = _small_workload()
    engine = TERiDSEngine(repository=workload.repository,
                          config=_small_config(workload),
                          executor=make_executor())
    try:
        engine.run(workload.interleaved_records())
        keys = [(rid, source)
                for (rid, source), _ in engine.grid.synopsis_items()]
        clusters = engine.resolve_many(keys)
        assert len(clusters) == len(keys)
        for (rid, source), cluster in zip(keys, clusters):
            assert (cluster.rid, cluster.source) == (rid, source)
            assert_cluster_equals_closure(engine, rid, source,
                                          cluster=cluster)
    finally:
        engine.close()


def test_resolve_many_shares_expansion_and_caches_per_seed():
    workload = _small_workload()
    engine = TERiDSEngine(repository=workload.repository,
                          config=_small_config(workload))
    try:
        engine.run(workload.interleaved_records())
        keys = [(rid, source)
                for (rid, source), _ in engine.grid.synopsis_items()]
        clusters = engine.resolve_many(keys)
        stats = engine.ctx.query.as_dict()
        # One frontier expansion per unique entity: the shared ``evaluated``
        # set means no neighbourhood is expanded twice across the batch.
        assert stats["frontier_expansions"] == len(keys)
        assert stats["cache_misses"] == len(keys)
        # Every seed landed in the cache: a per-seed resolve is now a hit
        # returning the identical cluster object.
        for (rid, source), cluster in zip(keys, clusters):
            assert engine.resolve(rid, source) is cluster
        assert engine.ctx.query.as_dict()["cache_hits"] == len(keys)
    finally:
        engine.close()


def test_resolve_many_mixes_hits_misses_and_duplicates():
    workload = _small_workload()
    engine = TERiDSEngine(repository=workload.repository,
                          config=_small_config(workload))
    try:
        engine.run(workload.interleaved_records())
        keys = [(rid, source)
                for (rid, source), _ in engine.grid.synopsis_items()]
        warm = engine.resolve(*keys[0])
        batch = [keys[0], keys[1], keys[0], keys[2]]
        clusters = engine.resolve_many(batch)
        assert clusters[0] is warm          # served from the cache
        assert clusters[2] is clusters[0]   # duplicate input, one lookup
        stats = engine.ctx.query.as_dict()
        assert stats["cache_hits"] == 1
        assert stats["cache_misses"] == 3   # keys[0] cold + keys[1] + keys[2]
        for (rid, source), cluster in zip(batch, clusters):
            assert_cluster_equals_closure(engine, rid, source,
                                          cluster=cluster)
    finally:
        engine.close()


def test_resolve_many_unknown_entity_raises_before_any_work():
    workload = _small_workload()
    engine = TERiDSEngine(repository=workload.repository,
                          config=_small_config(workload))
    try:
        engine.run(workload.interleaved_records())
        (rid, source), _ = engine.grid.synopsis_items()[0]
        before = engine.ctx.query.as_dict()
        with pytest.raises(KeyError):
            engine.resolve_many([(rid, source), ("ghost", "stream-a")])
        assert engine.ctx.query.as_dict() == before  # nothing was counted
    finally:
        engine.close()
