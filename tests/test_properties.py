"""Property-based tests (hypothesis) for the core invariants.

These cover the metric properties of the Jaccard distance, the soundness of
the similarity/probability bounds against brute force, the aR-tree range
query completeness and the imputed-record probability-mass invariant — the
invariants every pruning theorem of the paper silently relies on.
"""

from __future__ import annotations

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.matching import ter_ids_probability
from repro.core.pruning import (
    RecordSynopsis,
    probability_upper_bound,
    similarity_upper_bound,
)
from repro.core.similarity import (
    jaccard_distance,
    jaccard_similarity,
    record_similarity,
    tokenize,
)
from repro.core.tuples import ImputedRecord, Record, Schema
from repro.imputation.cdd import (
    CONSTRAINT_CONSTANT,
    CONSTRAINT_INTERVAL,
    CONSTRAINT_MISSING,
    AttributeConstraint,
    CDDRule,
)
from repro.imputation.imputer import combine_frequencies
from repro.imputation.incremental import widen_interval
from repro.imputation.repository import DataRepository
from repro.persistence import rule_from_dict, rule_to_dict
from repro.indexes.artree import ARTree, Rect
from repro.indexes.pivots import PivotSelectionConfig, select_pivots, shannon_entropy

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
WORDS = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
         "iota", "kappa", "fever", "cough", "diabetes", "flu", "thirst",
         "vision", "weight", "loss", "drug", "therapy"]

token_sets = st.frozensets(st.sampled_from(WORDS), max_size=8)
texts = st.lists(st.sampled_from(WORDS), min_size=0, max_size=8).map(" ".join)
nonempty_texts = st.lists(st.sampled_from(WORDS), min_size=1, max_size=8).map(" ".join)

SCHEMA = Schema(attributes=("x", "y"))


def _candidate_distributions():
    values = st.lists(st.sampled_from(WORDS), min_size=1, max_size=3).map(" ".join)
    return st.dictionaries(values, st.floats(0.05, 0.5), min_size=1, max_size=4).map(
        _normalise_distribution)


def _normalise_distribution(distribution):
    total = sum(distribution.values())
    if total > 1.0:
        return {value: probability / total
                for value, probability in distribution.items()}
    return distribution


# ---------------------------------------------------------------------------
# Jaccard similarity / distance
# ---------------------------------------------------------------------------
class TestJaccardProperties:
    @given(left=token_sets, right=token_sets)
    def test_similarity_in_unit_interval(self, left, right):
        assert 0.0 <= jaccard_similarity(left, right) <= 1.0

    @given(left=token_sets, right=token_sets)
    def test_symmetry(self, left, right):
        assert jaccard_similarity(left, right) == pytest.approx(
            jaccard_similarity(right, left))

    @given(tokens=token_sets)
    def test_identity(self, tokens):
        if tokens:
            assert jaccard_similarity(tokens, tokens) == 1.0
            assert jaccard_distance(tokens, tokens) == 0.0

    @given(a=token_sets, b=token_sets, c=token_sets)
    @settings(max_examples=200)
    def test_triangle_inequality(self, a, b, c):
        """Jaccard distance is a metric; Lemma 4.2 depends on this."""
        assert jaccard_distance(a, c) <= (
            jaccard_distance(a, b) + jaccard_distance(b, c) + 1e-9)

    @given(text=texts)
    def test_tokenize_idempotent_on_rendered_tokens(self, text):
        tokens = tokenize(text)
        assert tokenize(" ".join(sorted(tokens))) == tokens


# ---------------------------------------------------------------------------
# Record similarity
# ---------------------------------------------------------------------------
class TestRecordSimilarityProperties:
    @given(x1=texts, y1=texts, x2=texts, y2=texts)
    def test_bounded_by_dimensionality(self, x1, y1, x2, y2):
        left = Record(rid="l", values={"x": x1, "y": y1})
        right = Record(rid="r", values={"x": x2, "y": y2})
        score = record_similarity(left, right, SCHEMA)
        assert 0.0 <= score <= len(SCHEMA)

    @given(x=nonempty_texts, y=nonempty_texts)
    def test_self_similarity_is_dimensionality(self, x, y):
        record = Record(rid="r", values={"x": x, "y": y})
        assert record_similarity(record, record, SCHEMA) == pytest.approx(2.0)


# ---------------------------------------------------------------------------
# Imputed records
# ---------------------------------------------------------------------------
class TestImputedRecordProperties:
    @given(distribution=_candidate_distributions())
    def test_instance_mass_never_exceeds_one(self, distribution):
        record = Record(rid="r", values={"x": "alpha", "y": None})
        imputed = ImputedRecord(base=record, schema=SCHEMA,
                                candidates={"y": distribution})
        total = imputed.total_probability()
        assert total <= 1.0 + 1e-6
        assert total > 0.0

    @given(distribution_x=_candidate_distributions(),
           distribution_y=_candidate_distributions())
    def test_cross_product_mass(self, distribution_x, distribution_y):
        record = Record(rid="r", values={"x": None, "y": None})
        imputed = ImputedRecord(base=record, schema=SCHEMA,
                                candidates={"x": distribution_x,
                                            "y": distribution_y})
        expected = (sum(distribution_x.values()) * sum(distribution_y.values()))
        if len(distribution_x) * len(distribution_y) <= ImputedRecord.MAX_INSTANCES:
            assert imputed.total_probability() == pytest.approx(expected, rel=1e-6)
        else:
            assert imputed.total_probability() <= expected + 1e-9


# ---------------------------------------------------------------------------
# Pruning bound soundness
# ---------------------------------------------------------------------------
def _pivot_table():
    samples = [Record(rid=f"s{i}",
                      values={"x": WORDS[i % len(WORDS)],
                              "y": WORDS[(i * 3 + 1) % len(WORDS)]})
               for i in range(8)]
    repository = DataRepository(schema=SCHEMA, samples=samples)
    return select_pivots(repository, PivotSelectionConfig(buckets=4,
                                                          min_entropy=0.2,
                                                          max_pivots=2))


PIVOTS = _pivot_table()
KEYWORDS = frozenset({"diabetes"})


def _build_synopsis(rid, x, y_distribution, source):
    candidates = {}
    y_value = None
    if isinstance(y_distribution, str):
        y_value = y_distribution
    else:
        candidates = {"y": y_distribution}
    record = Record(rid=rid, values={"x": x, "y": y_value}, source=source)
    imputed = ImputedRecord(base=record, schema=SCHEMA, candidates=candidates)
    return RecordSynopsis.build(imputed, PIVOTS, KEYWORDS)


y_specs = st.one_of(nonempty_texts, _candidate_distributions())


class TestBoundSoundnessProperties:
    @given(x1=nonempty_texts, y1=y_specs, x2=nonempty_texts, y2=y_specs)
    @settings(max_examples=120, deadline=None)
    def test_similarity_upper_bound_dominates_all_instances(self, x1, y1, x2, y2):
        left = _build_synopsis("l", x1, y1, "s1")
        right = _build_synopsis("r", x2, y2, "s2")
        bound = similarity_upper_bound(left, right)
        for left_instance in left.record.instances():
            for right_instance in right.record.instances():
                actual = record_similarity(left_instance.record,
                                           right_instance.record, SCHEMA)
                assert actual <= bound + 1e-9

    @given(x1=nonempty_texts, y1=y_specs, x2=nonempty_texts, y2=y_specs,
           gamma_ratio=st.floats(0.25, 0.9))
    @settings(max_examples=120, deadline=None)
    def test_probability_upper_bound_dominates_exact(self, x1, y1, x2, y2,
                                                     gamma_ratio):
        left = _build_synopsis("l", x1, y1, "s1")
        right = _build_synopsis("r", x2, y2, "s2")
        gamma = gamma_ratio * len(SCHEMA)
        bound = probability_upper_bound(left, right, gamma)
        exact = ter_ids_probability(left.record, right.record, frozenset(), gamma)
        assert exact <= bound + 1e-9


# ---------------------------------------------------------------------------
# aR-tree completeness
# ---------------------------------------------------------------------------
class TestARTreeProperties:
    @given(points=st.lists(st.tuples(st.floats(0, 1), st.floats(0, 1)),
                           min_size=1, max_size=60),
           query=st.tuples(st.floats(0, 1), st.floats(0, 1),
                           st.floats(0, 1), st.floats(0, 1)))
    @settings(max_examples=80, deadline=None)
    def test_range_search_completeness(self, points, query):
        x1, x2, y1, y2 = query
        rect = Rect.from_intervals([(min(x1, x2), max(x1, x2)),
                                    (min(y1, y2), max(y1, y2))])
        tree = ARTree(dimensions=2, max_entries=4)
        for index, point in enumerate(points):
            tree.insert_point(point, payload=(index, point))
        found = {entry.payload for entry in tree.range_search(rect)}
        expected = {(index, point) for index, point in enumerate(points)
                    if rect.contains_point(point)}
        assert found == expected


# ---------------------------------------------------------------------------
# CDD rule invariants (incremental maintenance, Section 5.5)
# ---------------------------------------------------------------------------
RULE_SCHEMA = Schema(attributes=("a", "b", "c"))


def _sub_intervals():
    """Valid ``[low, high]`` distance intervals with ``low < high``."""
    return st.tuples(st.floats(0.0, 0.8), st.floats(0.05, 0.2)).map(
        lambda pair: (round(pair[0], 3),
                      round(min(1.0, pair[0] + pair[1]), 3)))


def _dependent_intervals():
    """Valid dependent intervals (``low <= high`` is allowed)."""
    return st.tuples(st.floats(0.0, 1.0), st.floats(0.0, 1.0)).map(
        lambda pair: (round(min(pair), 3), round(max(pair), 3)))


def _constraints(attribute):
    interval = _sub_intervals().map(
        lambda band: AttributeConstraint(attribute=attribute,
                                         kind=CONSTRAINT_INTERVAL,
                                         interval=band))
    constant = st.sampled_from(WORDS).map(
        lambda value: AttributeConstraint(attribute=attribute,
                                          kind=CONSTRAINT_CONSTANT,
                                          constant=value))
    missing = st.just(AttributeConstraint(attribute=attribute,
                                          kind=CONSTRAINT_MISSING))
    return st.one_of(interval, constant, missing)


def _cdd_rules():
    attributes = list(RULE_SCHEMA)

    def for_dependent(dependent_index):
        dependent = attributes[dependent_index]
        others = [name for name in attributes if name != dependent]
        return st.builds(
            lambda first, second, mask, interval, support: CDDRule(
                determinants=(tuple(constraint for constraint, keep
                                    in zip((first, second), mask) if keep)
                              or (first,)),
                dependent=dependent,
                dependent_interval=interval,
                support=support,
                rule_id="prop-rule"),
            first=_constraints(others[0]),
            second=_constraints(others[1]),
            mask=st.tuples(st.booleans(), st.booleans()),
            interval=_dependent_intervals(),
            support=st.integers(0, 20),
        )

    return st.integers(0, len(attributes) - 1).flatmap(for_dependent)


def _rule_records():
    values = st.one_of(st.none(), texts)
    return st.builds(
        lambda a, b, c, source: Record(rid=f"{source}-r",
                                       values={"a": a, "b": b, "c": c},
                                       source=source),
        a=values, b=values, c=values, source=st.sampled_from(["s1", "s2"]))


class TestWidenIntervalProperties:
    @given(interval=_dependent_intervals(), distance=st.floats(0.0, 1.0),
           max_width=st.floats(0.1, 1.0))
    def test_widening_is_monotone_and_absorbing(self, interval, distance,
                                                max_width):
        """A supporting sample only ever *grows* the interval around itself."""
        widened = widen_interval(interval, distance, max_width)
        low, high = interval
        if widened is None:
            # Refused only when absorbing the distance must exceed the cap.
            assert max(high, distance) - min(low, distance) > max_width
            return
        new_low, new_high = widened
        assert new_low <= low + 1e-9
        assert new_high >= high - 1e-9
        assert new_low - 1e-9 <= distance <= new_high + 1e-9
        assert 0.0 <= new_low <= new_high <= 1.0

    @given(interval=_dependent_intervals(), distance=st.floats(0.0, 1.0),
           max_width=st.floats(0.1, 1.0))
    def test_widening_is_idempotent(self, interval, distance, max_width):
        widened = widen_interval(interval, distance, max_width)
        if widened is not None:
            assert widen_interval(widened, distance, max_width) == widened


class TestCDDRuleProperties:
    @given(rule=_cdd_rules(), left=_rule_records(), right=_rule_records(),
           distance=st.floats(0.0, 1.0))
    @settings(max_examples=150, deadline=None)
    def test_widening_never_flips_satisfied_to_violated(self, rule, left,
                                                        right, distance):
        """Interval maintenance is monotone for ``holds_for``.

        Absorbing a new supporting sample widens the dependent interval;
        every pair that satisfied the rule before the update must still
        satisfy the maintained rule.  (The converse flip — violated to
        satisfied — is allowed precisely *because* the repository changed.)
        """
        widened = widen_interval(rule.dependent_interval, distance, 1.0)
        assert widened is not None  # cap 1.0 can always absorb
        maintained = CDDRule(determinants=rule.determinants,
                             dependent=rule.dependent,
                             dependent_interval=widened,
                             support=rule.support + 1,
                             rule_id=rule.rule_id)
        if rule.holds_for(left, right):
            assert maintained.holds_for(left, right)

    @given(rule=_cdd_rules(), left=_rule_records(), right=_rule_records())
    @settings(max_examples=150, deadline=None)
    def test_holds_for_invariant_without_repository_change(self, rule, left,
                                                           right):
        """No repository change, no verdict change.

        Operations that do not absorb new samples — serialisation
        round-trips of the kind the checkpoint performs — must preserve the
        ``holds_for`` verdict of every pair bit for bit: a pair may never
        flip from violated to satisfied without a repository change.
        """
        round_tripped = rule_from_dict(rule_to_dict(rule))
        assert round_tripped == rule
        assert (round_tripped.holds_for(left, right)
                == rule.holds_for(left, right))
class TestMiscellaneousProperties:
    @given(frequency_maps=st.lists(
        st.dictionaries(st.sampled_from(WORDS), st.integers(1, 5), max_size=4),
        max_size=4))
    def test_combined_frequencies_are_a_distribution(self, frequency_maps):
        combined = combine_frequencies(frequency_maps)
        if combined:
            assert sum(combined.values()) == pytest.approx(1.0)
            assert all(probability > 0 for probability in combined.values())
        else:
            assert all(not frequencies for frequencies in frequency_maps)

    @given(distances=st.lists(st.floats(0, 1), max_size=50),
           buckets=st.integers(2, 20))
    def test_entropy_bounds(self, distances, buckets):
        import math

        entropy = shannon_entropy(distances, buckets)
        assert 0.0 <= entropy <= math.log(buckets) + 1e-9
