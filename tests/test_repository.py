"""Unit tests for the complete data repository R."""

import pytest

from repro.core.tuples import Record, Schema
from repro.imputation.repository import DataRepository, RepositoryError

SCHEMA = Schema(attributes=("x", "y"))


def _sample(rid, x, y):
    return Record(rid=rid, values={"x": x, "y": y}, source="repository")


class TestRepositoryConstruction:
    def test_len_and_iter(self):
        repository = DataRepository(schema=SCHEMA,
                                    samples=[_sample("s0", "a", "b"),
                                             _sample("s1", "c", "d")])
        assert len(repository) == 2
        assert [sample.rid for sample in repository] == ["s0", "s1"]

    def test_incomplete_sample_rejected(self):
        with pytest.raises(RepositoryError):
            DataRepository(schema=SCHEMA,
                           samples=[Record(rid="s0", values={"x": "a", "y": None})])

    def test_from_records_drops_incomplete(self):
        records = [_sample("s0", "a", "b"),
                   Record(rid="s1", values={"x": "a", "y": None})]
        repository = DataRepository.from_records(records, SCHEMA)
        assert len(repository) == 1

    def test_from_records_strict_mode(self):
        records = [Record(rid="s1", values={"x": "a", "y": None})]
        with pytest.raises(RepositoryError):
            DataRepository.from_records(records, SCHEMA, drop_incomplete=False)


class TestDomains:
    def test_domain_values_deduplicated(self):
        repository = DataRepository(schema=SCHEMA,
                                    samples=[_sample("s0", "a", "b"),
                                             _sample("s1", "a", "c")])
        assert repository.domain("x") == ["a"]
        assert sorted(repository.domain("y")) == ["b", "c"]
        assert repository.domain_size("x") == 1

    def test_domain_unknown_attribute(self):
        repository = DataRepository(schema=SCHEMA, samples=[])
        with pytest.raises(RepositoryError):
            repository.domain("unknown")

    def test_values_keep_repetitions(self):
        repository = DataRepository(schema=SCHEMA,
                                    samples=[_sample("s0", "a", "b"),
                                             _sample("s1", "a", "c")])
        assert repository.values("x") == ["a", "a"]

    def test_token_vocabulary(self):
        repository = DataRepository(schema=SCHEMA,
                                    samples=[_sample("s0", "alpha beta", "gamma")])
        assert repository.token_vocabulary("x") == {"alpha", "beta"}
        assert repository.token_vocabulary() == {"alpha", "beta", "gamma"}


class TestRepositoryQueries:
    def test_nearest_values_ranked_by_distance(self):
        repository = DataRepository(
            schema=SCHEMA,
            samples=[_sample("s0", "query index", "a"),
                     _sample("s1", "query join", "b"),
                     _sample("s2", "totally unrelated", "c")])
        nearest = repository.nearest_values("x", "query index tuning", limit=2)
        assert nearest[0] == "query index"
        assert "totally unrelated" not in nearest

    def test_sample_by_rid(self):
        repository = DataRepository(schema=SCHEMA, samples=[_sample("s0", "a", "b")])
        assert repository.sample_by_rid("s0").rid == "s0"
        assert repository.sample_by_rid("missing") is None

    def test_add_sample_updates_domains(self):
        repository = DataRepository(schema=SCHEMA, samples=[_sample("s0", "a", "b")])
        repository.add_sample(_sample("s1", "z", "b"))
        assert "z" in repository.domain("x")
        assert len(repository) == 2

    def test_extend(self):
        repository = DataRepository(schema=SCHEMA, samples=[])
        repository.extend([_sample("s0", "a", "b"), _sample("s1", "c", "d")])
        assert len(repository) == 2


class TestDomainCacheInvalidation:
    """Regression: domain caches must be rebuilt whenever samples are reset.

    ``dataclasses.replace`` (and any construction handing over pre-populated
    caches) used to merge the re-added samples into the *source* repository's
    domain dicts, so ``domain_size`` over-counted — and stayed wrong after
    every subsequent ``extend``.
    """

    def _base(self, count=10):
        samples = [_sample(f"s{i}", f"x{i}", f"y{i}") for i in range(count)]
        return DataRepository(schema=SCHEMA, samples=samples), samples

    def test_replace_rebuilds_domains(self):
        import dataclasses

        repository, samples = self._base()
        narrowed = dataclasses.replace(repository, samples=samples[:2])
        assert len(narrowed) == 2
        assert narrowed.domain_size("x") == 2
        assert sorted(narrowed.domain("x")) == ["x0", "x1"]
        # The source repository's caches must be untouched.
        assert repository.domain_size("x") == 10

    def test_domain_size_correct_after_extend_on_subset(self):
        repository, _ = self._base()
        subset = repository.subset(0.5)
        distinct_before = {sample["x"] for sample in subset.samples}
        assert subset.domain_size("x") == len(distinct_before)
        subset.extend([_sample("n0", "brand new", "value"),
                       _sample("n1", "brand new", "other")])
        assert subset.domain_size("x") == len(distinct_before) + 1
        assert subset.domain_size("y") == len(distinct_before) + 2
        # The parent repository must not observe the subset's extension.
        assert repository.domain_size("x") == 10
        assert len(repository) == 10

    def test_extend_deduplicates_against_existing_domain(self):
        repository, _ = self._base(3)
        repository.extend([_sample("n0", "x0", "y0")])
        assert len(repository) == 4
        assert repository.domain_size("x") == 3
        assert repository.domain_size("y") == 3


class TestSubset:
    def test_subset_fraction(self):
        samples = [_sample(f"s{i}", f"x{i}", f"y{i}") for i in range(10)]
        repository = DataRepository(schema=SCHEMA, samples=samples)
        half = repository.subset(0.5)
        assert 1 <= len(half) <= 10
        assert all(sample in samples for sample in half.samples)

    def test_subset_full(self):
        samples = [_sample(f"s{i}", f"x{i}", f"y{i}") for i in range(4)]
        repository = DataRepository(schema=SCHEMA, samples=samples)
        assert len(repository.subset(1.0)) == 4

    def test_subset_invalid_fraction(self):
        repository = DataRepository(schema=SCHEMA, samples=[_sample("s0", "a", "b")])
        with pytest.raises(RepositoryError):
            repository.subset(0.0)
        with pytest.raises(RepositoryError):
            repository.subset(1.5)
