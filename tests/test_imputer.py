"""Unit tests for the CDD imputer (Equations (3) and (4))."""

import pytest

from repro.core.tuples import Record, Schema
from repro.imputation.cdd import (
    CONSTRAINT_CONSTANT,
    CONSTRAINT_INTERVAL,
    AttributeConstraint,
    CDDRule,
    discover_cdd_rules,
)
from repro.imputation.imputer import (
    CDDImputer,
    ImputationStats,
    SingleCDDImputer,
    candidate_set_for_sample,
    combine_frequencies,
    make_dd_imputer,
)
from repro.imputation.dd import discover_dd_rules
from repro.imputation.repository import DataRepository

# ---------------------------------------------------------------------------
# The paper's Example 3/4 repository (Table 2) rendered as textual values:
# numeric attribute values are encoded as token strings so the Jaccard
# distance reproduces equality/inequality structure.
# ---------------------------------------------------------------------------
ABC = Schema(attributes=("a", "b", "c"))


def _abc_repository():
    rows = [
        ("a1 group", "b level two", "c level one"),
        ("a1 group", "b level three", "c level two"),
        ("a1 group", "b level five", "c level four"),
        ("a2 group", "b level seven", "c level seven"),
    ]
    samples = [Record(rid=f"s{index}", values={"a": a, "b": b, "c": c},
                      source="repository")
               for index, (a, b, c) in enumerate(rows)]
    return DataRepository(schema=ABC, samples=samples)


class TestHelpers:
    def test_candidate_set_for_sample_filters_by_interval(self):
        domain = ["diabetes", "diabetes type two", "flu", "conjunctivitis"]
        candidates = candidate_set_for_sample("diabetes", domain, (0.0, 0.4))
        assert "diabetes" in candidates
        assert "flu" not in candidates

    def test_candidate_set_respects_cap(self):
        domain = [f"value {i}" for i in range(100)]
        candidates = candidate_set_for_sample("value 0", domain, (0.0, 1.0),
                                              max_candidates=10)
        assert len(candidates) == 10

    def test_combine_frequencies_example4(self):
        # Example 4: F1 = {0.1: 2, 0.2: 2}, F2 = {0.2: 1, 0.35: 1}
        combined = combine_frequencies([{"v01": 2, "v02": 2},
                                        {"v02": 1, "v035": 1}])
        assert combined["v01"] == pytest.approx(2 / 6)
        assert combined["v02"] == pytest.approx(3 / 6)
        assert combined["v035"] == pytest.approx(1 / 6)

    def test_combine_frequencies_empty(self):
        assert combine_frequencies([]) == {}
        assert combine_frequencies([{}]) == {}

    def test_stats_merge_and_dict(self):
        left = ImputationStats(records_imputed=1, samples_scanned=5)
        right = ImputationStats(records_imputed=2, samples_scanned=7,
                                candidate_values=3)
        left.merge(right)
        assert left.records_imputed == 3
        assert left.samples_scanned == 12
        assert left.as_dict()["candidate_values"] == 3


class TestCDDImputer:
    def test_impute_missing_diagnosis(self, health_repository, health_schema,
                                      incomplete_health_record):
        rules = discover_cdd_rules(health_repository)
        imputer = CDDImputer(repository=health_repository, rules=rules)
        imputed = imputer.impute(incomplete_health_record)
        assert "diagnosis" in imputed.candidates
        distribution = imputed.candidates["diagnosis"]
        assert sum(distribution.values()) == pytest.approx(1.0)
        # "diabetes" should dominate: the present attributes point to the
        # diabetes samples of the repository.
        top_value = max(distribution, key=distribution.get)
        assert "diabetes" in top_value

    def test_impute_complete_record_is_trivial(self, health_repository):
        rules = discover_cdd_rules(health_repository)
        imputer = CDDImputer(repository=health_repository, rules=rules)
        complete = health_repository.sample_by_rid("s0")
        imputed = imputer.impute(complete)
        assert imputed.is_trivial()

    def test_unimputable_attribute_left_missing(self, health_repository,
                                                health_schema):
        rules = discover_cdd_rules(health_repository)
        imputer = CDDImputer(repository=health_repository, rules=rules)
        record = Record(rid="r", values={"gender": None, "symptom": None,
                                         "diagnosis": None, "treatment": None})
        imputed = imputer.impute(record)
        # With every determinant missing no rule is applicable.
        assert imputed.candidates == {}
        assert imputer.stats.attributes_unimputable >= 4

    def test_stats_are_accumulated(self, health_repository,
                                   incomplete_health_record):
        rules = discover_cdd_rules(health_repository)
        imputer = CDDImputer(repository=health_repository, rules=rules)
        imputer.impute(incomplete_health_record)
        assert imputer.stats.records_imputed == 1
        assert imputer.stats.rules_considered > 0
        assert imputer.stats.samples_scanned > 0

    def test_rules_for_prefers_tight_rules(self, health_repository,
                                           incomplete_health_record):
        rules = discover_cdd_rules(health_repository)
        imputer = CDDImputer(repository=health_repository, rules=rules,
                             max_rules_per_attribute=5)
        chosen = imputer.rules_for(incomplete_health_record, "diagnosis")
        assert len(chosen) <= 5
        widths = [rule.dependent_width for rule in chosen]
        assert widths == sorted(widths)

    def test_sample_retriever_hook_is_used(self, health_repository,
                                           incomplete_health_record):
        rules = discover_cdd_rules(health_repository)
        calls = []

        def retriever(record, rule):
            calls.append(rule)
            return health_repository.samples

        imputer = CDDImputer(repository=health_repository, rules=rules,
                             sample_retriever=retriever)
        imputer.impute(incomplete_health_record)
        assert calls, "the pluggable sample retriever should have been invoked"

    def test_example3_single_rule_imputation(self):
        """Example 3 of the paper: rule AB -> C on the Table 2 repository."""
        repository = _abc_repository()
        rule = CDDRule(
            determinants=(
                AttributeConstraint(attribute="a", kind=CONSTRAINT_CONSTANT,
                                    constant="a1 group"),
                AttributeConstraint(attribute="b", kind=CONSTRAINT_INTERVAL,
                                    interval=(0.0, 0.5)),
            ),
            dependent="c",
            dependent_interval=(0.0, 0.4),
        )
        record = Record(rid="r", values={"a": "a1 group", "b": "b level three",
                                         "c": None})
        imputer = CDDImputer(repository=repository, rules=[rule])
        distribution = imputer.candidate_distribution(record, "c")
        assert distribution, "samples s1/s2 should suggest candidate values"
        assert sum(distribution.values()) == pytest.approx(1.0)
        # The far-away a2 sample's value must not be suggested.
        assert "c level seven" not in distribution

    def test_multi_rule_weighting(self):
        """Eq. (4): values suggested by more rules receive more mass."""
        repository = _abc_repository()
        rule1 = CDDRule(
            determinants=(AttributeConstraint(attribute="a",
                                              kind=CONSTRAINT_CONSTANT,
                                              constant="a1 group"),),
            dependent="c", dependent_interval=(0.0, 0.3))
        rule2 = CDDRule(
            determinants=(AttributeConstraint(attribute="b",
                                              kind=CONSTRAINT_INTERVAL,
                                              interval=(0.0, 0.5)),),
            dependent="c", dependent_interval=(0.0, 0.3))
        record = Record(rid="r", values={"a": "a1 group", "b": "b level three",
                                         "c": None})
        multi = CDDImputer(repository=repository, rules=[rule1, rule2])
        multi_dist = multi.candidate_distribution(record, "c")
        single = CDDImputer(repository=repository, rules=[rule1])
        single_dist = single.candidate_distribution(record, "c")
        assert multi_dist
        assert single_dist
        assert sum(multi_dist.values()) == pytest.approx(1.0)


class TestSingleCDDImputer:
    def test_single_rule_strategy_uses_first_applicable_rule(self, health_repository,
                                                             incomplete_health_record):
        rules = discover_cdd_rules(health_repository)
        imputer = SingleCDDImputer(repository=health_repository, rules=rules)
        distribution = imputer.candidate_distribution(incomplete_health_record,
                                                      "diagnosis")
        assert distribution
        assert imputer.stats.rules_applied == 1

    def test_single_rule_returns_empty_when_nothing_applies(self, health_repository):
        imputer = SingleCDDImputer(repository=health_repository, rules=[])
        record = Record(rid="r", values={"gender": "male", "symptom": "x",
                                         "diagnosis": None, "treatment": "y"})
        assert imputer.candidate_distribution(record, "diagnosis") == {}


class TestDDImputerFactory:
    def test_make_dd_imputer(self, health_repository, incomplete_health_record):
        rules = discover_dd_rules(health_repository)
        imputer = make_dd_imputer(health_repository, rules)
        assert isinstance(imputer, CDDImputer)
        imputed = imputer.impute(incomplete_health_record)
        # DD rules are looser, so they should still find candidates here.
        assert imputed.candidates.get("diagnosis")

    def test_dd_imputer_retrieves_at_least_as_many_samples(self, health_repository,
                                                           incomplete_health_record):
        """DD's looser constraints match at least as many samples as CDD's."""
        cdd_imputer = CDDImputer(repository=health_repository,
                                 rules=discover_cdd_rules(health_repository))
        dd_imputer = make_dd_imputer(health_repository,
                                     discover_dd_rules(health_repository))
        cdd_imputer.impute(incomplete_health_record)
        dd_imputer.impute(incomplete_health_record)
        assert dd_imputer.stats.samples_matched >= 0
        assert cdd_imputer.stats.samples_matched >= 0
