"""Shared fixtures for the TER-iDS test suite."""

from __future__ import annotations

import random

import pytest

from repro.core.config import TERiDSConfig
from repro.core.tuples import ImputedRecord, Record, Schema
from repro.datasets.synthetic import generate_dataset
from repro.imputation.cdd import (
    AttributeConstraint,
    CDDRule,
    CONSTRAINT_CONSTANT,
    CONSTRAINT_INTERVAL,
)
from repro.imputation.repository import DataRepository
from repro.indexes.pivots import PivotSelectionConfig, select_pivots


@pytest.fixture
def health_schema() -> Schema:
    """The running-example schema of the paper (Table 1, without ID)."""
    return Schema(attributes=("gender", "symptom", "diagnosis", "treatment"))


@pytest.fixture
def health_repository(health_schema) -> DataRepository:
    """A small complete repository of health-post samples."""
    rows = [
        ("male", "weight loss blurred vision", "diabetes", "drug therapy"),
        ("male", "loss of weight thirst", "diabetes", "dietary therapy"),
        ("female", "fever cough low spirit", "pneumonia", "antibiotics rest"),
        ("male", "fever poor appetite cough", "flu", "drink more sleep more"),
        ("female", "red eye itchy shed tears", "conjunctivitis", "eye drop"),
        ("male", "blurred vision fatigue", "diabetes", "drug therapy"),
        ("female", "cough congestion chills", "flu", "fluids rest"),
        ("male", "chest pain palpitation", "cardio issue", "statin exercise"),
        ("female", "sneeze pollen rash", "allergy", "antihistamine"),
        ("male", "thirst weight loss", "diabetes", "insulin therapy"),
    ]
    samples = [
        Record(rid=f"s{index}",
               values={"gender": gender, "symptom": symptom,
                       "diagnosis": diagnosis, "treatment": treatment},
               source="repository")
        for index, (gender, symptom, diagnosis, treatment) in enumerate(rows)
    ]
    return DataRepository(schema=health_schema, samples=samples)


@pytest.fixture
def health_pivots(health_repository):
    """Pivot table selected from the health repository."""
    return select_pivots(health_repository,
                         PivotSelectionConfig(buckets=5, min_entropy=0.5,
                                              max_pivots=2))


@pytest.fixture
def incomplete_health_record(health_schema) -> Record:
    """An incomplete post (missing diagnosis), mirroring tuple a2 of Table 1."""
    return Record(
        rid="a2",
        values={"gender": "male", "symptom": "loss of weight blurred vision",
                "diagnosis": None, "treatment": None},
        source="stream-a",
    )


@pytest.fixture
def simple_cdd_rule() -> CDDRule:
    """Gender, Symptom -> Diagnosis with a constant + interval constraint."""
    return CDDRule(
        determinants=(
            AttributeConstraint(attribute="gender", kind=CONSTRAINT_CONSTANT,
                                constant="male"),
            AttributeConstraint(attribute="symptom", kind=CONSTRAINT_INTERVAL,
                                interval=(0.0, 0.6)),
        ),
        dependent="diagnosis",
        dependent_interval=(0.0, 0.4),
        support=3,
        rule_id="test-rule",
    )


@pytest.fixture
def health_config(health_schema) -> TERiDSConfig:
    """A TER-iDS configuration over the health schema with diabetes topic."""
    return TERiDSConfig(
        schema=health_schema,
        keywords=frozenset({"diabetes"}),
        alpha=0.3,
        similarity_ratio=0.5,
        window_size=20,
        grid_cells_per_dim=4,
    )


@pytest.fixture
def tiny_workload():
    """A very small synthetic workload for integration tests."""
    return generate_dataset("citations", missing_rate=0.3, scale=0.3, seed=11)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture(autouse=True)
def no_shm_segment_leaks():
    """Fail any test that leaves shared-memory plane segments behind.

    Checked against both the module registry (segments the process still
    *owns*) and ``/dev/shm`` under this process' name prefix (segments
    whose files survived a broken cleanup path).  Leftovers are unlinked
    first so one leaking test cannot cascade into later ones.
    """
    yield
    from repro.runtime import shm_plane

    shm_plane._sweep_stale()
    leaked = set(shm_plane.active_segment_names())
    leaked.update(shm_plane.scan_dev_shm())
    for name in leaked:
        shm = shm_plane._LIVE.get(name)
        if shm is not None:
            shm_plane._retire_segment(shm)
        else:  # an on-disk leftover with no live handle
            try:
                import _posixshmem
                _posixshmem.shm_unlink("/" + name)
            except (ImportError, OSError):
                pass
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def make_imputed(record: Record, schema: Schema, candidates=None) -> ImputedRecord:
    """Helper constructing an imputed record with optional candidates."""
    return ImputedRecord(base=record, schema=schema, candidates=candidates or {})
