"""End-to-end integration tests on generated workloads.

These exercise the whole pipeline — dataset generation, rule mining, index
construction, streaming, pruning, refinement, accuracy evaluation — exactly
the way the benchmark harness does, and assert the qualitative claims of the
paper's evaluation (Section 6) at reduced scale:

* TER-iDS reaches a high topic-aware F-score;
* TER-iDS and the CDD-based baselines report the same answer set (the
  indexes and pruning never change the semantics);
* TER-iDS is not slower than the index-free CDD+ER baseline;
* the pruning strategies eliminate a large share of the candidate pairs.
"""

import pytest

from repro.baselines.pipelines import (
    METHOD_CDD_ER,
    METHOD_CON_ER,
    METHOD_DD_ER,
    METHOD_IJ_GER,
    METHOD_TER_IDS,
)
from repro.experiments.harness import default_config, make_workload, run_method


@pytest.fixture(scope="module")
def workload():
    return make_workload("citations", missing_rate=0.3, scale=0.6, seed=7)


@pytest.fixture(scope="module")
def config(workload):
    return default_config(workload, window_size=40)


@pytest.fixture(scope="module")
def ter_ids_result(workload, config):
    return run_method(METHOD_TER_IDS, workload, config)


class TestEndToEndQuality:
    def test_ter_ids_reaches_high_fscore(self, ter_ids_result):
        assert ter_ids_result.f_score >= 0.7

    def test_ter_ids_precision_high(self, ter_ids_result):
        assert ter_ids_result.accuracy.precision >= 0.8

    def test_reported_pairs_are_cross_stream_and_topical(self, workload,
                                                         ter_ids_result):
        for pair in ter_ids_result.matches:
            assert pair.left_source != pair.right_source

    def test_pruning_removes_many_pairs(self, ter_ids_result):
        assert ter_ids_result.pruning_power["total"] >= 0.4
        assert ter_ids_result.pruning_power["topic_keyword"] > 0

    def test_breakup_cost_reported(self, ter_ids_result):
        assert set(ter_ids_result.breakup) == {"cdd_selection", "imputation",
                                               "entity_resolution"}
        assert ter_ids_result.breakup["entity_resolution"] > 0


class TestMethodAgreement:
    def test_ter_ids_matches_cdd_er_answers(self, workload, config,
                                            ter_ids_result):
        """Same imputation method + same thresholds => same answer set."""
        baseline = run_method(METHOD_CDD_ER, workload, config)
        ter_keys = {pair.key() for pair in ter_ids_result.matches}
        cdd_keys = {pair.key() for pair in baseline.matches}
        assert ter_keys == cdd_keys

    def test_ter_ids_matches_ij_ger_answers(self, workload, config,
                                            ter_ids_result):
        baseline = run_method(METHOD_IJ_GER, workload, config)
        assert ({pair.key() for pair in ter_ids_result.matches}
                == {pair.key() for pair in baseline.matches})

    def test_accuracy_ordering_ter_ids_not_worse_than_con(self, workload, config,
                                                          ter_ids_result):
        """Figure 5(a): CDD-based TER-iDS beats the constraint-based baseline."""
        con = run_method(METHOD_CON_ER, workload, config)
        assert ter_ids_result.f_score >= con.f_score - 1e-9

    def test_dd_baseline_runs_and_reports(self, workload, config):
        dd = run_method(METHOD_DD_ER, workload, config)
        assert dd.timestamps_processed == workload.total_stream_size()
        assert 0.0 <= dd.f_score <= 1.0


class TestEfficiencyOrdering:
    def test_ter_ids_faster_than_cdd_er(self, workload, config, ter_ids_result):
        """Figure 5(b): the index join beats the index-free CDD+ER baseline."""
        cdd = run_method(METHOD_CDD_ER, workload, config)
        assert (ter_ids_result.mean_seconds_per_timestamp
                <= cdd.mean_seconds_per_timestamp * 1.5)

    def test_all_timestamps_processed(self, workload, ter_ids_result):
        assert ter_ids_result.timestamps_processed == workload.total_stream_size()


class TestParameterEffects:
    def test_larger_alpha_does_not_increase_matches(self, workload):
        low = run_method(METHOD_TER_IDS, workload,
                         default_config(workload, window_size=40, alpha=0.1))
        high = run_method(METHOD_TER_IDS, workload,
                          default_config(workload, window_size=40, alpha=0.9))
        assert len(high.matches) <= len(low.matches)

    def test_larger_gamma_does_not_increase_matches(self, workload):
        loose = run_method(METHOD_TER_IDS, workload,
                           default_config(workload, window_size=40, rho=0.3))
        strict = run_method(METHOD_TER_IDS, workload,
                            default_config(workload, window_size=40, rho=0.7))
        assert len(strict.matches) <= len(loose.matches)

    def test_topic_free_query_returns_superset(self, workload, config,
                                               ter_ids_result):
        """With K = all keywords (empty set) every topical match still appears."""
        topic_free_config = config.with_keywords([])
        topic_free = run_method(METHOD_TER_IDS, workload, topic_free_config)
        topical_keys = {pair.key() for pair in ter_ids_result.matches}
        free_keys = {pair.key() for pair in topic_free.matches}
        assert topical_keys <= free_keys

    def test_higher_missing_rate_lowers_or_keeps_fscore(self):
        low_missing = make_workload("citations", missing_rate=0.1, scale=0.6,
                                    seed=7)
        high_missing = make_workload("citations", missing_rate=0.8, scale=0.6,
                                     seed=7)
        low_result = run_method(METHOD_TER_IDS, low_missing,
                                default_config(low_missing, window_size=40))
        high_result = run_method(METHOD_TER_IDS, high_missing,
                                 default_config(high_missing, window_size=40))
        assert high_result.f_score <= low_result.f_score + 0.1
