"""Unit tests for CDD rules and CDD discovery (Definition 3, Section 3)."""

import pytest

from repro.core.tuples import Record, Schema
from repro.imputation.cdd import (
    CONSTRAINT_CONSTANT,
    CONSTRAINT_INTERVAL,
    CONSTRAINT_MISSING,
    AttributeConstraint,
    CDDDiscoveryConfig,
    CDDRule,
    RuleError,
    discover_cdd_rules,
    group_rules_by_dependent,
    rules_for_attribute,
)
from repro.imputation.repository import DataRepository


class TestAttributeConstraint:
    def test_interval_constraint_satisfied(self):
        constraint = AttributeConstraint(attribute="x", kind=CONSTRAINT_INTERVAL,
                                         interval=(0.0, 0.5))
        assert constraint.satisfied_by("query index join", "query index scan")
        assert not constraint.satisfied_by("query index", "totally different words")

    def test_interval_with_nonzero_minimum(self):
        constraint = AttributeConstraint(attribute="x", kind=CONSTRAINT_INTERVAL,
                                         interval=(0.3, 0.8))
        # Identical values have distance 0 < 0.3, so the constraint fails.
        assert not constraint.satisfied_by("same words", "same words")

    def test_constant_constraint(self):
        constraint = AttributeConstraint(attribute="x", kind=CONSTRAINT_CONSTANT,
                                         constant="male")
        assert constraint.satisfied_by("male", "male")
        assert not constraint.satisfied_by("male", "female")
        assert not constraint.satisfied_by("female", "female")

    def test_missing_constraint_always_true(self):
        constraint = AttributeConstraint(attribute="x", kind=CONSTRAINT_MISSING)
        assert constraint.satisfied_by(None, None)
        assert constraint.satisfied_by("a", "b")

    def test_missing_values_fail_non_missing_constraints(self):
        constraint = AttributeConstraint(attribute="x", kind=CONSTRAINT_INTERVAL,
                                         interval=(0.0, 1.0))
        assert not constraint.satisfied_by(None, "a")

    def test_invalid_kind_rejected(self):
        with pytest.raises(RuleError):
            AttributeConstraint(attribute="x", kind="weird")

    def test_invalid_interval_rejected(self):
        with pytest.raises(RuleError):
            AttributeConstraint(attribute="x", kind=CONSTRAINT_INTERVAL,
                                interval=(0.5, 0.4))

    def test_constant_requires_value(self):
        with pytest.raises(RuleError):
            AttributeConstraint(attribute="x", kind=CONSTRAINT_CONSTANT)

    def test_describe(self):
        constant = AttributeConstraint(attribute="g", kind=CONSTRAINT_CONSTANT,
                                       constant="male")
        interval = AttributeConstraint(attribute="s", kind=CONSTRAINT_INTERVAL,
                                       interval=(0.0, 0.3))
        assert "male" in constant.describe()
        assert "0.30" in interval.describe()


class TestCDDRule:
    def test_rule_validation(self, simple_cdd_rule):
        assert simple_cdd_rule.determinant_attributes == ("gender", "symptom")
        assert simple_cdd_rule.dependent == "diagnosis"
        assert simple_cdd_rule.dependent_width == pytest.approx(0.4)

    def test_needs_determinants(self):
        with pytest.raises(RuleError):
            CDDRule(determinants=(), dependent="d", dependent_interval=(0, 0.1))

    def test_dependent_cannot_be_determinant(self):
        constraint = AttributeConstraint(attribute="d", kind=CONSTRAINT_INTERVAL,
                                         interval=(0.0, 0.1))
        with pytest.raises(RuleError):
            CDDRule(determinants=(constraint,), dependent="d",
                    dependent_interval=(0.0, 0.1))

    def test_duplicate_determinants_rejected(self):
        constraint = AttributeConstraint(attribute="a", kind=CONSTRAINT_INTERVAL,
                                         interval=(0.0, 0.1))
        with pytest.raises(RuleError):
            CDDRule(determinants=(constraint, constraint), dependent="d",
                    dependent_interval=(0.0, 0.1))

    def test_invalid_dependent_interval(self):
        constraint = AttributeConstraint(attribute="a", kind=CONSTRAINT_INTERVAL,
                                         interval=(0.0, 0.1))
        with pytest.raises(RuleError):
            CDDRule(determinants=(constraint,), dependent="d",
                    dependent_interval=(0.5, 0.2))

    def test_applicable_to(self, simple_cdd_rule, incomplete_health_record):
        assert simple_cdd_rule.applicable_to(incomplete_health_record, "diagnosis")
        assert not simple_cdd_rule.applicable_to(incomplete_health_record, "treatment")

    def test_applicable_requires_constant_match(self, simple_cdd_rule,
                                                incomplete_health_record):
        female = incomplete_health_record.with_value("gender", "female")
        assert not simple_cdd_rule.applicable_to(female, "diagnosis")

    def test_applicable_requires_present_determinants(self, simple_cdd_rule,
                                                      incomplete_health_record):
        no_symptom = incomplete_health_record.with_value("symptom", None)
        assert not simple_cdd_rule.applicable_to(no_symptom, "diagnosis")

    def test_matches_sample(self, simple_cdd_rule, incomplete_health_record,
                            health_repository):
        matching = health_repository.sample_by_rid("s0")  # male, similar symptom
        assert simple_cdd_rule.matches_sample(incomplete_health_record, matching)
        non_matching = health_repository.sample_by_rid("s2")  # female
        assert not simple_cdd_rule.matches_sample(incomplete_health_record,
                                                  non_matching)

    def test_dependent_satisfied(self, simple_cdd_rule):
        assert simple_cdd_rule.dependent_satisfied("diabetes", "diabetes")
        assert not simple_cdd_rule.dependent_satisfied("diabetes", "flu")

    def test_holds_for_vacuous_when_determinants_differ(self, simple_cdd_rule):
        left = Record(rid="l", values={"gender": "female", "symptom": "cough",
                                       "diagnosis": "flu", "treatment": "rest"})
        right = Record(rid="r", values={"gender": "male", "symptom": "fever",
                                        "diagnosis": "pneumonia", "treatment": "x"})
        assert simple_cdd_rule.holds_for(left, right)

    def test_describe_contains_rule_shape(self, simple_cdd_rule):
        text = simple_cdd_rule.describe()
        assert "gender symptom -> diagnosis" in text


class TestCDDDiscovery:
    def test_discovery_returns_rules(self, health_repository):
        rules = discover_cdd_rules(health_repository)
        assert rules, "expected at least one CDD rule from the health repository"
        assert all(isinstance(rule, CDDRule) for rule in rules)

    def test_discovered_rules_cover_dependents(self, health_repository):
        rules = discover_cdd_rules(health_repository)
        dependents = {rule.dependent for rule in rules}
        # Every schema attribute should be imputable by at least one rule on
        # this dense little repository.
        assert dependents == set(health_repository.schema)

    def test_discovery_respects_dependent_filter(self, health_repository):
        rules = discover_cdd_rules(health_repository, dependents=["diagnosis"])
        assert rules
        assert all(rule.dependent == "diagnosis" for rule in rules)

    def test_discovery_on_tiny_repository(self, health_schema):
        repository = DataRepository(schema=health_schema, samples=[])
        assert discover_cdd_rules(repository) == []

    def test_discovered_rules_hold_on_repository_pairs(self, health_repository):
        """Soundness: a discovered CDD must hold on the repository it came from."""
        config = CDDDiscoveryConfig(max_pairs=1000)
        rules = discover_cdd_rules(health_repository, config)
        samples = health_repository.samples
        for rule in rules[:50]:
            for i in range(len(samples)):
                for j in range(i + 1, len(samples)):
                    assert rule.holds_for(samples[i], samples[j]), rule.describe()

    def test_constant_rules_present(self, health_repository):
        rules = discover_cdd_rules(health_repository)
        kinds = {constraint.kind for rule in rules for constraint in rule.determinants}
        assert CONSTRAINT_CONSTANT in kinds
        assert CONSTRAINT_INTERVAL in kinds

    def test_combined_rules_have_two_determinants(self, health_repository):
        config = CDDDiscoveryConfig(combine_determinants=True)
        rules = discover_cdd_rules(health_repository, config)
        assert any(len(rule.determinants) == 2 for rule in rules)

    def test_combination_can_be_disabled(self, health_repository):
        config = CDDDiscoveryConfig(combine_determinants=False)
        rules = discover_cdd_rules(health_repository, config)
        assert all(len(rule.determinants) == 1 for rule in rules)

    def test_grouping_helpers(self, health_repository):
        rules = discover_cdd_rules(health_repository)
        grouped = group_rules_by_dependent(rules)
        assert set(grouped) == {rule.dependent for rule in rules}
        diagnosis_rules = rules_for_attribute(rules, "diagnosis")
        assert all(rule.dependent == "diagnosis" for rule in diagnosis_rules)
        assert len(diagnosis_rules) == len(grouped["diagnosis"])

    def test_discovery_is_deterministic(self, health_repository):
        first = discover_cdd_rules(health_repository)
        second = discover_cdd_rules(health_repository)
        assert [rule.rule_id for rule in first] == [rule.rule_id for rule in second]
