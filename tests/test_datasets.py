"""Tests for the synthetic dataset generators (Table 4 analogues)."""

import random

import pytest

from repro.core.similarity import record_similarity
from repro.core.tuples import Record
from repro.datasets.synthetic import (
    DATASET_PROFILES,
    Workload,
    dataset_statistics,
    generate_dataset,
    inject_missing_values,
)
from repro.datasets.vocab import DOMAIN_SCHEMAS, TOPIC_CLUSTERS, topic_keywords


class TestProfiles:
    def test_all_paper_datasets_present(self):
        for name in ("citations", "anime", "bikes", "ebooks", "songs"):
            assert name in DATASET_PROFILES

    def test_profiles_are_consistent(self):
        for profile in DATASET_PROFILES.values():
            assert profile.match_count <= min(profile.source_a_size,
                                              profile.source_b_size)
            assert len(profile.tokens_per_attribute) == len(profile.attributes)
            assert 0.0 <= profile.perturbation < 1.0

    def test_ebooks_has_longest_attribute(self):
        """The paper observes EBooks' description dominates the token sizes."""
        ebooks_max = max(high for _, high in
                         DATASET_PROFILES["ebooks"].tokens_per_attribute)
        others_max = max(
            high
            for name, profile in DATASET_PROFILES.items() if name != "ebooks"
            for _, high in profile.tokens_per_attribute)
        assert ebooks_max > others_max

    def test_songs_is_largest(self):
        songs = DATASET_PROFILES["songs"]
        for name, profile in DATASET_PROFILES.items():
            if name == "songs":
                continue
            assert songs.source_a_size + songs.source_b_size >= (
                profile.source_a_size + profile.source_b_size)

    def test_domain_schemas_and_topics_defined(self):
        for profile in DATASET_PROFILES.values():
            assert profile.domain in DOMAIN_SCHEMAS
            assert profile.domain in TOPIC_CLUSTERS
            assert len(topic_keywords(profile.domain)) >= 4


class TestGeneration:
    def test_generate_unknown_dataset(self):
        with pytest.raises(KeyError):
            generate_dataset("nope")

    def test_workload_structure(self):
        workload = generate_dataset("citations", scale=0.5, seed=3)
        assert isinstance(workload, Workload)
        assert len(workload.stream_a) > 0
        assert len(workload.stream_b) > 0
        assert len(workload.repository) > 0
        assert workload.keywords
        assert all(record.source == "stream-a" for record in workload.stream_a)
        assert all(record.source == "stream-b" for record in workload.stream_b)

    def test_generation_is_deterministic(self):
        first = generate_dataset("anime", scale=0.4, seed=5)
        second = generate_dataset("anime", scale=0.4, seed=5)
        assert [r.values for r in first.stream_a] == [r.values for r in second.stream_a]
        assert first.ground_truth == second.ground_truth

    def test_different_seeds_differ(self):
        first = generate_dataset("anime", scale=0.4, seed=5)
        second = generate_dataset("anime", scale=0.4, seed=6)
        assert [r.values for r in first.stream_a] != [r.values for r in second.stream_a]

    def test_scale_controls_sizes(self):
        small = generate_dataset("songs", scale=0.2, seed=1)
        large = generate_dataset("songs", scale=0.6, seed=1)
        assert len(small.stream_a) < len(large.stream_a)

    def test_missing_rate_respected(self):
        workload = generate_dataset("bikes", missing_rate=0.5, scale=0.5, seed=9)
        schema = workload.schema
        incomplete = sum(1 for record in workload.stream_a + workload.stream_b
                         if not record.is_complete(schema))
        total = workload.total_stream_size()
        assert 0.3 <= incomplete / total <= 0.7

    def test_zero_missing_rate(self):
        workload = generate_dataset("bikes", missing_rate=0.0, scale=0.4, seed=9)
        schema = workload.schema
        assert all(record.is_complete(schema)
                   for record in workload.stream_a + workload.stream_b)

    def test_missing_attribute_count(self):
        workload = generate_dataset("anime", missing_rate=1.0,
                                    missing_attributes=2, scale=0.3, seed=2)
        schema = workload.schema
        for record in workload.stream_a:
            assert len(record.missing_attributes(schema)) == 2

    def test_repository_is_complete_and_scaled(self):
        workload = generate_dataset("citations", repository_ratio=0.5, scale=0.5,
                                    seed=4)
        schema = workload.schema
        assert all(sample.is_complete(schema) for sample in workload.repository)
        expected = int(round(workload.total_stream_size() * 0.5))
        assert abs(len(workload.repository) - expected) <= 2

    def test_ground_truth_is_topical(self):
        workload = generate_dataset("citations", scale=0.6, seed=7)
        for key in workload.ground_truth:
            entities = {f"{source}/{rid}" for source, rid in key}
            assert entities & workload.topic_entities

    def test_ground_truth_pairs_are_actually_similar(self):
        """Matched pairs must be far more similar than random cross pairs."""
        workload = generate_dataset("citations", missing_rate=0.0, scale=0.6,
                                    seed=7)
        schema = workload.schema
        by_key = {(record.source, record.rid): record
                  for record in workload.stream_a + workload.stream_b}
        match_sims = []
        for (left_key, right_key) in workload.ground_truth:
            left, right = by_key[left_key], by_key[right_key]
            match_sims.append(record_similarity(left, right, schema))
        random_sims = []
        rng = random.Random(0)
        for _ in range(50):
            left = rng.choice(workload.stream_a)
            right = rng.choice(workload.stream_b)
            if (("stream-a", left.rid), ("stream-b", right.rid)) in workload.ground_truth:
                continue
            random_sims.append(record_similarity(left, right, schema))
        assert match_sims, "expected at least one topical ground-truth pair"
        assert min(match_sims) > sum(random_sims) / len(random_sims)

    def test_keywords_come_from_domain_topics(self):
        workload = generate_dataset("songs", scale=0.3, seed=1)
        assert workload.keywords <= set(TOPIC_CLUSTERS["songs"])

    def test_statistics_row(self):
        workload = generate_dataset("anime", scale=0.3, seed=1)
        row = dataset_statistics(workload)
        assert row["dataset"] == "anime"
        assert row["source_a_tuples"] == len(workload.stream_a)
        assert row["topic_ground_truth_matches"] == len(workload.ground_truth)


class TestMissingInjection:
    def test_validation(self, health_schema):
        records = [Record(rid="r", values={name: "v" for name in health_schema})]
        with pytest.raises(ValueError):
            inject_missing_values(records, health_schema, missing_rate=1.5,
                                  missing_attributes=1, rng=random.Random(0))
        with pytest.raises(ValueError):
            inject_missing_values(records, health_schema, missing_rate=0.5,
                                  missing_attributes=0, rng=random.Random(0))
        with pytest.raises(ValueError):
            inject_missing_values(records, health_schema, missing_rate=0.5,
                                  missing_attributes=99, rng=random.Random(0))

    def test_injection_preserves_record_identity(self, health_schema):
        records = [Record(rid=f"r{i}", values={name: "v" for name in health_schema},
                          source="s") for i in range(20)]
        injected = inject_missing_values(records, health_schema, missing_rate=1.0,
                                         missing_attributes=1,
                                         rng=random.Random(0))
        assert [record.rid for record in injected] == [f"r{i}" for i in range(20)]
        assert all(len(record.missing_attributes(health_schema)) == 1
                   for record in injected)
