"""Editing rules [Fan et al., VLDB 2010] — the ``er+ER`` imputation baseline.

An editing rule imputes a missing attribute with a *certain fix*: when the
incomplete tuple agrees exactly with a master-data (repository) sample on a
set of determinant attributes, the sample's dependent value is copied.  The
paper uses editing rules both as a standalone baseline (``er+ER``) and as the
fallback inside CDD detection when an attribute cannot impute accurately with
a distance interval.

Because editing rules require exact equality they retrieve fewer candidate
samples than DDs/CDDs on sparse textual data, which is why the paper reports
lower imputation accuracy for ``er+ER`` (Section 6.3, Figure 5(a)).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.tuples import ImputedRecord, Record, Schema
from repro.imputation.repository import DataRepository


@dataclass(frozen=True)
class EditingRule:
    """``(X = pattern) → A_j``: copy the dependent value on exact agreement."""

    determinants: Tuple[str, ...]
    dependent: str

    def __post_init__(self) -> None:
        if not self.determinants:
            raise ValueError("an editing rule needs at least one determinant")
        if self.dependent in self.determinants:
            raise ValueError("dependent attribute cannot be a determinant")

    def applicable_to(self, record: Record, missing_attribute: str) -> bool:
        """The rule targets the missing attribute and determinants are present."""
        if self.dependent != missing_attribute:
            return False
        return all(not record.is_missing(name) for name in self.determinants)

    def matches_sample(self, record: Record, sample: Record) -> bool:
        """Exact equality on every determinant attribute."""
        return all(record[name] == sample[name] for name in self.determinants)

    def describe(self) -> str:
        lhs = " ".join(self.determinants)
        return f"ER {lhs} = match -> {self.dependent}"


def discover_editing_rules(repository: DataRepository,
                           max_determinants: int = 2) -> List[EditingRule]:
    """Enumerate editing rules over single attributes and attribute pairs.

    Editing rules are schema-level statements (the master data provides the
    patterns at imputation time), so discovery only decides which determinant
    sets are worth using: an attribute (or pair) qualifies when its values
    are reasonably discriminative in the repository, i.e. matching on it
    pins down few samples.
    """
    schema = repository.schema
    rules: List[EditingRule] = []
    total = max(1, len(repository))
    for dependent in schema:
        for determinant in schema:
            if determinant == dependent:
                continue
            distinct = repository.domain_size(determinant)
            # Require some selectivity: on average at most ~25% of samples
            # share one determinant value.
            if distinct >= max(2, total // 4):
                rules.append(EditingRule(determinants=(determinant,),
                                         dependent=dependent))
        if max_determinants >= 2:
            others = [name for name in schema if name != dependent]
            for i in range(len(others)):
                for j in range(i + 1, len(others)):
                    rules.append(EditingRule(determinants=(others[i], others[j]),
                                             dependent=dependent))
    return rules


@dataclass
class EditingRuleImputer:
    """Impute missing attributes by exact-match lookups against master data."""

    repository: DataRepository
    rules: List[EditingRule]
    samples_scanned: int = field(default=0, repr=False)

    def candidate_distribution(self, record: Record,
                               attribute: str) -> Dict[str, float]:
        """Candidate values (with probabilities) for one missing attribute."""
        counts: Dict[str, int] = {}
        for rule in self.rules:
            if not rule.applicable_to(record, attribute):
                continue
            for sample in self.repository.samples:
                self.samples_scanned += 1
                if rule.matches_sample(record, sample):
                    value = sample[attribute]
                    if value is not None:
                        counts[value] = counts.get(value, 0) + 1
        total = sum(counts.values())
        if total == 0:
            return {}
        return {value: count / total for value, count in counts.items()}

    def impute(self, record: Record) -> ImputedRecord:
        """Impute every missing attribute of ``record`` (empty dist ⇒ left missing)."""
        schema = self.repository.schema
        candidates: Dict[str, Dict[str, float]] = {}
        for attribute in record.missing_attributes(schema):
            distribution = self.candidate_distribution(record, attribute)
            if distribution:
                candidates[attribute] = distribution
        return ImputedRecord(base=record, schema=schema, candidates=candidates)
