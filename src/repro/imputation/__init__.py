"""Imputation subsystem: data repository, dependency rules and imputers."""

from repro.imputation.cdd import (
    MAINTENANCE_FULL,
    MAINTENANCE_HYBRID,
    MAINTENANCE_INCREMENTAL,
    MAINTENANCE_MODES,
    AttributeConstraint,
    CDDDiscoveryConfig,
    CDDRule,
    discover_cdd_rules,
    group_rules_by_dependent,
    rules_for_attribute,
)
from repro.imputation.constraint import StreamConstraintImputer
from repro.imputation.dd import (
    DDDiscoveryConfig,
    DDMaintenanceReport,
    DDRule,
    IncrementalDDMaintainer,
    dd_rules_as_cdds,
    discover_dd_rules,
)
from repro.imputation.editing import (
    EditingRule,
    EditingRuleImputer,
    discover_editing_rules,
)
from repro.imputation.imputer import (
    CDDImputer,
    ImputationStats,
    SingleCDDImputer,
    combine_frequencies,
    make_dd_imputer,
)
from repro.imputation.incremental import (
    IncrementalRuleMaintainer,
    MaintenanceReport,
    RuleCounters,
    widen_interval,
)
from repro.imputation.repository import DataRepository, RepositoryError

__all__ = [
    "MAINTENANCE_FULL",
    "MAINTENANCE_HYBRID",
    "MAINTENANCE_INCREMENTAL",
    "MAINTENANCE_MODES",
    "AttributeConstraint",
    "CDDDiscoveryConfig",
    "CDDRule",
    "CDDImputer",
    "DataRepository",
    "DDDiscoveryConfig",
    "DDMaintenanceReport",
    "DDRule",
    "EditingRule",
    "EditingRuleImputer",
    "ImputationStats",
    "IncrementalDDMaintainer",
    "IncrementalRuleMaintainer",
    "MaintenanceReport",
    "RepositoryError",
    "RuleCounters",
    "SingleCDDImputer",
    "StreamConstraintImputer",
    "combine_frequencies",
    "widen_interval",
    "dd_rules_as_cdds",
    "discover_cdd_rules",
    "discover_dd_rules",
    "discover_editing_rules",
    "group_rules_by_dependent",
    "make_dd_imputer",
    "rules_for_attribute",
]
