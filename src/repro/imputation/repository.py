"""The static, complete data repository ``R`` used for imputation.

The paper assumes a repository of complete historical records collected from
the same application (Section 2.2).  The repository exposes the attribute
domains ``dom(A_j)`` (all values observed for an attribute), which the CDD
imputation uses as the candidate pool, and supports incremental extension
with new complete samples (Section 5.5, dynamic repository).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.similarity import text_distance, tokenize
from repro.core.tuples import Record, Schema


class RepositoryError(ValueError):
    """Raised when the repository is fed inconsistent data."""


@dataclass
class DataRepository:
    """A collection of complete sample tuples ``s ∈ R``.

    Parameters
    ----------
    schema:
        The shared attribute schema.
    samples:
        Complete records; a record with a missing schema attribute is
        rejected because the imputation rules assume complete samples.
    """

    schema: Schema
    samples: List[Record] = field(default_factory=list)
    _domains: Dict[str, List[str]] = field(default_factory=dict, repr=False)
    _domain_sets: Dict[str, Set[str]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        existing = list(self.samples)
        self.samples = []
        # Always rebuild the domain caches from scratch: a caller may hand us
        # pre-populated caches (``dataclasses.replace`` copies them from the
        # source repository), and re-adding the samples into shared or stale
        # dicts would double-count domains — ``domain_size`` would then stay
        # wrong forever, including after every later ``extend``.
        self._domains = {}
        self._domain_sets = {}
        for sample in existing:
            self.add_sample(sample)

    def __len__(self) -> int:
        return len(self.samples)

    def __iter__(self):
        return iter(self.samples)

    # -- mutation ------------------------------------------------------------
    def add_sample(self, sample: Record) -> None:
        """Insert one complete sample (Section 5.5 incremental updates)."""
        missing = sample.missing_attributes(self.schema)
        if missing:
            raise RepositoryError(
                f"repository samples must be complete; {sample.rid} misses {missing}")
        self.samples.append(sample)
        for attribute in self.schema:
            value = sample[attribute]
            assert value is not None
            bucket = self._domain_sets.setdefault(attribute, set())
            if value not in bucket:
                bucket.add(value)
                self._domains.setdefault(attribute, []).append(value)

    def extend(self, samples: Iterable[Record]) -> None:
        """Insert a batch of complete samples."""
        for sample in samples:
            self.add_sample(sample)

    # -- domains ---------------------------------------------------------------
    def domain(self, attribute: str) -> List[str]:
        """``dom(A_j)``: the distinct values of one attribute, insertion order."""
        if attribute not in self.schema:
            raise RepositoryError(f"unknown attribute {attribute!r}")
        return list(self._domains.get(attribute, []))

    def domain_size(self, attribute: str) -> int:
        """Number of distinct values of one attribute."""
        return len(self._domains.get(attribute, []))

    def token_vocabulary(self, attribute: Optional[str] = None) -> Set[str]:
        """All tokens appearing in one attribute (or in the whole repository)."""
        attributes = [attribute] if attribute else list(self.schema)
        vocabulary: Set[str] = set()
        for name in attributes:
            for value in self._domains.get(name, []):
                vocabulary |= tokenize(value)
        return vocabulary

    # -- retrieval -------------------------------------------------------------
    def values(self, attribute: str) -> List[str]:
        """Per-sample values of one attribute (with repetitions)."""
        return [sample[attribute] for sample in self.samples]  # type: ignore[misc]

    def nearest_values(self, attribute: str, value: str, limit: int = 5) -> List[str]:
        """Domain values ranked by Jaccard distance to ``value`` (closest first)."""
        ranked = sorted(self.domain(attribute),
                        key=lambda candidate: text_distance(candidate, value))
        return ranked[:limit]

    def sample_by_rid(self, rid: str) -> Optional[Record]:
        """Find a sample by its identifier (None when absent)."""
        for sample in self.samples:
            if sample.rid == rid:
                return sample
        return None

    def subset(self, fraction: float, seed: int = 0) -> "DataRepository":
        """Deterministic subsample of the repository (used for the η sweeps)."""
        if not 0.0 < fraction <= 1.0:
            raise RepositoryError(f"fraction must be in (0, 1], got {fraction}")
        count = max(1, int(round(len(self.samples) * fraction)))
        stride = max(1, len(self.samples) // count)
        chosen = self.samples[seed % max(stride, 1)::stride][:count]
        if not chosen:
            chosen = self.samples[:count]
        return DataRepository(schema=self.schema, samples=list(chosen))

    @classmethod
    def from_records(cls, records: Iterable[Record], schema: Schema,
                     drop_incomplete: bool = True) -> "DataRepository":
        """Build a repository, optionally skipping incomplete records."""
        repository = cls(schema=schema, samples=[])
        for record in records:
            if drop_incomplete and not record.is_complete(schema):
                continue
            repository.add_sample(record)
        return repository
