"""Rule-based imputers implementing Equations (3) and (4) of the paper.

Given an incomplete tuple ``r`` with missing attribute ``A_j`` and a set of
CDD rules ``X_i → A_j``:

1. for every applicable rule, retrieve the repository samples ``s`` that
   satisfy the rule's determinant constraints w.r.t. ``r``;
2. for every such sample, collect the candidate set ``cand(s[A_j])`` of
   domain values whose Jaccard distance to ``s[A_j]`` lies inside the
   dependent interval ``A_j.I``;
3. aggregate candidate frequencies per rule (Eq. 3) and across all rules
   (Eq. 4), normalising into existence probabilities.

The imputer exposes counters (rules considered, samples scanned, candidate
values generated) used by the break-up cost experiment (Figure 6) and by the
baseline comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, MutableMapping, Optional, Sequence, Tuple

from repro.core.similarity import text_distance
from repro.core.tuples import ImputedRecord, Record, Schema
from repro.imputation.cdd import CDDRule, group_rules_by_dependent
from repro.imputation.dd import DDRule, dd_rules_as_cdds
from repro.imputation.repository import DataRepository

#: Optional hook that, given (record, rule), returns candidate repository
#: samples to test against the rule.  The index-join engine plugs the
#: DR-index here; the default scans the whole repository.
SampleRetriever = Callable[[Record, CDDRule], Sequence[Record]]


@dataclass
class ImputationStats:
    """Counters describing the work done by an imputer."""

    records_imputed: int = 0
    attributes_imputed: int = 0
    attributes_unimputable: int = 0
    rules_considered: int = 0
    rules_applied: int = 0
    samples_scanned: int = 0
    samples_matched: int = 0
    candidate_values: int = 0

    def merge(self, other: "ImputationStats") -> None:
        """Accumulate another stats object into this one."""
        self.records_imputed += other.records_imputed
        self.attributes_imputed += other.attributes_imputed
        self.attributes_unimputable += other.attributes_unimputable
        self.rules_considered += other.rules_considered
        self.rules_applied += other.rules_applied
        self.samples_scanned += other.samples_scanned
        self.samples_matched += other.samples_matched
        self.candidate_values += other.candidate_values

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view used by the experiment harness."""
        return {
            "records_imputed": self.records_imputed,
            "attributes_imputed": self.attributes_imputed,
            "attributes_unimputable": self.attributes_unimputable,
            "rules_considered": self.rules_considered,
            "rules_applied": self.rules_applied,
            "samples_scanned": self.samples_scanned,
            "samples_matched": self.samples_matched,
            "candidate_values": self.candidate_values,
        }


def candidate_set_for_sample(sample_value: str, domain: Sequence[str],
                             dependent_interval: Tuple[float, float],
                             max_candidates: int = 12) -> List[str]:
    """``cand(s[A_j])``: domain values within the dependent distance interval.

    When the interval admits more than ``max_candidates`` domain values, the
    ones closest to ``s[A_j]`` are kept — the far end of a wide interval
    carries no information about the missing value and only dilutes the
    Eq. (3)/(4) frequency distribution.
    """
    low, high = dependent_interval
    scored: List[Tuple[float, str]] = []
    for value in domain:
        distance = text_distance(sample_value, value)
        if low - 1e-9 <= distance <= high + 1e-9:
            scored.append((distance, value))
    scored.sort(key=lambda item: (item[0], item[1]))
    return [value for _, value in scored[:max_candidates]]


def truncate_distribution(distribution: Dict[str, float],
                          max_values: int) -> Dict[str, float]:
    """Keep the ``max_values`` most probable candidates and renormalise.

    The paper keeps every candidate value; in practice the tail of the
    Eq. (4) distribution carries negligible mass while inflating the number
    of tuple instances (and therefore the Eq. (2) evaluation cost)
    exponentially in the number of missing attributes.  Truncating to the
    head of the distribution bounds that blow-up.
    """
    if max_values <= 0 or len(distribution) <= max_values:
        return distribution
    ranked = sorted(distribution.items(), key=lambda item: (-item[1], item[0]))
    kept = dict(ranked[:max_values])
    total = sum(kept.values())
    return {value: probability / total for value, probability in kept.items()}


def combine_frequencies(per_rule_frequencies: Sequence[Dict[str, int]]) -> Dict[str, float]:
    """Equation (4): merge per-rule frequency distributions into probabilities."""
    total = 0
    merged: Dict[str, int] = {}
    for frequencies in per_rule_frequencies:
        for value, count in frequencies.items():
            merged[value] = merged.get(value, 0) + count
            total += count
    if total == 0:
        return {}
    return {value: count / total for value, count in merged.items()}


@dataclass
class CDDImputer:
    """The paper's CDD-based imputer (multi-rule strategy, Eq. (4)).

    Parameters
    ----------
    repository:
        The static complete data repository ``R``.
    rules:
        The mined CDD rules (all dependent attributes mixed; they are grouped
        internally).
    max_candidates_per_sample:
        Cap on ``|cand(s[A_j])|`` to keep the candidate pool bounded.
    max_rules_per_attribute:
        Upper bound on the number of rules consulted per missing attribute
        (the tightest rules — smallest dependent interval — are preferred).
    sample_retriever:
        Optional pluggable sample-retrieval hook (the index join supplies a
        DR-index-backed retriever; the default scans ``R``).
    candidate_cache:
        Optional mutable mapping memoising ``cand(s[A_j])`` computations
        across records.  ``candidate_set_for_sample`` depends only on the
        sample value, the attribute domain and the rule's dependent interval,
        so its results can be shared between all records of a micro-batch
        (and across batches).  The cache key includes the domain size, which
        only grows (the repository is append-only), so stale hits are
        impossible.  ``None`` (the default) disables memoisation and keeps
        the single-tuple engine's exact seed behaviour.
    """

    repository: DataRepository
    rules: Sequence[CDDRule]
    max_candidates_per_sample: int = 12
    max_rules_per_attribute: int = 12
    max_candidate_values: int = 16
    sample_retriever: Optional[SampleRetriever] = None
    stats: ImputationStats = field(default_factory=ImputationStats)
    candidate_cache: Optional[MutableMapping] = field(default=None, repr=False)
    _rules_by_dependent: Dict[str, List[CDDRule]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._regroup_rules()

    def _regroup_rules(self) -> None:
        grouped = group_rules_by_dependent(self.rules)
        self._rules_by_dependent = {
            attribute: sorted(rules, key=lambda rule: (rule.dependent_width,
                                                       -rule.support))
            for attribute, rules in grouped.items()
        }

    def set_rules(self, rules: Sequence[CDDRule]) -> None:
        """Swap the rule set in place (Section 5.5 rule maintenance).

        Keeps the imputer object — and with it the accumulated statistics,
        the candidate cache and the sample retriever — so callers that hold
        a reference (the runtime context, the engine facade) observe the new
        rules without any rewiring.
        """
        self.rules = list(rules)
        self._regroup_rules()

    # -- rule selection -------------------------------------------------------
    def _filter_ranked(self, record: Record, attribute: str,
                       ranked: Sequence[CDDRule]) -> List[CDDRule]:
        """Shared tail of rule selection: count, check applicability, cap."""
        self.stats.rules_considered += len(ranked)
        applicable = [rule for rule in ranked
                      if rule.applicable_to(record, attribute)]
        return applicable[: self.max_rules_per_attribute]

    def rules_for(self, record: Record, attribute: str) -> List[CDDRule]:
        """Applicable rules for one missing attribute, tightest first."""
        return self._filter_ranked(record, attribute,
                                   self._rules_by_dependent.get(attribute, []))

    def scoped_rules_for(self, record: Record, attribute: str,
                         rules: Sequence[CDDRule]) -> List[CDDRule]:
        """Rank and filter an externally selected rule set for one attribute.

        Mirrors :meth:`rules_for` exactly (same ordering key, same counters,
        same applicability filter and cap), but over a caller-supplied rule
        set — e.g. the output of a CDD-index probe — instead of the imputer's
        own rules.  This is what lets the engine impute with index-selected
        rules without instantiating a throwaway scoped imputer per attribute.
        """
        ranked = sorted((rule for rule in rules if rule.dependent == attribute),
                        key=lambda rule: (rule.dependent_width, -rule.support))
        return self._filter_ranked(record, attribute, ranked)

    # -- sample retrieval -------------------------------------------------------
    def _samples_for_rule(self, record: Record, rule: CDDRule) -> Sequence[Record]:
        if self.sample_retriever is not None:
            return self.sample_retriever(record, rule)
        return self.repository.samples

    def matching_samples(self, record: Record, rule: CDDRule) -> List[Record]:
        """Repository samples satisfying the rule's determinant constraints."""
        matched = []
        for sample in self._samples_for_rule(record, rule):
            self.stats.samples_scanned += 1
            if rule.matches_sample(record, sample):
                matched.append(sample)
        self.stats.samples_matched += len(matched)
        return matched

    def _candidate_set(self, sample_value: str, attribute: str,
                       domain: Sequence[str], rule: CDDRule) -> List[str]:
        """``cand(s[A_j])`` with optional cross-record memoisation."""
        if self.candidate_cache is None:
            return candidate_set_for_sample(sample_value, domain,
                                            rule.dependent_interval,
                                            self.max_candidates_per_sample)
        key = (attribute, sample_value, rule.dependent_interval,
               self.max_candidates_per_sample, len(domain))
        cached = self.candidate_cache.get(key)
        if cached is None:
            cached = candidate_set_for_sample(sample_value, domain,
                                              rule.dependent_interval,
                                              self.max_candidates_per_sample)
            self.candidate_cache[key] = cached
        return cached

    # -- imputation --------------------------------------------------------------
    def candidate_distribution(self, record: Record, attribute: str,
                               rules: Optional[Sequence[CDDRule]] = None,
                               ) -> Dict[str, float]:
        """Equation (4) candidate distribution for one missing attribute.

        When ``rules`` is given (e.g. the output of an online CDD-index
        probe) it overrides the imputer's own rule selection; the override is
        ranked / filtered identically to the internal path, so the resulting
        distribution is bit-identical to running a scoped imputer built from
        those rules.
        """
        if rules is None:
            selected = self.rules_for(record, attribute)
        else:
            selected = self.scoped_rules_for(record, attribute, rules)
        domain = self.repository.domain(attribute)
        per_rule: List[Dict[str, int]] = []
        for rule in selected:
            samples = self.matching_samples(record, rule)
            if not samples:
                continue
            frequencies: Dict[str, int] = {}
            for sample in samples:
                sample_value = sample[attribute]
                if sample_value is None:
                    continue
                for value in self._candidate_set(sample_value, attribute,
                                                 domain, rule):
                    frequencies[value] = frequencies.get(value, 0) + 1
            if frequencies:
                per_rule.append(frequencies)
                self.stats.rules_applied += 1
        distribution = truncate_distribution(combine_frequencies(per_rule),
                                             self.max_candidate_values)
        self.stats.candidate_values += len(distribution)
        return distribution

    def impute(self, record: Record) -> ImputedRecord:
        """Impute every missing attribute of ``record``.

        Attributes for which no rule/sample produces candidates are left
        missing (their token set stays empty and they contribute zero
        similarity), exactly like the straightforward method of the paper.
        """
        schema = self.repository.schema
        candidates: Dict[str, Dict[str, float]] = {}
        for attribute in record.missing_attributes(schema):
            distribution = self.candidate_distribution(record, attribute)
            if distribution:
                candidates[attribute] = distribution
                self.stats.attributes_imputed += 1
            else:
                self.stats.attributes_unimputable += 1
        self.stats.records_imputed += 1
        return ImputedRecord(base=record, schema=schema, candidates=candidates)


@dataclass
class SingleCDDImputer(CDDImputer):
    """Single-rule strategy (Eq. (3)): only the tightest applicable rule is used.

    The paper mentions this alternative strategy and leaves it as future
    work; it is implemented here for the multi-vs-single CDD ablation bench.
    """

    def candidate_distribution(self, record: Record, attribute: str,
                               rules: Optional[Sequence[CDDRule]] = None,
                               ) -> Dict[str, float]:
        if rules is None:
            selected = self.rules_for(record, attribute)
        else:
            selected = self.scoped_rules_for(record, attribute, rules)
        domain = self.repository.domain(attribute)
        for rule in selected:
            samples = self.matching_samples(record, rule)
            if not samples:
                continue
            frequencies: Dict[str, int] = {}
            for sample in samples:
                sample_value = sample[attribute]
                if sample_value is None:
                    continue
                for value in self._candidate_set(sample_value, attribute,
                                                 domain, rule):
                    frequencies[value] = frequencies.get(value, 0) + 1
            if frequencies:
                self.stats.rules_applied += 1
                distribution = truncate_distribution(
                    combine_frequencies([frequencies]), self.max_candidate_values)
                self.stats.candidate_values += len(distribution)
                return distribution
        return {}


def make_dd_imputer(repository: DataRepository, rules: Sequence[DDRule],
                    **kwargs) -> CDDImputer:
    """Build an imputer driven by DD rules (the ``DD+ER`` baseline)."""
    return CDDImputer(repository=repository, rules=dd_rules_as_cdds(rules), **kwargs)
