"""Incremental CDD-rule maintenance for the evolving repository (Section 5.5).

The paper keeps the CDD rules in step with a data repository that absorbs
new complete samples while the stream is running.  Re-mining the rules from
scratch on every extension is exact but costs ``O(|R|^2)`` pair work per
update — the slowest path of the online loop.  This module maintains the
miner's *sufficient statistics* instead, so one update costs ``O(batch)``:

* **band sketches** — for every ``(determinant, dependent, band)`` triple
  the count / min / max of the dependent-attribute distances over the pairs
  whose determinant distance falls inside the band.  This is exactly the
  statistic :func:`~repro.imputation.cdd._mine_interval_rules` reduces its
  pair scan to, so regenerating interval rules from the sketches reproduces
  the full miner bit for bit (as long as the pair budget covered every new
  pair);
* **constant-group sketches** — for every determinant value the member list
  plus, per dependent attribute, the count / min / max of the pairwise
  dependent distances inside the group: the statistic of
  :func:`~repro.imputation.cdd._mine_constant_rules`;
* **per-rule counters** — support / violation counts observed on the update
  pairs; rules whose confidence drops below
  ``CDDDiscoveryConfig.min_confidence`` are retired until the next full
  re-mine;
* **pending pool** — candidate rules whose sketches newly qualify are
  promoted at most ``pending_pool_size`` per update; the surplus stays
  pending and is counted as drift.

Because the update pairs are budgeted (``max_update_pairs``,
``max_group_pairs_per_sample``) the sketches can lag the true statistics.
The maintainer therefore tracks a **drift** estimate — skipped-pair
coverage gap + violation mass + deferred-promotion pressure — and, in
``hybrid`` maintenance mode, schedules a full re-mine (a call to
:meth:`IncrementalRuleMaintainer.initialize`, which resets the sketches
exactly) once the estimate exceeds ``drift_threshold``.

Interval maintenance is *monotone*: an update only ever widens a rule's
observed dependent interval (:func:`widen_interval`), never narrows it, so
a pair that satisfied a rule keeps satisfying every maintained version of
it.  Narrowing happens only through a full re-mine.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.similarity import text_distance
from repro.core.tuples import Record, Schema
from repro.imputation.cdd import (
    CONSTRAINT_CONSTANT,
    CONSTRAINT_MISSING,
    CDDDiscoveryConfig,
    CDDRule,
    MAINTENANCE_HYBRID,
    _combine_rules,
    _sample_pairs,
    constant_rule_from_group,
    interval_rule_from_band,
)
from repro.imputation.repository import DataRepository

BandKey = Tuple[str, str, Tuple[float, float]]

_EPS = 1e-9


def widen_interval(interval: Tuple[float, float], distance: float,
                   max_width: float) -> Optional[Tuple[float, float]]:
    """Widen a dependent interval to absorb one observed distance.

    Returns the (monotonically grown) interval covering both the original
    interval and ``distance``, clipped to ``[0, 1]`` — or ``None`` when the
    widened interval would exceed ``max_width`` (the observation is then a
    *violation*, not a supporting sample).  Widening is monotone (the result
    always contains the input interval) and idempotent (absorbing a distance
    already inside the interval changes nothing).
    """
    low, high = interval
    new_low = min(low, distance)
    new_high = max(high, distance)
    if new_high - new_low > max_width + _EPS:
        return None
    return (max(0.0, new_low), min(1.0, new_high))


@dataclass
class RangeStat:
    """Count / min / max summary of a stream of distances."""

    count: int = 0
    low: float = 1.0
    high: float = 0.0

    def observe(self, distance: float) -> None:
        if self.count == 0:
            self.low = distance
            self.high = distance
        else:
            if distance < self.low:
                self.low = distance
            if distance > self.high:
                self.high = distance
        self.count += 1

    def as_list(self) -> List[float]:
        return [self.count, self.low, self.high]

    @classmethod
    def from_list(cls, data: Sequence[float]) -> "RangeStat":
        return cls(count=int(data[0]), low=float(data[1]), high=float(data[2]))


@dataclass
class RuleCounters:
    """Support / violation counts observed for one rule on update pairs."""

    support: int = 0
    violations: int = 0

    @property
    def total(self) -> int:
        return self.support + self.violations

    @property
    def confidence(self) -> float:
        """Fraction of determinant-matching pairs consistent with the rule."""
        if self.total == 0:
            return 1.0
        return self.support / self.total


@dataclass
class GroupState:
    """One constant-condition group: members + per-dependent pair ranges."""

    member_indices: List[int] = field(default_factory=list)
    dep_ranges: Dict[str, RangeStat] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.member_indices)


@dataclass
class MaintenanceReport:
    """Outcome of one :meth:`IncrementalRuleMaintainer.absorb` call."""

    rules: List[CDDRule]
    rules_changed: bool
    remined: bool
    drift: float
    promoted: List[str] = field(default_factory=list)
    retired: List[str] = field(default_factory=list)
    deferred: List[str] = field(default_factory=list)
    widened: int = 0
    #: Rule ids whose dependent interval widened this update (the rules
    #: behind the ``widened`` count); consumed by the index patch path.
    widened_ids: List[str] = field(default_factory=list)
    pairs_observed: int = 0
    pairs_skipped: int = 0


def _rule_signature(rules: Sequence[CDDRule]) -> List[Tuple]:
    return [(rule.rule_id, rule.dependent_interval, rule.support)
            for rule in rules]


class IncrementalRuleMaintainer:
    """Maintains a CDD rule set under repository extensions in O(batch).

    The maintainer owns the sufficient statistics described in the module
    docstring.  :meth:`initialize` performs the exact sketch pass over the
    current repository (the cost of one full mine) and returns the rule set
    the full miner would have produced; :meth:`absorb` folds a batch of new
    samples into the sketches and regenerates the rules without touching the
    pre-existing repository pairs.
    """

    def __init__(self, config: Optional[CDDDiscoveryConfig],
                 schema: Schema) -> None:
        self.config = config or CDDDiscoveryConfig()
        self.schema = schema
        self.samples_seen = 0
        self.band_sketches: Dict[BandKey, RangeStat] = {}
        self.groups: Dict[str, Dict[str, GroupState]] = {
            attribute: {} for attribute in schema}
        self.counters: Dict[str, RuleCounters] = {}
        self.active_ids: Set[str] = set()
        self.retired_ids: Set[str] = set()
        self.deferred_ids: Set[str] = set()
        self.pairs_required = 0
        self.pairs_observed = 0
        self.support_total = 0
        self.violation_total = 0
        self.full_resyncs = 0
        self.rules: List[CDDRule] = []

    # ------------------------------------------------------------------
    # drift estimate
    # ------------------------------------------------------------------
    @property
    def drift(self) -> float:
        """Estimated divergence from a full re-mine, 0 when provably exact.

        Sum of three interpretable terms: the fraction of update pairs
        (band-sketch *and* constant-group pairs) skipped because of the pair
        budgets (coverage gap, in ``[0, 1]``), the fraction of observed
        determinant-matching pairs that violated their rule (violation mass,
        in ``[0, 1]``), and the pending-pool backlog relative to the active
        rule count (can exceed 1 under a promotion storm).
        """
        coverage_gap = (self.pairs_required - self.pairs_observed) / max(
            1, self.pairs_required)
        violation_mass = self.violation_total / max(
            1, self.support_total + self.violation_total)
        pending_pressure = len(self.deferred_ids) / max(1, len(self.active_ids))
        return coverage_gap + violation_mass + pending_pressure

    # ------------------------------------------------------------------
    # exact (re)initialisation — the cost of one full mine
    # ------------------------------------------------------------------
    def initialize(self, repository: DataRepository) -> List[CDDRule]:
        """Build exact sketches from the repository and regenerate the rules.

        Equivalent to (and interchangeable with) a full
        :func:`~repro.imputation.cdd.discover_cdd_rules` run: the returned
        rule set is identical.  Also used by ``hybrid`` mode as the drift
        escape hatch — it resets every approximation the incremental path
        may have accumulated.
        """
        config = self.config
        schema = self.schema
        samples = repository.samples
        self.samples_seen = len(samples)
        self.band_sketches = {}
        self.groups = {attribute: {} for attribute in schema}
        self.counters = {}
        self.retired_ids = set()
        self.deferred_ids = set()
        self.pairs_required = 0
        self.pairs_observed = 0
        self.support_total = 0
        self.violation_total = 0

        pairs = _sample_pairs(len(samples), config.max_pairs, config.seed)
        for i, j in pairs:
            left, right = samples[i], samples[j]
            distances = {attribute: text_distance(left[attribute],
                                                  right[attribute])
                         for attribute in schema}
            self._observe_band_pair(distances)

        for index, sample in enumerate(samples):
            for determinant in schema:
                value = sample[determinant]
                group = self.groups[determinant].setdefault(value, GroupState())
                group.member_indices.append(index)
        for determinant in schema:
            for group in self.groups[determinant].values():
                if group.size < 2:
                    continue
                for i, j in itertools.combinations(group.member_indices, 2):
                    left, right = samples[i], samples[j]
                    for dependent in schema:
                        if dependent == determinant:
                            continue
                        stat = group.dep_ranges.setdefault(dependent,
                                                           RangeStat())
                        stat.observe(text_distance(left[dependent],
                                                   right[dependent]))

        self.active_ids = set()
        self.rules = self._regenerate(promote_all=True)
        return self.rules

    # ------------------------------------------------------------------
    # incremental update
    # ------------------------------------------------------------------
    def absorb(self, repository: DataRepository,
               new_samples: Sequence[Record],
               force_full: bool = False) -> MaintenanceReport:
        """Fold newly added repository samples into the maintained rules.

        ``new_samples`` must already be present at the tail of
        ``repository.samples`` (the caller extends the repository first, so
        maintenance always sees the extended ``R``).  Returns the resulting
        rule set plus what happened to it.
        """
        added = list(new_samples)
        old_rules = list(self.rules)
        if force_full or len(repository) != self.samples_seen + len(added):
            # Forced re-mine, or the repository changed behind our back —
            # the sketches can no longer be trusted, resynchronise exactly.
            return self._full_resync(repository, old_rules)

        config = self.config
        schema = self.schema
        samples = repository.samples
        rng = random.Random(config.seed * 1_000_003 + self.samples_seen)

        budget = config.max_update_pairs
        observed = 0  # band/counter pairs, gated by max_update_pairs
        skipped = 0
        required = 0
        group_required_total = 0
        group_observed_total = 0
        rule_index, fallback = self._compile_rule_index()
        for offset, sample in enumerate(added):
            index = self.samples_seen + offset
            required += index
            remaining = budget - observed
            if remaining >= index:
                partner_indices: Sequence[int] = range(index)
            elif remaining > 0:
                partner_indices = sorted(rng.sample(range(index), remaining))
                skipped += index - remaining
            else:
                partner_indices = ()
                skipped += index
            for partner_index in partner_indices:
                partner = samples[partner_index]
                distances = {attribute: text_distance(sample[attribute],
                                                      partner[attribute])
                             for attribute in schema}
                self._observe_band_pair(distances)
                self._observe_rule_pair(sample, partner, distances,
                                        rule_index, fallback)
                observed += 1
            group_required, group_observed = self._observe_group_member(
                sample, index, samples, rng)
            group_required_total += group_required
            group_observed_total += group_observed

        skipped += group_required_total - group_observed_total
        self.samples_seen = len(samples)
        self.pairs_required += required + group_required_total
        self.pairs_observed += observed + group_observed_total

        newly_retired = self._retire_low_confidence()
        previous_active = set(self.active_ids)
        self.rules = self._regenerate()

        old_by_id = {rule.rule_id: rule for rule in old_rules}
        widened_ids: List[str] = []
        for rule in self.rules:
            previous = old_by_id.get(rule.rule_id)
            if previous is None:
                continue
            low, high = rule.dependent_interval
            prev_low, prev_high = previous.dependent_interval
            if low < prev_low - _EPS or high > prev_high + _EPS:
                widened_ids.append(rule.rule_id)
        promoted = sorted(self.active_ids - previous_active)

        drift = self.drift
        if (config.maintenance_mode == MAINTENANCE_HYBRID
                and drift > config.drift_threshold):
            report = self._full_resync(repository, old_rules)
            report.drift = drift
            return report

        return MaintenanceReport(
            rules=self.rules,
            rules_changed=_rule_signature(self.rules) != _rule_signature(old_rules),
            remined=False,
            drift=drift,
            promoted=promoted,
            retired=newly_retired,
            deferred=sorted(self.deferred_ids),
            widened=len(widened_ids),
            widened_ids=widened_ids,
            pairs_observed=observed + group_observed_total,
            pairs_skipped=skipped,
        )

    def _full_resync(self, repository: DataRepository,
                     old_rules: List[CDDRule]) -> MaintenanceReport:
        self.full_resyncs += 1
        rules = self.initialize(repository)
        return MaintenanceReport(
            rules=rules,
            rules_changed=_rule_signature(rules) != _rule_signature(old_rules),
            remined=True,
            drift=0.0,
        )

    # ------------------------------------------------------------------
    # per-pair observation
    # ------------------------------------------------------------------
    def _observe_band_pair(self, distances: Dict[str, float]) -> None:
        """Fold one sample pair's attribute distances into the band sketches."""
        bands = self.config.distance_bands
        for determinant in self.schema:
            det_distance = distances[determinant]
            matching_bands = [band for band in bands
                              if band[0] - _EPS <= det_distance <= band[1] + _EPS]
            if not matching_bands:
                continue
            for dependent in self.schema:
                if dependent == determinant:
                    continue
                dep_distance = distances[dependent]
                for band in matching_bands:
                    stat = self.band_sketches.setdefault(
                        (determinant, dependent, band), RangeStat())
                    stat.observe(dep_distance)

    def _compile_rule_index(self) -> Tuple[Dict[Tuple, List[CDDRule]],
                                           List[CDDRule]]:
        """Index the current rules by their determinant constraint keys.

        Scanning every rule for every update pair is the hot loop of an
        absorb; instead each rule is keyed by the sorted tuple of its
        non-vacuous determinant constraints (``("i", attr, band)`` /
        ``("c", attr, constant)``) so one pair only touches the rules whose
        determinants it actually satisfies.  Rules this scheme cannot key
        (more than two keyed constraints — the miner never emits them) fall
        back to the scan list.
        """
        index: Dict[Tuple, List[CDDRule]] = {}
        fallback: List[CDDRule] = []
        for rule in self.rules:
            keys = []
            for constraint in rule.determinants:
                if constraint.kind == CONSTRAINT_MISSING:
                    continue  # vacuously satisfied — not part of the key
                if constraint.kind == CONSTRAINT_CONSTANT:
                    keys.append(("c", constraint.attribute,
                                 constraint.constant))
                else:
                    keys.append(("i", constraint.attribute,
                                 constraint.interval))
            if len(keys) > 2:
                fallback.append(rule)
            else:
                index.setdefault(tuple(sorted(keys)), []).append(rule)
        return index, fallback

    def _observe_rule_pair(self, left: Record, right: Record,
                           distances: Dict[str, float],
                           rule_index: Dict[Tuple, List[CDDRule]],
                           fallback: Sequence[CDDRule]) -> None:
        """Update support/violation counters of the rules the pair fires."""
        bands = self.config.distance_bands
        satisfied: List[Tuple] = []
        for attribute in self.schema:
            distance = distances[attribute]
            for band in bands:
                if band[0] - _EPS <= distance <= band[1] + _EPS:
                    satisfied.append(("i", attribute, band))
            left_value = left[attribute]
            if left_value == right[attribute]:
                satisfied.append(("c", attribute, left_value))

        fired: List[CDDRule] = list(rule_index.get((), ()))
        for position, key in enumerate(satisfied):
            fired.extend(rule_index.get((key,), ()))
            for other in satisfied[position + 1:]:
                if other[1] == key[1]:
                    continue  # same attribute: cannot co-occur in one rule
                fired.extend(rule_index.get(tuple(sorted((key, other))), ()))
        for rule in fallback:
            if all(constraint.kind == CONSTRAINT_MISSING
                   or constraint.satisfied_by(left[constraint.attribute],
                                              right[constraint.attribute])
                   for constraint in rule.determinants):
                fired.append(rule)

        max_width = self.config.max_dependent_width
        for rule in fired:
            counters = self.counters.setdefault(rule.rule_id, RuleCounters())
            dep_distance = distances[rule.dependent]
            low, high = rule.dependent_interval
            if low - _EPS <= dep_distance <= high + _EPS:
                counters.support += 1
                self.support_total += 1
            elif widen_interval(rule.dependent_interval, dep_distance,
                                max_width) is not None:
                # The sketch absorbs the observation at the next regenerate;
                # a widenable excursion supports the dependency.
                counters.support += 1
                self.support_total += 1
            else:
                counters.violations += 1
                self.violation_total += 1

    def _observe_group_member(self, sample: Record, index: int,
                              samples: Sequence[Record],
                              rng: random.Random) -> Tuple[int, int]:
        """Join one new sample into its constant groups (bounded pairing).

        Returns ``(required, observed)`` group-pair counts so the caller can
        fold the cap-induced coverage gap into the drift estimate — a group
        larger than ``max_group_pairs_per_sample`` is maintained from a
        member subsample, which is exactly the kind of staleness ``hybrid``
        mode must be able to escape from.
        """
        cap = self.config.max_group_pairs_per_sample
        required = 0
        observed = 0
        for determinant in self.schema:
            value = sample[determinant]
            group = self.groups[determinant].setdefault(value, GroupState())
            partners = group.member_indices
            required += len(partners)
            if len(partners) > cap:
                partners = sorted(rng.sample(partners, cap))
            observed += len(partners)
            for partner_index in partners:
                partner = samples[partner_index]
                for dependent in self.schema:
                    if dependent == determinant:
                        continue
                    stat = group.dep_ranges.setdefault(dependent, RangeStat())
                    stat.observe(text_distance(sample[dependent],
                                               partner[dependent]))
            group.member_indices.append(index)
        return required, observed

    def _retire_low_confidence(self) -> List[str]:
        """Retire rules whose observed confidence fell below the floor."""
        config = self.config
        retired: List[str] = []
        for rule_id, counters in self.counters.items():
            if rule_id in self.retired_ids:
                continue
            if (counters.violations >= config.min_support
                    and counters.confidence < config.min_confidence):
                self.retired_ids.add(rule_id)
                retired.append(rule_id)
        return sorted(retired)

    # ------------------------------------------------------------------
    # rule regeneration from the sketches
    # ------------------------------------------------------------------
    def _regenerate(self, promote_all: bool = False,
                    promote: bool = True) -> List[CDDRule]:
        """Rebuild the rule list from the sketches, mirroring the full miner.

        The iteration order (dependents in schema order; per dependent the
        determinants in schema order, interval bands before constant groups,
        combined rules last) and every emission decision replicate
        :func:`~repro.imputation.cdd.discover_cdd_rules` exactly, so exact
        sketches imply an identical rule list.
        """
        config = self.config
        schema = self.schema
        if self.samples_seen < 2:
            self.deferred_ids = set()
            return []

        candidates: List[CDDRule] = []
        dependents_of: Dict[str, List[CDDRule]] = {
            dependent: [] for dependent in schema}
        for dependent in schema:
            for determinant in schema:
                if determinant == dependent:
                    continue
                for band in config.distance_bands:
                    stat = self.band_sketches.get((determinant, dependent, band))
                    if stat is None or stat.count == 0:
                        continue
                    rule = interval_rule_from_band(
                        determinant, dependent, band,
                        support=stat.count, dep_low=stat.low,
                        dep_high=stat.high, config=config)
                    if rule is not None:
                        dependents_of[dependent].append(rule)
                ranked = sorted(self.groups[determinant].items(),
                                key=lambda item: -item[1].size)
                for value, group in ranked[: config.max_constant_conditions]:
                    if group.size < config.min_support:
                        continue
                    stat = group.dep_ranges.get(dependent)
                    if stat is None or stat.count == 0:
                        continue
                    rule = constant_rule_from_group(
                        determinant, value, group.size, dependent,
                        dep_low=stat.low, dep_high=stat.high, config=config)
                    if rule is not None:
                        dependents_of[dependent].append(rule)
            candidates.extend(dependents_of[dependent])

        # Pending-pool promotion: qualifying ids not yet active enter the
        # pool; at most ``pending_pool_size`` (highest support first) are
        # promoted per update, the rest stay pending and count as drift.
        if promote_all:
            self.active_ids = {rule.rule_id for rule in candidates}
            self.deferred_ids = set()
        elif promote:
            pending = [rule for rule in candidates
                       if rule.rule_id not in self.active_ids
                       and rule.rule_id not in self.retired_ids]
            pending.sort(key=lambda rule: -rule.support)
            for rule in pending[: config.pending_pool_size]:
                self.active_ids.add(rule.rule_id)
            self.deferred_ids = {rule.rule_id
                                 for rule in pending[config.pending_pool_size:]}

        rules: List[CDDRule] = []
        for dependent in schema:
            emitted = [rule for rule in dependents_of[dependent]
                       if rule.rule_id in self.active_ids
                       and rule.rule_id not in self.retired_ids]
            rules.extend(emitted)
            if config.combine_determinants:
                singles = [rule for rule in emitted
                           if len(rule.determinants) == 1]
                combined = _combine_rules(singles, dependent, config)
                rules.extend(rule for rule in combined
                             if rule.rule_id not in self.retired_ids)
        return rules

    # ------------------------------------------------------------------
    # checkpoint round-trip
    # ------------------------------------------------------------------
    def state_to_dict(self) -> Dict:
        """JSON-serialisable snapshot of the maintained state.

        The current rules are *not* stored: they are regenerated
        deterministically from the sketches on restore.
        """
        return {
            "samples_seen": self.samples_seen,
            "band_sketches": [
                [determinant, dependent, list(band), stat.as_list()]
                for (determinant, dependent, band), stat
                in sorted(self.band_sketches.items())
            ],
            "groups": {
                determinant: [
                    [value, list(group.member_indices),
                     {dependent: stat.as_list()
                      for dependent, stat in sorted(group.dep_ranges.items())}]
                    for value, group in groups.items()
                ]
                for determinant, groups in self.groups.items()
            },
            "counters": {rule_id: [counters.support, counters.violations]
                         for rule_id, counters in sorted(self.counters.items())},
            "active_ids": sorted(self.active_ids),
            "retired_ids": sorted(self.retired_ids),
            "deferred_ids": sorted(self.deferred_ids),
            "pairs_required": self.pairs_required,
            "pairs_observed": self.pairs_observed,
            "support_total": self.support_total,
            "violation_total": self.violation_total,
            "full_resyncs": self.full_resyncs,
        }

    def restore_state(self, state: Dict) -> List[CDDRule]:
        """Rebuild the maintainer from a :meth:`state_to_dict` snapshot.

        The surrounding engine must hold the same (extended) repository the
        snapshot was taken over — member indices refer into its sample list.
        Returns the regenerated rule set.
        """
        self.samples_seen = int(state.get("samples_seen", 0))
        self.band_sketches = {}
        for determinant, dependent, band, stat in state.get("band_sketches", []):
            key = (determinant, dependent, (float(band[0]), float(band[1])))
            self.band_sketches[key] = RangeStat.from_list(stat)
        self.groups = {attribute: {} for attribute in self.schema}
        for determinant, groups in state.get("groups", {}).items():
            bucket = self.groups.setdefault(determinant, {})
            for value, member_indices, dep_ranges in groups:
                bucket[value] = GroupState(
                    member_indices=[int(index) for index in member_indices],
                    dep_ranges={dependent: RangeStat.from_list(stat)
                                for dependent, stat in dep_ranges.items()},
                )
        self.counters = {
            rule_id: RuleCounters(support=int(pair[0]), violations=int(pair[1]))
            for rule_id, pair in state.get("counters", {}).items()
        }
        self.active_ids = set(state.get("active_ids", []))
        self.retired_ids = set(state.get("retired_ids", []))
        self.deferred_ids = set(state.get("deferred_ids", []))
        self.pairs_required = int(state.get("pairs_required", 0))
        self.pairs_observed = int(state.get("pairs_observed", 0))
        self.support_total = int(state.get("support_total", 0))
        self.violation_total = int(state.get("violation_total", 0))
        self.full_resyncs = int(state.get("full_resyncs", 0))
        # No promotion on restore: the active/deferred sets must stay exactly
        # as snapshotted so the regenerated rules match the checkpoint.
        self.rules = self._regenerate(promote=False)
        return self.rules
