"""Differential dependencies (DDs) — the imputation baseline CDDs refine.

A DD [Song & Chen, TODS 2011] is a CDD whose determinant constraints are all
*distance intervals* (no constant conditions).  The paper compares against a
``DD+ER`` baseline whose rules, having looser constraints than CDDs, retrieve
more candidate samples, produce more imputed instances and are both slower
and slightly less accurate (Section 6.3).

We represent a DD as a thin wrapper around :class:`~repro.imputation.cdd.CDDRule`
restricted to interval constraints, so the same imputation machinery applies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.imputation.cdd import (
    CONSTRAINT_INTERVAL,
    MAINTENANCE_FULL,
    AttributeConstraint,
    CDDDiscoveryConfig,
    CDDRule,
    RuleError,
    _mine_interval_rules,
    _sample_pairs,
)
from repro.imputation.incremental import IncrementalRuleMaintainer
from repro.imputation.repository import DataRepository

#: DD mining uses wider bands than CDD mining: without constant conditions
#: the rules must cover the full determinant range to stay applicable.
DEFAULT_DD_BANDS: Tuple[Tuple[float, float], ...] = (
    (0.0, 0.3),
    (0.0, 0.5),
    (0.0, 0.7),
)


@dataclass(frozen=True)
class DDRule:
    """A differential dependency ``X → A_j`` with interval constraints only."""

    rule: CDDRule

    def __post_init__(self) -> None:
        for constraint in self.rule.determinants:
            if constraint.kind != CONSTRAINT_INTERVAL:
                raise RuleError("DD rules only allow interval constraints")

    @property
    def determinants(self) -> Tuple[AttributeConstraint, ...]:
        return self.rule.determinants

    @property
    def determinant_attributes(self) -> Tuple[str, ...]:
        return self.rule.determinant_attributes

    @property
    def dependent(self) -> str:
        return self.rule.dependent

    @property
    def dependent_interval(self) -> Tuple[float, float]:
        return self.rule.dependent_interval

    @property
    def support(self) -> int:
        return self.rule.support

    def applicable_to(self, record, missing_attribute: str) -> bool:
        """Delegate applicability to the wrapped CDD semantics."""
        return self.rule.applicable_to(record, missing_attribute)

    def matches_sample(self, record, sample) -> bool:
        """Delegate determinant-constraint checking to the wrapped rule."""
        return self.rule.matches_sample(record, sample)

    def describe(self) -> str:
        return "DD " + self.rule.describe()


@dataclass(frozen=True)
class DDDiscoveryConfig:
    """Knobs of the DD mining procedure (looser than CDD mining).

    The maintenance knobs mirror :class:`CDDDiscoveryConfig` so the DD
    baseline can run the same incremental sketch machinery (band sketches,
    pending pool, drift-triggered hybrid re-mine) via
    :class:`IncrementalDDMaintainer` — keeping ``DD+ER`` comparisons honest
    once the CDD side maintains rules incrementally.
    """

    max_dependent_width: float = 1.0
    min_support: int = 2
    max_pairs: int = 20_000
    distance_bands: Tuple[Tuple[float, float], ...] = DEFAULT_DD_BANDS
    seed: int = 17
    maintenance_mode: str = MAINTENANCE_FULL
    min_confidence: float = 0.5
    drift_threshold: float = 0.35
    pending_pool_size: int = 64
    max_update_pairs: int = 4000
    max_group_pairs_per_sample: int = 64

    def as_cdd_config(self) -> CDDDiscoveryConfig:
        """Translate into the shared mining configuration."""
        return CDDDiscoveryConfig(
            max_dependent_width=self.max_dependent_width,
            min_support=self.min_support,
            max_pairs=self.max_pairs,
            distance_bands=self.distance_bands,
            max_constant_conditions=0,
            combine_determinants=False,
            seed=self.seed,
            maintenance_mode=self.maintenance_mode,
            min_confidence=self.min_confidence,
            drift_threshold=self.drift_threshold,
            pending_pool_size=self.pending_pool_size,
            max_update_pairs=self.max_update_pairs,
            max_group_pairs_per_sample=self.max_group_pairs_per_sample,
        )

    def __post_init__(self) -> None:
        # Delegate validation (bands, supports, maintenance knobs) to the
        # shared CDD configuration so both miners reject the same inputs.
        self.as_cdd_config()


def discover_dd_rules(
    repository: DataRepository,
    config: Optional[DDDiscoveryConfig] = None,
    dependents: Optional[Iterable[str]] = None,
) -> List[DDRule]:
    """Mine differential dependencies from a complete data repository.

    The procedure mirrors CDD mining but only emits interval-constraint
    single-determinant rules with a wider tolerated dependent interval.
    """
    config = config or DDDiscoveryConfig()
    cdd_config = config.as_cdd_config()
    schema = repository.schema
    if len(repository) < 2:
        return []

    pairs = _sample_pairs(len(repository), cdd_config.max_pairs, cdd_config.seed)
    targets = list(dependents) if dependents is not None else list(schema)

    rules: List[DDRule] = []
    for dependent in targets:
        for determinant in schema:
            if determinant == dependent:
                continue
            for mined in _mine_interval_rules(repository, determinant, dependent,
                                              pairs, cdd_config):
                rules.append(DDRule(rule=mined))
    return rules


@dataclass
class DDMaintenanceReport:
    """Outcome of one :meth:`IncrementalDDMaintainer.absorb` call.

    The DD-typed mirror of
    :class:`~repro.imputation.incremental.MaintenanceReport`.
    """

    rules: List[DDRule]
    rules_changed: bool
    remined: bool
    drift: float
    promoted: List[str] = field(default_factory=list)
    retired: List[str] = field(default_factory=list)
    deferred: List[str] = field(default_factory=list)
    widened: int = 0
    widened_ids: List[str] = field(default_factory=list)
    pairs_observed: int = 0
    pairs_skipped: int = 0


class IncrementalDDMaintainer:
    """Maintains a DD rule set under repository extensions in O(batch).

    The DD baseline shares the CDD miner's band pass, so incremental
    maintenance is pure delegation: an
    :class:`~repro.imputation.incremental.IncrementalRuleMaintainer` runs
    over the DD-translated configuration (interval bands only — no constant
    groups qualify, no combined rules) and every emitted rule is wrapped
    back into a :class:`DDRule`.  ``initialize`` matches
    :func:`discover_dd_rules` exactly; ``absorb`` folds a batch into the
    band sketches without revisiting pre-existing repository pairs.
    """

    def __init__(self, config: Optional[DDDiscoveryConfig],
                 schema) -> None:
        self.config = config or DDDiscoveryConfig()
        self._inner = IncrementalRuleMaintainer(self.config.as_cdd_config(),
                                                schema)

    @property
    def rules(self) -> List[DDRule]:
        return [DDRule(rule=rule) for rule in self._inner.rules]

    @property
    def drift(self) -> float:
        return self._inner.drift

    @property
    def full_resyncs(self) -> int:
        return self._inner.full_resyncs

    def initialize(self, repository: DataRepository) -> List[DDRule]:
        """Exact sketch pass over the repository; equals a full DD mine."""
        return [DDRule(rule=rule)
                for rule in self._inner.initialize(repository)]

    def absorb(self, repository: DataRepository, added: Sequence,
               force_full: bool = False) -> DDMaintenanceReport:
        """Fold a batch of new samples into the sketches, regenerate rules."""
        report = self._inner.absorb(repository, added, force_full=force_full)
        return DDMaintenanceReport(
            rules=[DDRule(rule=rule) for rule in report.rules],
            rules_changed=report.rules_changed,
            remined=report.remined,
            drift=report.drift,
            promoted=list(report.promoted),
            retired=list(report.retired),
            deferred=list(report.deferred),
            widened=report.widened,
            widened_ids=list(report.widened_ids),
            pairs_observed=report.pairs_observed,
            pairs_skipped=report.pairs_skipped,
        )

    def state_to_dict(self) -> Dict:
        """Checkpointable sufficient statistics (delegated)."""
        return self._inner.state_to_dict()

    def restore_state(self, state: Dict) -> List[DDRule]:
        """Restore the sketches and return the regenerated DD rules."""
        return [DDRule(rule=rule)
                for rule in self._inner.restore_state(state)]


def dd_rules_as_cdds(rules: Iterable[DDRule]) -> List[CDDRule]:
    """Unwrap DD rules so the shared CDD imputer can consume them."""
    return [rule.rule for rule in rules]


def group_dd_rules_by_dependent(rules: Iterable[DDRule]) -> Dict[str, List[DDRule]]:
    """Bucket DD rules by dependent attribute."""
    grouped: Dict[str, List[DDRule]] = {}
    for rule in rules:
        grouped.setdefault(rule.dependent, []).append(rule)
    return grouped
