"""Differential dependencies (DDs) — the imputation baseline CDDs refine.

A DD [Song & Chen, TODS 2011] is a CDD whose determinant constraints are all
*distance intervals* (no constant conditions).  The paper compares against a
``DD+ER`` baseline whose rules, having looser constraints than CDDs, retrieve
more candidate samples, produce more imputed instances and are both slower
and slightly less accurate (Section 6.3).

We represent a DD as a thin wrapper around :class:`~repro.imputation.cdd.CDDRule`
restricted to interval constraints, so the same imputation machinery applies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.imputation.cdd import (
    CONSTRAINT_INTERVAL,
    AttributeConstraint,
    CDDDiscoveryConfig,
    CDDRule,
    RuleError,
    _mine_interval_rules,
    _sample_pairs,
)
from repro.imputation.repository import DataRepository

#: DD mining uses wider bands than CDD mining: without constant conditions
#: the rules must cover the full determinant range to stay applicable.
DEFAULT_DD_BANDS: Tuple[Tuple[float, float], ...] = (
    (0.0, 0.3),
    (0.0, 0.5),
    (0.0, 0.7),
)


@dataclass(frozen=True)
class DDRule:
    """A differential dependency ``X → A_j`` with interval constraints only."""

    rule: CDDRule

    def __post_init__(self) -> None:
        for constraint in self.rule.determinants:
            if constraint.kind != CONSTRAINT_INTERVAL:
                raise RuleError("DD rules only allow interval constraints")

    @property
    def determinants(self) -> Tuple[AttributeConstraint, ...]:
        return self.rule.determinants

    @property
    def determinant_attributes(self) -> Tuple[str, ...]:
        return self.rule.determinant_attributes

    @property
    def dependent(self) -> str:
        return self.rule.dependent

    @property
    def dependent_interval(self) -> Tuple[float, float]:
        return self.rule.dependent_interval

    @property
    def support(self) -> int:
        return self.rule.support

    def applicable_to(self, record, missing_attribute: str) -> bool:
        """Delegate applicability to the wrapped CDD semantics."""
        return self.rule.applicable_to(record, missing_attribute)

    def matches_sample(self, record, sample) -> bool:
        """Delegate determinant-constraint checking to the wrapped rule."""
        return self.rule.matches_sample(record, sample)

    def describe(self) -> str:
        return "DD " + self.rule.describe()


@dataclass(frozen=True)
class DDDiscoveryConfig:
    """Knobs of the DD mining procedure (looser than CDD mining)."""

    max_dependent_width: float = 1.0
    min_support: int = 2
    max_pairs: int = 20_000
    distance_bands: Tuple[Tuple[float, float], ...] = DEFAULT_DD_BANDS
    seed: int = 17

    def as_cdd_config(self) -> CDDDiscoveryConfig:
        """Translate into the shared mining configuration."""
        return CDDDiscoveryConfig(
            max_dependent_width=self.max_dependent_width,
            min_support=self.min_support,
            max_pairs=self.max_pairs,
            distance_bands=self.distance_bands,
            max_constant_conditions=0,
            combine_determinants=False,
            seed=self.seed,
        )


def discover_dd_rules(
    repository: DataRepository,
    config: Optional[DDDiscoveryConfig] = None,
    dependents: Optional[Iterable[str]] = None,
) -> List[DDRule]:
    """Mine differential dependencies from a complete data repository.

    The procedure mirrors CDD mining but only emits interval-constraint
    single-determinant rules with a wider tolerated dependent interval.
    """
    config = config or DDDiscoveryConfig()
    cdd_config = config.as_cdd_config()
    schema = repository.schema
    if len(repository) < 2:
        return []

    pairs = _sample_pairs(len(repository), cdd_config.max_pairs, cdd_config.seed)
    targets = list(dependents) if dependents is not None else list(schema)

    rules: List[DDRule] = []
    for dependent in targets:
        for determinant in schema:
            if determinant == dependent:
                continue
            for mined in _mine_interval_rules(repository, determinant, dependent,
                                              pairs, cdd_config):
                rules.append(DDRule(rule=mined))
    return rules


def dd_rules_as_cdds(rules: Iterable[DDRule]) -> List[CDDRule]:
    """Unwrap DD rules so the shared CDD imputer can consume them."""
    return [rule.rule for rule in rules]


def group_dd_rules_by_dependent(rules: Iterable[DDRule]) -> Dict[str, List[DDRule]]:
    """Bucket DD rules by dependent attribute."""
    grouped: Dict[str, List[DDRule]] = {}
    for rule in rules:
        grouped.setdefault(rule.dependent, []).append(rule)
    return grouped
