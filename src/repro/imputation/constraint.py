"""Constraint-based (stream-neighbour) imputation — the ``con+ER`` baseline.

The ``con+ER`` baseline of the paper [Zhang et al., SIGMOD 2016] imputes a
missing attribute from *other tuples of the data streams themselves* rather
than from the repository: the incomplete tuple is compared against recently
seen complete tuples, and the dependent values of the most similar neighbours
(subject to a similarity constraint) are used as candidates.  The paper notes
this is fast (no repository access) but the least accurate method because it
ignores the semantic association between attributes (Section 6.3).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.core.similarity import attribute_similarity
from repro.core.tuples import ImputedRecord, Record, Schema


@dataclass
class StreamConstraintImputer:
    """Impute from the most similar recently-seen complete stream tuples.

    Parameters
    ----------
    schema:
        Shared attribute schema.
    history_size:
        Number of recent complete tuples retained as imputation donors.
    min_similarity:
        Constraint on the (normalised) similarity over non-missing attributes
        a donor must reach to contribute candidates.
    top_k:
        Number of nearest donors whose values form the candidate
        distribution.
    """

    schema: Schema
    history_size: int = 200
    min_similarity: float = 0.2
    top_k: int = 3
    _history: Deque[Record] = field(default_factory=deque, repr=False)

    def observe(self, record: Record) -> None:
        """Add a stream tuple to the donor history (complete tuples only)."""
        if not record.is_complete(self.schema):
            return
        self._history.append(record)
        while len(self._history) > self.history_size:
            self._history.popleft()

    def _donor_similarity(self, record: Record, donor: Record) -> float:
        """Average per-attribute similarity over the record's present attributes."""
        present = [name for name in self.schema if not record.is_missing(name)]
        if not present:
            return 0.0
        total = sum(attribute_similarity(record, donor, name) for name in present)
        return total / len(present)

    def candidate_distribution(self, record: Record,
                               attribute: str) -> Dict[str, float]:
        """Candidate values for one missing attribute from nearby donors."""
        scored: List[tuple] = []
        for donor in self._history:
            if donor.rid == record.rid and donor.source == record.source:
                continue
            similarity = self._donor_similarity(record, donor)
            if similarity >= self.min_similarity:
                value = donor[attribute]
                if value is not None:
                    scored.append((similarity, value))
        if not scored:
            return {}
        scored.sort(key=lambda item: -item[0])
        top = scored[: self.top_k]
        weight_total = sum(weight for weight, _ in top)
        distribution: Dict[str, float] = {}
        for weight, value in top:
            distribution[value] = distribution.get(value, 0.0) + weight / weight_total
        return distribution

    def impute(self, record: Record) -> ImputedRecord:
        """Impute every missing attribute from the donor history."""
        candidates: Dict[str, Dict[str, float]] = {}
        for attribute in record.missing_attributes(self.schema):
            distribution = self.candidate_distribution(record, attribute)
            if distribution:
                candidates[attribute] = distribution
        return ImputedRecord(base=record, schema=self.schema, candidates=candidates)

    def history_snapshot(self) -> List[Record]:
        """Current donor history (oldest first) — mainly for tests."""
        return list(self._history)
