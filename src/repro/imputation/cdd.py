"""Conditional differential dependencies (CDDs): rule model and discovery.

A CDD (Definition 3) has the form ``(X → A_j, φ[X A_j])`` where every
determinant attribute ``A_x ∈ X`` carries either a *distance constraint*
``[ε_min, ε_max]`` on the Jaccard distance between the two tuples' values, or
a *constant constraint* ``A_x = v`` (both tuples take the exact value ``v``),
and the dependent attribute carries a distance constraint ``A_j.I``.  Two
tuples that agree on all determinant constraints are required to have a
dependent-attribute distance inside ``A_j.I``.

Rule discovery follows the recipe in Section 2.2 (CDD Rule Detection): for
every dependent attribute and every candidate determinant attribute we mine
differential bands from sample pairs of the repository, tightening to
editing-rule-style constant conditions when the plain differential band is
not selective enough, and we additionally combine pairs of single-attribute
rules into two-attribute rules (the Gender+Symptom → Diagnosis shape of the
running example).
"""

from __future__ import annotations

import functools
import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.similarity import text_distance
from repro.core.tuples import Record, Schema
from repro.imputation.repository import DataRepository

CONSTRAINT_INTERVAL = "interval"
CONSTRAINT_CONSTANT = "constant"
CONSTRAINT_MISSING = "missing"

#: Rule-maintenance modes for the evolving repository (Section 5.5).
#:
#: * ``full`` — ``add_repository_samples`` never touches the rules unless a
#:   re-mine is requested explicitly; a re-mine runs the full miner (exact).
#: * ``incremental`` — every repository extension updates the rules through
#:   the :class:`~repro.imputation.incremental.IncrementalRuleMaintainer`
#:   sufficient statistics (O(batch), never O(repository)).
#: * ``hybrid`` — incremental updates, plus an automatic full re-mine when
#:   the maintainer's drift estimate exceeds ``drift_threshold``.
MAINTENANCE_FULL = "full"
MAINTENANCE_INCREMENTAL = "incremental"
MAINTENANCE_HYBRID = "hybrid"
MAINTENANCE_MODES = (MAINTENANCE_FULL, MAINTENANCE_INCREMENTAL,
                     MAINTENANCE_HYBRID)

#: Distance bands examined when mining interval constraints.  Each band is a
#: candidate ``[ε_min, ε_max]`` on the determinant attribute.
DEFAULT_DISTANCE_BANDS: Tuple[Tuple[float, float], ...] = (
    (0.0, 0.2),
    (0.0, 0.4),
    (0.2, 0.5),
    (0.0, 0.6),
)


class RuleError(ValueError):
    """Raised when a rule is built with inconsistent constraints."""


@dataclass(frozen=True)
class AttributeConstraint:
    """Constraint function φ[A_x] of one determinant attribute.

    ``kind`` is one of:

    * ``interval`` – the Jaccard distance between the two tuples' values must
      fall inside ``interval`` (inclusive);
    * ``constant`` – both tuples must take exactly the value ``constant``;
    * ``missing`` – the attribute is marked missing (interval ``[-1, -1]`` in
      the paper's aR-tree encoding); the constraint is vacuously true and the
      attribute is not indexed.
    """

    attribute: str
    kind: str
    interval: Tuple[float, float] = (0.0, 1.0)
    constant: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in (CONSTRAINT_INTERVAL, CONSTRAINT_CONSTANT, CONSTRAINT_MISSING):
            raise RuleError(f"unknown constraint kind {self.kind!r}")
        if self.kind == CONSTRAINT_INTERVAL:
            low, high = self.interval
            if not (0.0 <= low < high <= 1.0 + 1e-9):
                raise RuleError(
                    f"invalid distance interval {self.interval} for {self.attribute}")
        if self.kind == CONSTRAINT_CONSTANT and self.constant is None:
            raise RuleError(f"constant constraint on {self.attribute} needs a value")

    def satisfied_by(self, left_value: Optional[str], right_value: Optional[str]) -> bool:
        """Check ``(r_1, r_2) ≍ φ[A_x]`` for one attribute of two tuples."""
        if self.kind == CONSTRAINT_MISSING:
            return True
        if left_value is None or right_value is None:
            return False
        if self.kind == CONSTRAINT_CONSTANT:
            return left_value == self.constant and right_value == self.constant
        low, high = self.interval
        distance = text_distance(left_value, right_value)
        return low - 1e-9 <= distance <= high + 1e-9

    def describe(self) -> str:
        """Human-readable rendering used in logs and examples."""
        if self.kind == CONSTRAINT_CONSTANT:
            return f"{self.attribute}={self.constant!r}"
        if self.kind == CONSTRAINT_MISSING:
            return f"{self.attribute}=[-1,-1]"
        low, high = self.interval
        return f"{self.attribute}∈[{low:.2f},{high:.2f}]"


@dataclass(frozen=True)
class CDDRule:
    """A conditional differential dependency ``(X → A_j, φ[X A_j])``."""

    determinants: Tuple[AttributeConstraint, ...]
    dependent: str
    dependent_interval: Tuple[float, float]
    support: int = 0
    rule_id: str = ""

    def __post_init__(self) -> None:
        if not self.determinants:
            raise RuleError("a CDD needs at least one determinant attribute")
        names = [constraint.attribute for constraint in self.determinants]
        if len(set(names)) != len(names):
            raise RuleError("duplicate determinant attribute in CDD")
        if self.dependent in names:
            raise RuleError("dependent attribute cannot also be a determinant")
        low, high = self.dependent_interval
        if not (0.0 <= low <= high <= 1.0 + 1e-9):
            raise RuleError(f"invalid dependent interval {self.dependent_interval}")

    @functools.cached_property
    def determinant_attributes(self) -> Tuple[str, ...]:
        """Names of the determinant attributes ``X`` (cached: the rule is
        frozen, and index grouping reads this on every rule per install)."""
        return tuple(constraint.attribute for constraint in self.determinants)

    @property
    def dependent_width(self) -> float:
        """Width of the dependent distance interval (smaller = tighter rule)."""
        low, high = self.dependent_interval
        return high - low

    def constraint_for(self, attribute: str) -> Optional[AttributeConstraint]:
        """The determinant constraint on ``attribute`` (None when absent)."""
        for constraint in self.determinants:
            if constraint.attribute == attribute:
                return constraint
        return None

    def applicable_to(self, record: Record, missing_attribute: str) -> bool:
        """Can this rule impute ``missing_attribute`` of ``record``?

        The rule must target the missing attribute and every non-``missing``
        determinant constraint must refer to a *present* attribute of the
        record (we cannot evaluate a distance against a missing value).
        """
        if self.dependent != missing_attribute:
            return False
        for constraint in self.determinants:
            if constraint.kind == CONSTRAINT_MISSING:
                continue
            if record.is_missing(constraint.attribute):
                return False
            if constraint.kind == CONSTRAINT_CONSTANT:
                if record[constraint.attribute] != constraint.constant:
                    return False
        return True

    def matches_sample(self, record: Record, sample: Record) -> bool:
        """Do ``record`` and ``sample`` satisfy all determinant constraints?"""
        for constraint in self.determinants:
            if not constraint.satisfied_by(record[constraint.attribute],
                                           sample[constraint.attribute]):
                return False
        return True

    def dependent_satisfied(self, left_value: str, right_value: str) -> bool:
        """Is the dependent-attribute distance within ``A_j.I``?"""
        low, high = self.dependent_interval
        distance = text_distance(left_value, right_value)
        return low - 1e-9 <= distance <= high + 1e-9

    def holds_for(self, left: Record, right: Record) -> bool:
        """Full CDD semantics on a pair: determinants satisfied ⇒ dependent in I."""
        if not self.matches_sample(left, right):
            return True
        left_value = left[self.dependent]
        right_value = right[self.dependent]
        if left_value is None or right_value is None:
            return True
        return self.dependent_satisfied(left_value, right_value)

    def describe(self) -> str:
        """Paper-style rendering, e.g. ``A B -> C, {a1, [0,0.1], [0,0.1]}``."""
        lhs = " ".join(self.determinant_attributes)
        constraints = ", ".join(c.describe() for c in self.determinants)
        low, high = self.dependent_interval
        return f"{lhs} -> {self.dependent}, {{{constraints}, [{low:.2f},{high:.2f}]}}"


@dataclass(frozen=True)
class CDDDiscoveryConfig:
    """Knobs of the CDD mining procedure and of rule maintenance.

    The first block parameterises the offline miner
    (:func:`discover_cdd_rules`); the ``maintenance_*`` block parameterises
    how rules evolve when the repository absorbs new samples
    (:class:`~repro.imputation.incremental.IncrementalRuleMaintainer`):

    maintenance_mode:
        ``full`` (default, re-mine on request only), ``incremental``
        (sketch-based O(batch) updates) or ``hybrid`` (incremental with an
        automatic full re-mine once ``drift_threshold`` is exceeded).
    min_confidence:
        Rules whose observed pair confidence (support over support plus
        violations) falls below this are retired by the maintainer.
    drift_threshold:
        Upper bound on the maintainer's divergence estimate (skipped-pair
        coverage gap + violation mass + deferred-promotion pressure) before
        ``hybrid`` mode schedules a full re-mine.
    pending_pool_size:
        Maximum number of candidate rules promoted from the pending pool per
        update; excess candidates stay pending for later updates.
    max_update_pairs:
        Pair budget of one incremental update (new-sample x repository
        pairs); pairs beyond the budget are skipped and counted as drift.
    max_group_pairs_per_sample:
        Cap on the existing group members a new sample is paired with when
        maintaining one constant-condition group's dependent-distance range.
    """

    max_dependent_width: float = 0.6
    min_support: int = 2
    max_pairs: int = 20_000
    distance_bands: Tuple[Tuple[float, float], ...] = DEFAULT_DISTANCE_BANDS
    max_constant_conditions: int = 25
    combine_determinants: bool = True
    max_combined_rules: int = 200
    seed: int = 13
    maintenance_mode: str = MAINTENANCE_FULL
    min_confidence: float = 0.5
    drift_threshold: float = 0.35
    pending_pool_size: int = 64
    max_update_pairs: int = 4000
    max_group_pairs_per_sample: int = 64

    def __post_init__(self) -> None:
        if self.maintenance_mode not in MAINTENANCE_MODES:
            raise RuleError(
                f"unknown maintenance mode {self.maintenance_mode!r}; "
                f"expected one of {MAINTENANCE_MODES}")
        if not 0.0 < self.min_confidence <= 1.0:
            raise RuleError(
                f"min_confidence must be in (0, 1], got {self.min_confidence}")
        if self.drift_threshold <= 0.0:
            raise RuleError(
                f"drift_threshold must be positive, got {self.drift_threshold}")
        if self.pending_pool_size < 1:
            raise RuleError(
                f"pending_pool_size must be >= 1, got {self.pending_pool_size}")
        if self.max_update_pairs < 1:
            raise RuleError(
                f"max_update_pairs must be >= 1, got {self.max_update_pairs}")
        if self.max_group_pairs_per_sample < 1:
            raise RuleError(
                "max_group_pairs_per_sample must be >= 1, "
                f"got {self.max_group_pairs_per_sample}")


def _sample_pairs(count: int, max_pairs: int, seed: int) -> List[Tuple[int, int]]:
    """All index pairs when small, otherwise a deterministic random sample."""
    total = count * (count - 1) // 2
    if total <= max_pairs:
        return [(i, j) for i in range(count) for j in range(i + 1, count)]
    rng = random.Random(seed)
    pairs = set()
    while len(pairs) < max_pairs:
        i = rng.randrange(count)
        j = rng.randrange(count)
        if i == j:
            continue
        pairs.add((min(i, j), max(i, j)))
    return sorted(pairs)


def interval_rule_from_band(
    determinant: str,
    dependent: str,
    band: Tuple[float, float],
    support: int,
    dep_low: float,
    dep_high: float,
    config: CDDDiscoveryConfig,
) -> Optional[CDDRule]:
    """Emission decision of the interval miner from a band's statistics.

    Shared between :func:`discover_cdd_rules` and the incremental maintainer
    (:mod:`repro.imputation.incremental`), so the two paths can never
    disagree on when a band qualifies or how the rule is rendered.
    """
    if support < config.min_support:
        return None
    if dep_high - dep_low > config.max_dependent_width:
        return None
    low, high = band
    constraint = AttributeConstraint(attribute=determinant,
                                     kind=CONSTRAINT_INTERVAL,
                                     interval=band)
    return CDDRule(
        determinants=(constraint,),
        dependent=dependent,
        dependent_interval=(dep_low, min(1.0, dep_high)),
        support=support,
        rule_id=f"cdd:{determinant}->{dependent}:band[{low:.2f},{high:.2f}]",
    )


def constant_rule_from_group(
    determinant: str,
    value: str,
    group_size: int,
    dependent: str,
    dep_low: float,
    dep_high: float,
    config: CDDDiscoveryConfig,
) -> Optional[CDDRule]:
    """Emission decision of the constant-condition miner from group stats.

    ``group_size`` is the number of repository samples taking the constant
    ``value``; ``dep_low``/``dep_high`` bound the dependent-attribute
    distances over the group's sample pairs.  Shared with the incremental
    maintainer like :func:`interval_rule_from_band`.
    """
    if group_size < config.min_support:
        return None
    if dep_high - dep_low > config.max_dependent_width:
        return None
    constraint = AttributeConstraint(attribute=determinant,
                                     kind=CONSTRAINT_CONSTANT,
                                     constant=value)
    # The full constant value keeps the id unique: rule ids key the
    # incremental maintainer's counters / retirement / promotion state, so
    # two distinct constants must never share an id (a truncated prefix
    # would conflate them and retire both when one dependency breaks).
    return CDDRule(
        determinants=(constraint,),
        dependent=dependent,
        dependent_interval=(dep_low, min(1.0, dep_high)),
        support=group_size,
        rule_id=f"cdd:{determinant}={value}->{dependent}",
    )


def _mine_interval_rules(
    repository: DataRepository,
    determinant: str,
    dependent: str,
    pairs: Sequence[Tuple[int, int]],
    config: CDDDiscoveryConfig,
) -> List[CDDRule]:
    """Mine interval-constraint rules ``A_x → A_j`` from sampled pairs."""
    samples = repository.samples
    rules: List[CDDRule] = []
    for band in config.distance_bands:
        low, high = band
        dependent_distances: List[float] = []
        for i, j in pairs:
            left, right = samples[i], samples[j]
            det_distance = text_distance(left[determinant], right[determinant])
            if low - 1e-9 <= det_distance <= high + 1e-9:
                dependent_distances.append(
                    text_distance(left[dependent], right[dependent]))
        if not dependent_distances:
            continue
        rule = interval_rule_from_band(
            determinant, dependent, band,
            support=len(dependent_distances),
            dep_low=min(dependent_distances),
            dep_high=max(dependent_distances),
            config=config)
        if rule is not None:
            rules.append(rule)
    return rules


def _mine_constant_rules(
    repository: DataRepository,
    determinant: str,
    dependent: str,
    config: CDDDiscoveryConfig,
) -> List[CDDRule]:
    """Mine constant-condition rules (editing-rule shape) ``A_x=v → A_j``."""
    groups: Dict[str, List[Record]] = {}
    for sample in repository.samples:
        groups.setdefault(sample[determinant], []).append(sample)  # type: ignore[arg-type]

    ranked = sorted(groups.items(), key=lambda item: -len(item[1]))
    rules: List[CDDRule] = []
    for value, members in ranked[: config.max_constant_conditions]:
        if len(members) < config.min_support:
            continue
        distances = [
            text_distance(left[dependent], right[dependent])
            for left, right in itertools.combinations(members, 2)
        ]
        if not distances:
            continue
        rule = constant_rule_from_group(
            determinant, value, len(members), dependent,
            dep_low=min(distances), dep_high=max(distances), config=config)
        if rule is not None:
            rules.append(rule)
    return rules


def _combine_rules(rules: Sequence[CDDRule], dependent: str,
                   config: CDDDiscoveryConfig) -> List[CDDRule]:
    """Combine single-determinant rules into two-determinant rules.

    The combined rule requires both determinant constraints and takes the
    tighter (intersection) dependent interval, mirroring the lattice Level 2
    of the CDD-index.
    """
    combined: List[CDDRule] = []
    for left, right in itertools.combinations(rules, 2):
        if left.determinant_attributes == right.determinant_attributes:
            continue
        if set(left.determinant_attributes) & set(right.determinant_attributes):
            continue
        low = max(left.dependent_interval[0], right.dependent_interval[0])
        high = min(left.dependent_interval[1], right.dependent_interval[1])
        if low > high:
            # Disjoint dependent intervals: fall back to their union so the
            # combined rule stays sound (it only ever widens the constraint).
            low = min(left.dependent_interval[0], right.dependent_interval[0])
            high = max(left.dependent_interval[1], right.dependent_interval[1])
        combined.append(CDDRule(
            determinants=left.determinants + right.determinants,
            dependent=dependent,
            dependent_interval=(low, high),
            support=min(left.support, right.support),
            rule_id=f"{left.rule_id}+{right.rule_id}",
        ))
        if len(combined) >= config.max_combined_rules:
            break
    return combined


def discover_cdd_rules(
    repository: DataRepository,
    config: Optional[CDDDiscoveryConfig] = None,
    dependents: Optional[Iterable[str]] = None,
) -> List[CDDRule]:
    """Mine CDD rules from a complete data repository.

    For every dependent attribute ``A_j`` (all schema attributes by default)
    and every other attribute ``A_x`` the miner emits:

    * interval-constraint rules for each distance band whose induced
      dependent interval is tight enough;
    * constant-condition rules for frequent constants of ``A_x`` whose group
      agrees on ``A_j`` within a tight interval;
    * two-determinant combinations of the above (optional).
    """
    config = config or CDDDiscoveryConfig()
    schema = repository.schema
    if len(repository) < 2:
        return []

    pairs = _sample_pairs(len(repository), config.max_pairs, config.seed)
    targets = list(dependents) if dependents is not None else list(schema)

    all_rules: List[CDDRule] = []
    for dependent in targets:
        per_dependent: List[CDDRule] = []
        for determinant in schema:
            if determinant == dependent:
                continue
            per_dependent.extend(
                _mine_interval_rules(repository, determinant, dependent, pairs, config))
            per_dependent.extend(
                _mine_constant_rules(repository, determinant, dependent, config))
        if config.combine_determinants:
            singles = [rule for rule in per_dependent
                       if len(rule.determinants) == 1]
            per_dependent.extend(_combine_rules(singles, dependent, config))
        all_rules.extend(per_dependent)
    return all_rules


def rules_for_attribute(rules: Iterable[CDDRule], dependent: str) -> List[CDDRule]:
    """Filter a rule collection down to one dependent attribute."""
    return [rule for rule in rules if rule.dependent == dependent]


def group_rules_by_dependent(rules: Iterable[CDDRule]) -> Dict[str, List[CDDRule]]:
    """Bucket rules by dependent attribute (the CDD-index is built per A_j)."""
    grouped: Dict[str, List[CDDRule]] = {}
    for rule in rules:
        grouped.setdefault(rule.dependent, []).append(rule)
    return grouped
