"""repro — a reproduction of "Online Topic-Aware Entity Resolution Over
Incomplete Data Streams" (TER-iDS, SIGMOD 2021).

The package implements the full TER-iDS system from scratch:

* the incomplete data stream / sliding window model and the probabilistic
  imputed-tuple model;
* CDD / DD / editing-rule / constraint-based imputation with rule discovery
  from a complete data repository;
* the pruning strategies (topic keyword, similarity upper bound, Paley–
  Zygmund probability upper bound, instance-pair-level);
* the index substrates (aR-tree, CDD-index, DR-index, ER-grid, cost-model
  pivot selection) and the index-join streaming engine;
* the baselines, synthetic dataset generators, metrics and the experiment
  harness regenerating every table and figure of the evaluation.

Quickstart::

    from repro import generate_dataset, TERiDSConfig, TERiDSEngine

    workload = generate_dataset("citations", missing_rate=0.3)
    config = TERiDSConfig(schema=workload.schema, keywords=workload.keywords,
                          window_size=50)
    engine = TERiDSEngine(repository=workload.repository, config=config)
    report = engine.run(workload.interleaved_records())
    print(len(report.matches), "topic-related matching pairs")
"""

from repro.baselines import (
    ALL_BASELINES,
    METHOD_CDD_ER,
    METHOD_CON_ER,
    METHOD_DD_ER,
    METHOD_ER_ER,
    METHOD_IJ_GER,
    METHOD_TER_IDS,
    build_baseline,
)
from repro.core import (
    EngineReport,
    EntityResultSet,
    ImputedRecord,
    IncompleteDataStream,
    Instance,
    MatchPair,
    PruningPipeline,
    PruningStats,
    Record,
    RecordSynopsis,
    Schema,
    SlidingWindow,
    StreamSet,
    TERiDSConfig,
    TERiDSEngine,
    jaccard_distance,
    jaccard_similarity,
    record_similarity,
    ter_ids_probability,
    tokenize,
)
from repro.datasets import DATASET_PROFILES, Workload, generate_dataset
from repro.experiments import make_workload, run_method, run_methods
from repro.imputation import (
    CDDImputer,
    CDDRule,
    DataRepository,
    DDRule,
    discover_cdd_rules,
    discover_dd_rules,
    discover_editing_rules,
)
from repro.indexes import ARTree, CDDIndex, DRIndex, ERGrid, PivotTable, select_pivots
from repro.metrics import AccuracyReport, evaluate_matches
from repro.persistence import (
    load_checkpoint,
    load_matches,
    load_repository,
    load_rules,
    save_checkpoint,
    save_matches,
    save_repository,
    save_rules,
)
from repro.ingest import (
    BatchPolicy,
    CallbackSource,
    IngestDriver,
    IngestReport,
    ReplaySource,
    SyntheticRateSource,
    WatermarkClock,
)
from repro.runtime import (
    Executor,
    IngestStats,
    MicroBatchExecutor,
    Pipeline,
    RuntimeContext,
    SerialExecutor,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_BASELINES",
    "ARTree",
    "AccuracyReport",
    "BatchPolicy",
    "CDDImputer",
    "CallbackSource",
    "CDDIndex",
    "CDDRule",
    "DATASET_PROFILES",
    "DDRule",
    "DRIndex",
    "DataRepository",
    "ERGrid",
    "EngineReport",
    "EntityResultSet",
    "Executor",
    "ImputedRecord",
    "IncompleteDataStream",
    "IngestDriver",
    "IngestReport",
    "IngestStats",
    "Instance",
    "MatchPair",
    "MicroBatchExecutor",
    "METHOD_CDD_ER",
    "METHOD_CON_ER",
    "METHOD_DD_ER",
    "METHOD_ER_ER",
    "METHOD_IJ_GER",
    "METHOD_TER_IDS",
    "Pipeline",
    "PivotTable",
    "PruningPipeline",
    "PruningStats",
    "Record",
    "RecordSynopsis",
    "ReplaySource",
    "RuntimeContext",
    "Schema",
    "SerialExecutor",
    "SlidingWindow",
    "StreamSet",
    "SyntheticRateSource",
    "WatermarkClock",
    "TERiDSConfig",
    "TERiDSEngine",
    "Workload",
    "build_baseline",
    "discover_cdd_rules",
    "discover_dd_rules",
    "discover_editing_rules",
    "evaluate_matches",
    "generate_dataset",
    "jaccard_distance",
    "jaccard_similarity",
    "load_checkpoint",
    "load_matches",
    "load_repository",
    "load_rules",
    "make_workload",
    "save_checkpoint",
    "save_matches",
    "save_repository",
    "save_rules",
    "record_similarity",
    "run_method",
    "run_methods",
    "select_pivots",
    "ter_ids_probability",
    "tokenize",
    "__version__",
]
