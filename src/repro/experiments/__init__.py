"""Experiment harness and per-figure runners replicating the evaluation."""

from repro.experiments.harness import (
    MethodResult,
    default_config,
    format_rows,
    make_workload,
    run_baseline_method,
    run_method,
    run_methods,
    run_ter_ids,
)
from repro.experiments.params import (
    BENCH_GRID,
    EVALUATION_DATASETS,
    PAPER_DEFAULTS,
    PAPER_GRID,
    ParameterGrid,
)

__all__ = [
    "BENCH_GRID",
    "EVALUATION_DATASETS",
    "MethodResult",
    "PAPER_DEFAULTS",
    "PAPER_GRID",
    "ParameterGrid",
    "default_config",
    "format_rows",
    "make_workload",
    "run_baseline_method",
    "run_method",
    "run_methods",
    "run_ter_ids",
]
