"""Experiment parameter grid (Table 5 of the paper).

Default values are in **bold** in the paper and are exposed here both as the
full sweep lists (used by the per-figure benches) and as the default values
the other parameters are held at while one of them is varied.

Window sizes and dataset scales are divided down for the pure-Python
benchmark harness; the *relative* sweep shape (e.g. window sizes spanning a
6x range) is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

# ---------------------------------------------------------------------------
# Paper parameter grid (Table 5) — original values.
# ---------------------------------------------------------------------------
PAPER_ALPHA_VALUES: Tuple[float, ...] = (0.1, 0.2, 0.5, 0.8, 0.9)
PAPER_RHO_VALUES: Tuple[float, ...] = (0.3, 0.4, 0.5, 0.6, 0.7)
PAPER_MISSING_RATES: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5, 0.8)
PAPER_WINDOW_SIZES: Tuple[int, ...] = (500, 800, 1000, 2000, 3000)
PAPER_REPOSITORY_RATIOS: Tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5)
PAPER_MISSING_ATTRIBUTES: Tuple[int, ...] = (1, 2, 3)

PAPER_DEFAULTS: Dict[str, object] = {
    "alpha": 0.5,
    "rho": 0.5,
    "missing_rate": 0.3,
    "window_size": 1000,
    "repository_ratio": 0.3,
    "missing_attributes": 1,
}

# ---------------------------------------------------------------------------
# Scaled values used by the benchmark harness (window sizes divided by ~20 so
# that a full sweep over all methods stays in the seconds range in Python).
# ---------------------------------------------------------------------------
BENCH_WINDOW_SIZES: Tuple[int, ...] = (25, 40, 50, 100, 150)
BENCH_DEFAULT_WINDOW: int = 50
BENCH_DEFAULT_SCALE: float = 0.5

#: Dataset profiles used in the evaluation (Table 4 order).
EVALUATION_DATASETS: Tuple[str, ...] = ("citations", "anime", "bikes",
                                        "ebooks", "songs")


@dataclass(frozen=True)
class ParameterGrid:
    """The full sweep grid with its defaults, paper-scale or bench-scale."""

    alpha_values: Tuple[float, ...] = PAPER_ALPHA_VALUES
    rho_values: Tuple[float, ...] = PAPER_RHO_VALUES
    missing_rates: Tuple[float, ...] = PAPER_MISSING_RATES
    window_sizes: Tuple[int, ...] = BENCH_WINDOW_SIZES
    repository_ratios: Tuple[float, ...] = PAPER_REPOSITORY_RATIOS
    missing_attribute_counts: Tuple[int, ...] = PAPER_MISSING_ATTRIBUTES
    default_alpha: float = 0.5
    default_rho: float = 0.5
    default_missing_rate: float = 0.3
    default_window_size: int = BENCH_DEFAULT_WINDOW
    default_repository_ratio: float = 0.3
    default_missing_attributes: int = 1
    dataset_scale: float = BENCH_DEFAULT_SCALE

    def as_table(self) -> List[Dict[str, object]]:
        """Rows replicating Table 5 (parameter, sweep values, default)."""
        return [
            {"parameter": "probabilistic threshold alpha",
             "values": list(self.alpha_values), "default": self.default_alpha},
            {"parameter": "ratio rho of similarity threshold gamma w.r.t. dimensionality",
             "values": list(self.rho_values), "default": self.default_rho},
            {"parameter": "missing rate xi of incomplete tuples",
             "values": list(self.missing_rates), "default": self.default_missing_rate},
            {"parameter": "size w of the sliding window",
             "values": list(self.window_sizes), "default": self.default_window_size},
            {"parameter": "size ratio eta of data repository w.r.t. data stream",
             "values": list(self.repository_ratios),
             "default": self.default_repository_ratio},
            {"parameter": "number m of missing attributes",
             "values": list(self.missing_attribute_counts),
             "default": self.default_missing_attributes},
        ]


#: Grid used by the benches: paper sweep shapes, bench-scale windows/datasets.
BENCH_GRID = ParameterGrid()

#: Grid with the paper's original window sizes, for documentation purposes.
PAPER_GRID = ParameterGrid(window_sizes=PAPER_WINDOW_SIZES,
                           default_window_size=1000, dataset_scale=1.0)
