"""Experiment harness: run TER-iDS and the baselines over generated workloads.

The harness builds the bridge between the dataset generators, the engine /
baseline pipelines and the metrics: one call of :func:`run_method` processes
an entire workload with one method and returns its matches, wall-clock cost
and accuracy against the workload's topic-aware ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.baselines.naive import BaselineReport
from repro.baselines.pipelines import (
    ALL_BASELINES,
    METHOD_TER_IDS,
    build_baseline,
)
from repro.core.config import TERiDSConfig
from repro.core.engine import TERiDSEngine
from repro.core.matching import MatchPair
from repro.core.tuples import Record
from repro.datasets.synthetic import Workload, generate_dataset
from repro.imputation.cdd import CDDDiscoveryConfig
from repro.imputation.repository import DataRepository
from repro.metrics.accuracy import AccuracyReport, evaluate_matches
from repro.runtime.executors import Executor


@dataclass
class MethodResult:
    """Outcome of one method on one workload."""

    method: str
    dataset: str
    matches: List[MatchPair]
    total_seconds: float
    timestamps_processed: int
    accuracy: AccuracyReport
    breakup: Dict[str, float] = field(default_factory=dict)
    pruning_power: Dict[str, float] = field(default_factory=dict)
    pairs_evaluated: int = 0

    @property
    def mean_seconds_per_timestamp(self) -> float:
        return self.total_seconds / max(1, self.timestamps_processed)

    @property
    def f_score(self) -> float:
        return self.accuracy.f_score

    def as_row(self) -> Dict[str, object]:
        """Flat row for tabular benchmark output."""
        return {
            "method": self.method,
            "dataset": self.dataset,
            "f_score": round(self.f_score, 4),
            "precision": round(self.accuracy.precision, 4),
            "recall": round(self.accuracy.recall, 4),
            "wall_clock_sec_per_tuple": self.mean_seconds_per_timestamp,
            "total_seconds": self.total_seconds,
            "matches": len(self.matches),
        }


def default_config(workload: Workload, window_size: int = 50,
                   alpha: float = 0.5, rho: float = 0.5,
                   **overrides) -> TERiDSConfig:
    """Build a TER-iDS configuration for a workload with Table 5 defaults."""
    return TERiDSConfig(
        schema=workload.schema,
        keywords=workload.keywords,
        alpha=alpha,
        similarity_ratio=rho,
        window_size=window_size,
        **overrides,
    )


def run_ter_ids(workload: Workload, config: TERiDSConfig,
                executor: Optional[Executor] = None,
                discovery_config: Optional[CDDDiscoveryConfig] = None,
                ) -> MethodResult:
    """Run the full TER-iDS engine over one workload.

    ``executor`` selects the runtime scheduling strategy (serial by
    default; pass a ``MicroBatchExecutor`` for batched ingestion — the
    match sets are identical, only the throughput changes).
    ``discovery_config`` parameterises rule mining and, through its
    ``maintenance_mode``, how rules evolve under repository extensions.
    """
    engine = TERiDSEngine(repository=workload.repository, config=config,
                          executor=executor,
                          discovery_config=discovery_config)
    try:
        report = engine.run(workload.interleaved_records())
    finally:
        engine.close()
    accuracy = evaluate_matches(report.matches, workload.ground_truth)
    return MethodResult(
        method=METHOD_TER_IDS,
        dataset=workload.name,
        matches=report.matches,
        total_seconds=report.total_seconds,
        timestamps_processed=report.timestamps_processed,
        accuracy=accuracy,
        breakup=report.breakup_cost.as_dict(),
        pruning_power=report.pruning_stats.pruning_power(),
        pairs_evaluated=report.pruning_stats.pairs_considered,
    )


def run_baseline_method(method: str, workload: Workload,
                        config: TERiDSConfig) -> MethodResult:
    """Run one named baseline pipeline over one workload."""
    pipeline = build_baseline(method, workload.repository, config)
    report: BaselineReport = pipeline.run(workload.interleaved_records())
    accuracy = evaluate_matches(report.matches, workload.ground_truth)
    return MethodResult(
        method=method,
        dataset=workload.name,
        matches=report.matches,
        total_seconds=report.total_seconds,
        timestamps_processed=report.timestamps_processed,
        accuracy=accuracy,
        breakup={"imputation": report.imputation_seconds,
                 "entity_resolution": report.er_seconds},
        pairs_evaluated=report.pairs_evaluated,
    )


def run_method(method: str, workload: Workload, config: TERiDSConfig,
               executor: Optional[Executor] = None,
               discovery_config: Optional[CDDDiscoveryConfig] = None,
               ) -> MethodResult:
    """Run either TER-iDS or one of the baselines by name."""
    if method == METHOD_TER_IDS:
        return run_ter_ids(workload, config, executor=executor,
                           discovery_config=discovery_config)
    return run_baseline_method(method, workload, config)


# ---------------------------------------------------------------------------
# Evolving-repository scenario (Section 5.5)
# ---------------------------------------------------------------------------
def split_repository(repository: DataRepository, holdout_fraction: float,
                     ) -> tuple:
    """Head/tail split of a repository for the evolving scenario.

    The head becomes the engine's initial repository; the tail is the pool
    of "future" complete samples absorbed mid-stream.  The split is a plain
    prefix cut, so it is deterministic and the extended repository equals
    the original one sample for sample.
    """
    if not 0.0 < holdout_fraction < 1.0:
        raise ValueError(
            f"holdout_fraction must be in (0, 1), got {holdout_fraction}")
    keep = max(2, len(repository) - int(round(len(repository)
                                              * holdout_fraction)))
    base = DataRepository(schema=repository.schema,
                          samples=list(repository.samples[:keep]))
    holdout = list(repository.samples[keep:])
    return base, holdout


def run_evolving_stream(engine: TERiDSEngine, records: Sequence[Record],
                        additions: Sequence[Record],
                        phases: int = 3) -> List[MatchPair]:
    """Drive an engine over a stream that evolves its repository mid-flight.

    The record sequence is cut into ``phases`` contiguous chunks; after
    every chunk except the last, an equal slice of ``additions`` is absorbed
    via :meth:`TERiDSEngine.add_repository_samples` (rule maintenance then
    follows the engine's maintenance mode).  Returns the concatenated match
    pairs in arrival order — directly comparable across executors and
    maintenance modes.
    """
    if phases < 1:
        raise ValueError(f"phases must be >= 1, got {phases}")
    records = list(records)
    additions = list(additions)
    if additions and phases < 2:
        # Absorption happens *between* phases; with a single phase the
        # additions would be silently discarded.
        raise ValueError(
            "phases must be >= 2 to absorb repository additions mid-stream")
    matches: List[MatchPair] = []
    chunk = -(-len(records) // phases) if records else 0
    pauses = max(1, phases - 1)
    add_chunk = -(-len(additions) // pauses) if additions else 0
    for phase in range(phases):
        batch = records[phase * chunk: (phase + 1) * chunk]
        if batch:
            matches.extend(engine.process_batch(batch))
        if phase < phases - 1 and add_chunk:
            tranche = additions[phase * add_chunk: (phase + 1) * add_chunk]
            if tranche:
                engine.add_repository_samples(tranche)
    return matches


def run_methods(methods: Sequence[str], workload: Workload,
                config: TERiDSConfig) -> List[MethodResult]:
    """Run several methods over the same workload."""
    return [run_method(method, workload, config) for method in methods]


def make_workload(dataset: str, missing_rate: float = 0.3,
                  missing_attributes: int = 1, repository_ratio: float = 0.3,
                  scale: float = 0.5, seed: int = 7) -> Workload:
    """Generate a workload with the harness' scaled defaults."""
    return generate_dataset(
        dataset,
        missing_rate=missing_rate,
        missing_attributes=missing_attributes,
        repository_ratio=repository_ratio,
        scale=scale,
        seed=seed,
    )


def format_rows(rows: Iterable[Dict[str, object]]) -> str:
    """Minimal fixed-width table rendering for bench output."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    widths = {column: max(len(str(column)),
                          max(len(str(row.get(column, ""))) for row in rows))
              for column in columns}
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append("  ".join(str(row.get(column, "")).ljust(widths[column])
                               for column in columns))
    return "\n".join(lines)
