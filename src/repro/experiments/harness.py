"""Experiment harness: run TER-iDS and the baselines over generated workloads.

The harness builds the bridge between the dataset generators, the engine /
baseline pipelines and the metrics: one call of :func:`run_method` processes
an entire workload with one method and returns its matches, wall-clock cost
and accuracy against the workload's topic-aware ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.baselines.naive import BaselineReport
from repro.baselines.pipelines import (
    ALL_BASELINES,
    METHOD_TER_IDS,
    build_baseline,
)
from repro.core.config import TERiDSConfig
from repro.core.engine import TERiDSEngine
from repro.core.matching import MatchPair
from repro.datasets.synthetic import Workload, generate_dataset
from repro.metrics.accuracy import AccuracyReport, evaluate_matches
from repro.runtime.executors import Executor


@dataclass
class MethodResult:
    """Outcome of one method on one workload."""

    method: str
    dataset: str
    matches: List[MatchPair]
    total_seconds: float
    timestamps_processed: int
    accuracy: AccuracyReport
    breakup: Dict[str, float] = field(default_factory=dict)
    pruning_power: Dict[str, float] = field(default_factory=dict)
    pairs_evaluated: int = 0

    @property
    def mean_seconds_per_timestamp(self) -> float:
        return self.total_seconds / max(1, self.timestamps_processed)

    @property
    def f_score(self) -> float:
        return self.accuracy.f_score

    def as_row(self) -> Dict[str, object]:
        """Flat row for tabular benchmark output."""
        return {
            "method": self.method,
            "dataset": self.dataset,
            "f_score": round(self.f_score, 4),
            "precision": round(self.accuracy.precision, 4),
            "recall": round(self.accuracy.recall, 4),
            "wall_clock_sec_per_tuple": self.mean_seconds_per_timestamp,
            "total_seconds": self.total_seconds,
            "matches": len(self.matches),
        }


def default_config(workload: Workload, window_size: int = 50,
                   alpha: float = 0.5, rho: float = 0.5,
                   **overrides) -> TERiDSConfig:
    """Build a TER-iDS configuration for a workload with Table 5 defaults."""
    return TERiDSConfig(
        schema=workload.schema,
        keywords=workload.keywords,
        alpha=alpha,
        similarity_ratio=rho,
        window_size=window_size,
        **overrides,
    )


def run_ter_ids(workload: Workload, config: TERiDSConfig,
                executor: Optional[Executor] = None) -> MethodResult:
    """Run the full TER-iDS engine over one workload.

    ``executor`` selects the runtime scheduling strategy (serial by
    default; pass a ``MicroBatchExecutor`` for batched ingestion — the
    match sets are identical, only the throughput changes).
    """
    engine = TERiDSEngine(repository=workload.repository, config=config,
                          executor=executor)
    try:
        report = engine.run(workload.interleaved_records())
    finally:
        engine.close()
    accuracy = evaluate_matches(report.matches, workload.ground_truth)
    return MethodResult(
        method=METHOD_TER_IDS,
        dataset=workload.name,
        matches=report.matches,
        total_seconds=report.total_seconds,
        timestamps_processed=report.timestamps_processed,
        accuracy=accuracy,
        breakup=report.breakup_cost.as_dict(),
        pruning_power=report.pruning_stats.pruning_power(),
        pairs_evaluated=report.pruning_stats.pairs_considered,
    )


def run_baseline_method(method: str, workload: Workload,
                        config: TERiDSConfig) -> MethodResult:
    """Run one named baseline pipeline over one workload."""
    pipeline = build_baseline(method, workload.repository, config)
    report: BaselineReport = pipeline.run(workload.interleaved_records())
    accuracy = evaluate_matches(report.matches, workload.ground_truth)
    return MethodResult(
        method=method,
        dataset=workload.name,
        matches=report.matches,
        total_seconds=report.total_seconds,
        timestamps_processed=report.timestamps_processed,
        accuracy=accuracy,
        breakup={"imputation": report.imputation_seconds,
                 "entity_resolution": report.er_seconds},
        pairs_evaluated=report.pairs_evaluated,
    )


def run_method(method: str, workload: Workload, config: TERiDSConfig,
               executor: Optional[Executor] = None) -> MethodResult:
    """Run either TER-iDS or one of the baselines by name."""
    if method == METHOD_TER_IDS:
        return run_ter_ids(workload, config, executor=executor)
    return run_baseline_method(method, workload, config)


def run_methods(methods: Sequence[str], workload: Workload,
                config: TERiDSConfig) -> List[MethodResult]:
    """Run several methods over the same workload."""
    return [run_method(method, workload, config) for method in methods]


def make_workload(dataset: str, missing_rate: float = 0.3,
                  missing_attributes: int = 1, repository_ratio: float = 0.3,
                  scale: float = 0.5, seed: int = 7) -> Workload:
    """Generate a workload with the harness' scaled defaults."""
    return generate_dataset(
        dataset,
        missing_rate=missing_rate,
        missing_attributes=missing_attributes,
        repository_ratio=repository_ratio,
        scale=scale,
        seed=seed,
    )


def format_rows(rows: Iterable[Dict[str, object]]) -> str:
    """Minimal fixed-width table rendering for bench output."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())
    widths = {column: max(len(str(column)),
                          max(len(str(row.get(column, ""))) for row in rows))
              for column in columns}
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append("  ".join(str(row.get(column, "")).ljust(widths[column])
                               for column in columns))
    return "\n".join(lines)
