"""Per-figure experiment runners (Section 6 and Appendix C of the paper).

Every public function regenerates the data series of one table or figure of
the paper as a list of flat row dictionaries (dataset × method × parameter →
measurement).  The benchmark scripts under ``benchmarks/`` call these
functions at reduced scale and print the rows; ``EXPERIMENTS.md`` records how
the measured trends compare with the paper.

All runners accept ``datasets`` / ``methods`` / ``scale`` arguments so that
the same code can run a quick smoke sweep (benchmarks, CI) or a fuller
reproduction (examples, manual runs).
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.baselines.pipelines import (
    ACCURACY_BASELINES,
    ALL_BASELINES,
    METHOD_TER_IDS,
)
from repro.datasets.synthetic import dataset_statistics
from repro.experiments.harness import (
    MethodResult,
    default_config,
    make_workload,
    run_method,
    run_methods,
)
from repro.experiments.params import BENCH_GRID, EVALUATION_DATASETS, ParameterGrid
from repro.imputation.cdd import discover_cdd_rules
from repro.imputation.repository import DataRepository
from repro.indexes.pivots import PivotSelectionConfig, select_pivots
from repro.metrics.timing import time_callable

#: Methods compared in the efficiency figures (Figures 5(b), 7-10, 16-17).
EFFICIENCY_METHODS: Tuple[str, ...] = (METHOD_TER_IDS,) + ALL_BASELINES
#: Methods compared in the accuracy figures (Figures 5(a), 13-15).
ACCURACY_METHODS: Tuple[str, ...] = (METHOD_TER_IDS,) + ACCURACY_BASELINES

#: Small default dataset subsets keeping the quick benches fast.
QUICK_DATASETS: Tuple[str, ...] = ("citations", "anime")
QUICK_EFFICIENCY_METHODS: Tuple[str, ...] = (METHOD_TER_IDS, "Ij+GER", "con+ER")
QUICK_ACCURACY_METHODS: Tuple[str, ...] = (METHOD_TER_IDS, "DD+ER", "con+ER")


# ---------------------------------------------------------------------------
# Tables 4 and 5
# ---------------------------------------------------------------------------
def table4_dataset_statistics(datasets: Sequence[str] = EVALUATION_DATASETS,
                              scale: float = 0.5,
                              seed: int = 7) -> List[Dict[str, object]]:
    """Table 4: per-dataset tuple counts and ground-truth match counts."""
    rows = []
    for dataset in datasets:
        workload = make_workload(dataset, scale=scale, seed=seed)
        rows.append(dataset_statistics(workload))
    return rows


def table5_parameter_settings(grid: ParameterGrid = BENCH_GRID) -> List[Dict[str, object]]:
    """Table 5: the parameter sweep grid with its defaults."""
    return grid.as_table()


# ---------------------------------------------------------------------------
# Figure 4 — pruning power
# ---------------------------------------------------------------------------
def figure4_pruning_power(datasets: Sequence[str] = QUICK_DATASETS,
                          scale: float = 0.5, window_size: int = 50,
                          seed: int = 7) -> List[Dict[str, object]]:
    """Per-strategy pruning power of the TER-iDS engine on each dataset."""
    rows = []
    for dataset in datasets:
        workload = make_workload(dataset, scale=scale, seed=seed)
        config = default_config(workload, window_size=window_size)
        result = run_method(METHOD_TER_IDS, workload, config)
        power = result.pruning_power
        rows.append({
            "dataset": dataset,
            "topic_keyword_pct": round(100 * power.get("topic_keyword", 0.0), 2),
            "similarity_ub_pct": round(100 * power.get("similarity_upper_bound", 0.0), 2),
            "probability_ub_pct": round(100 * power.get("probability_upper_bound", 0.0), 2),
            "instance_pair_pct": round(100 * power.get("instance_pair_level", 0.0), 2),
            "total_pruned_pct": round(100 * power.get("total", 0.0), 2),
            "pairs_considered": result.pairs_evaluated,
        })
    return rows


# ---------------------------------------------------------------------------
# Figure 5 — accuracy and efficiency per dataset
# ---------------------------------------------------------------------------
def figure5a_fscore(datasets: Sequence[str] = QUICK_DATASETS,
                    methods: Sequence[str] = QUICK_ACCURACY_METHODS,
                    scale: float = 0.5, window_size: int = 50,
                    seed: int = 7) -> List[Dict[str, object]]:
    """F-score of TER-iDS vs the accuracy baselines per dataset."""
    rows = []
    for dataset in datasets:
        workload = make_workload(dataset, scale=scale, seed=seed)
        config = default_config(workload, window_size=window_size)
        for result in run_methods(methods, workload, config):
            rows.append({
                "dataset": dataset,
                "method": result.method,
                "f_score_pct": round(100 * result.f_score, 2),
                "precision_pct": round(100 * result.accuracy.precision, 2),
                "recall_pct": round(100 * result.accuracy.recall, 2),
            })
    return rows


def figure5b_wall_clock(datasets: Sequence[str] = QUICK_DATASETS,
                        methods: Sequence[str] = QUICK_EFFICIENCY_METHODS,
                        scale: float = 0.5, window_size: int = 50,
                        seed: int = 7) -> List[Dict[str, object]]:
    """Per-tuple wall-clock time of each method per dataset."""
    rows = []
    for dataset in datasets:
        workload = make_workload(dataset, scale=scale, seed=seed)
        config = default_config(workload, window_size=window_size)
        for result in run_methods(methods, workload, config):
            rows.append({
                "dataset": dataset,
                "method": result.method,
                "seconds_per_tuple": result.mean_seconds_per_timestamp,
                "total_seconds": result.total_seconds,
            })
    return rows


# ---------------------------------------------------------------------------
# Figure 6 — break-up cost of TER-iDS
# ---------------------------------------------------------------------------
def figure6_breakup_cost(datasets: Sequence[str] = QUICK_DATASETS,
                         scale: float = 0.5, window_size: int = 50,
                         seed: int = 7) -> List[Dict[str, object]]:
    """CDD-selection / imputation / ER break-up of the TER-iDS per-tuple cost."""
    rows = []
    for dataset in datasets:
        workload = make_workload(dataset, scale=scale, seed=seed)
        config = default_config(workload, window_size=window_size)
        result = run_method(METHOD_TER_IDS, workload, config)
        rows.append({
            "dataset": dataset,
            "cdd_selection_sec": result.breakup.get("cdd_selection", 0.0),
            "imputation_sec": result.breakup.get("imputation", 0.0),
            "er_sec": result.breakup.get("entity_resolution", 0.0),
            "total_sec_per_tuple": result.mean_seconds_per_timestamp,
        })
    return rows


# ---------------------------------------------------------------------------
# Generic parameter sweeps (Figures 7-10, 13-17)
# ---------------------------------------------------------------------------
def _sweep(
    parameter: str,
    values: Sequence[object],
    datasets: Sequence[str],
    methods: Sequence[str],
    measure: str,
    scale: float,
    window_size: int,
    seed: int,
) -> List[Dict[str, object]]:
    """Run a one-parameter sweep and report either time or F-score rows."""
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        for value in values:
            workload_kwargs = {"scale": scale, "seed": seed}
            config_kwargs: Dict[str, object] = {"window_size": window_size}
            if parameter == "missing_rate":
                workload_kwargs["missing_rate"] = value
            elif parameter == "repository_ratio":
                workload_kwargs["repository_ratio"] = value
            elif parameter == "missing_attributes":
                workload_kwargs["missing_attributes"] = value
            elif parameter == "alpha":
                config_kwargs["alpha"] = value
            elif parameter == "rho":
                config_kwargs["rho"] = value
            elif parameter == "window_size":
                config_kwargs["window_size"] = value
            else:
                raise ValueError(f"unknown sweep parameter {parameter!r}")

            workload = make_workload(dataset, **workload_kwargs)  # type: ignore[arg-type]
            config = default_config(workload, **config_kwargs)  # type: ignore[arg-type]
            for result in run_methods(methods, workload, config):
                row: Dict[str, object] = {
                    "dataset": dataset,
                    parameter: value,
                    "method": result.method,
                }
                if measure == "time":
                    row["seconds_per_tuple"] = result.mean_seconds_per_timestamp
                else:
                    row["f_score_pct"] = round(100 * result.f_score, 2)
                rows.append(row)
    return rows


def figure7_alpha(dataset: str = "citations",
                  alphas: Sequence[float] = BENCH_GRID.alpha_values,
                  methods: Sequence[str] = QUICK_EFFICIENCY_METHODS,
                  scale: float = 0.5, window_size: int = 50,
                  seed: int = 7) -> List[Dict[str, object]]:
    """Efficiency vs the probabilistic threshold α."""
    return _sweep("alpha", list(alphas), [dataset], methods, "time",
                  scale, window_size, seed)


def figure8_rho(dataset: str = "citations",
                rhos: Sequence[float] = BENCH_GRID.rho_values,
                methods: Sequence[str] = QUICK_EFFICIENCY_METHODS,
                scale: float = 0.5, window_size: int = 50,
                seed: int = 7) -> List[Dict[str, object]]:
    """Efficiency vs the similarity-threshold ratio ρ = γ/d."""
    return _sweep("rho", list(rhos), [dataset], methods, "time",
                  scale, window_size, seed)


def figure9_missing_rate(dataset: str = "citations",
                         rates: Sequence[float] = BENCH_GRID.missing_rates,
                         methods: Sequence[str] = QUICK_EFFICIENCY_METHODS,
                         scale: float = 0.5, window_size: int = 50,
                         seed: int = 7) -> List[Dict[str, object]]:
    """Efficiency vs the missing rate ξ."""
    return _sweep("missing_rate", list(rates), [dataset], methods, "time",
                  scale, window_size, seed)


def figure10_window(dataset: str = "citations",
                    windows: Sequence[int] = BENCH_GRID.window_sizes,
                    methods: Sequence[str] = QUICK_EFFICIENCY_METHODS,
                    scale: float = 0.5, seed: int = 7) -> List[Dict[str, object]]:
    """Efficiency vs the sliding-window size w."""
    return _sweep("window_size", list(windows), [dataset], methods, "time",
                  scale, BENCH_GRID.default_window_size, seed)


def figure13_fscore_missing(dataset: str = "citations",
                            rates: Sequence[float] = BENCH_GRID.missing_rates,
                            methods: Sequence[str] = QUICK_ACCURACY_METHODS,
                            scale: float = 0.5, window_size: int = 50,
                            seed: int = 7) -> List[Dict[str, object]]:
    """Accuracy vs the missing rate ξ (Appendix C.3)."""
    return _sweep("missing_rate", list(rates), [dataset], methods, "fscore",
                  scale, window_size, seed)


def figure14_fscore_eta(dataset: str = "citations",
                        ratios: Sequence[float] = BENCH_GRID.repository_ratios,
                        methods: Sequence[str] = QUICK_ACCURACY_METHODS,
                        scale: float = 0.5, window_size: int = 50,
                        seed: int = 7) -> List[Dict[str, object]]:
    """Accuracy vs the repository size ratio η (Appendix C.3)."""
    return _sweep("repository_ratio", list(ratios), [dataset], methods, "fscore",
                  scale, window_size, seed)


def figure15_fscore_m(dataset: str = "citations",
                      missing_attribute_counts: Sequence[int] = BENCH_GRID.missing_attribute_counts,
                      methods: Sequence[str] = QUICK_ACCURACY_METHODS,
                      scale: float = 0.5, window_size: int = 50,
                      seed: int = 7) -> List[Dict[str, object]]:
    """Accuracy vs the number m of missing attributes (Appendix C.3)."""
    return _sweep("missing_attributes", list(missing_attribute_counts), [dataset],
                  methods, "fscore", scale, window_size, seed)


def figure16_time_eta(dataset: str = "citations",
                      ratios: Sequence[float] = BENCH_GRID.repository_ratios,
                      methods: Sequence[str] = QUICK_EFFICIENCY_METHODS,
                      scale: float = 0.5, window_size: int = 50,
                      seed: int = 7) -> List[Dict[str, object]]:
    """Efficiency vs the repository size ratio η (Appendix C.4)."""
    return _sweep("repository_ratio", list(ratios), [dataset], methods, "time",
                  scale, window_size, seed)


def figure17_time_m(dataset: str = "citations",
                    missing_attribute_counts: Sequence[int] = BENCH_GRID.missing_attribute_counts,
                    methods: Sequence[str] = QUICK_EFFICIENCY_METHODS,
                    scale: float = 0.5, window_size: int = 50,
                    seed: int = 7) -> List[Dict[str, object]]:
    """Efficiency vs the number m of missing attributes (Appendix C.4)."""
    return _sweep("missing_attributes", list(missing_attribute_counts), [dataset],
                  methods, "time", scale, window_size, seed)


# ---------------------------------------------------------------------------
# Figures 11 and 12 — offline pre-computation costs
# ---------------------------------------------------------------------------
def figure11_pivot_selection_cost(
    datasets: Sequence[str] = QUICK_DATASETS,
    ratios: Sequence[float] = BENCH_GRID.repository_ratios,
    cnt_max_values: Sequence[int] = (1, 2, 3, 4, 5),
    scale: float = 0.5,
    seed: int = 7,
) -> List[Dict[str, object]]:
    """Offline pivot-selection cost vs η (Figure 11(a)) and cntMax (11(b))."""
    rows: List[Dict[str, object]] = []
    for dataset in datasets:
        # (a) vary the repository ratio at default cntMax.
        for ratio in ratios:
            workload = make_workload(dataset, repository_ratio=ratio,
                                     scale=scale, seed=seed)
            _, elapsed = time_callable(select_pivots, workload.repository,
                                       PivotSelectionConfig(max_pivots=3))
            rows.append({"dataset": dataset, "sweep": "eta", "value": ratio,
                         "seconds": elapsed,
                         "repository_tuples": len(workload.repository)})
        # (b) vary cntMax at default repository ratio.
        workload = make_workload(dataset, scale=scale, seed=seed)
        for cnt_max in cnt_max_values:
            _, elapsed = time_callable(
                select_pivots, workload.repository,
                PivotSelectionConfig(max_pivots=cnt_max))
            rows.append({"dataset": dataset, "sweep": "cntMax", "value": cnt_max,
                         "seconds": elapsed,
                         "repository_tuples": len(workload.repository)})
    return rows


def figure12_cdd_detection_cost(datasets: Sequence[str] = QUICK_DATASETS,
                                scale: float = 0.5,
                                seed: int = 7) -> List[Dict[str, object]]:
    """Offline CDD detection cost per dataset."""
    rows = []
    for dataset in datasets:
        workload = make_workload(dataset, scale=scale, seed=seed)
        rules, elapsed = time_callable(discover_cdd_rules, workload.repository)
        rows.append({
            "dataset": dataset,
            "repository_tuples": len(workload.repository),
            "cdd_rules_detected": len(rules),
            "seconds": elapsed,
        })
    return rows
