"""The telemetry facade the runtime talks to, and its null twin.

``RuntimeContext.telemetry`` is either :data:`NULL_TELEMETRY` (the
default: every call is a no-op returning a single shared context manager,
so the disabled path costs one attribute load and one method call per
site) or a :class:`Telemetry` instance wiring the metrics registry, the
batch tracer, and the optional slow-batch profiler together.

The invariant that keeps golden bit-identity safe: telemetry only ever
*measures wall clock* and *reads* the existing stat objects at collect
time.  It never increments a pruning counter, never reorders candidates,
never touches any value that participates in the golden comparisons.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Tuple

from .profiler import SlowBatchProfiler
from .registry import (GAUGE, HISTOGRAM, HistogramValue, MetricsRegistry,
                       exponential_buckets)
from .tracing import BatchTrace, Span, Tracer

#: ``PruningStats`` counter fields in declaration order; the outcome label
#: each maps to mirrors the Figure-4 cascade stages.
PRUNING_FIELDS: Tuple[Tuple[str, str], ...] = (
    ("pairs_considered", "considered"),
    ("pruned_by_topic", "topic"),
    ("pruned_by_similarity", "similarity"),
    ("pruned_by_probability", "probability"),
    ("pruned_by_instance", "instance"),
    ("refined_matches", "refined_match"),
    ("refined_non_matches", "refined_non_match"),
)

IMPUTATION_FIELDS: Tuple[str, ...] = (
    "records_imputed", "attributes_imputed", "attributes_unimputable",
    "rules_considered", "rules_applied", "samples_scanned",
    "samples_matched", "candidate_values",
)


class _NullScope:
    """The one shared no-op context manager of the disabled plane."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


NULL_SCOPE = _NullScope()


class NullTelemetry:
    """Disabled telemetry: every call no-ops, nothing is allocated."""

    __slots__ = ()
    enabled = False
    current_trace = None

    def begin_batch(self, batch_seq: int, size: int) -> _NullScope:
        return NULL_SCOPE

    def span(self, name: str) -> _NullScope:
        return NULL_SCOPE

    def observe_resolve(self, seconds: float, cached: bool) -> None:
        return None

    def snapshot(self) -> None:
        return None


NULL_TELEMETRY = NullTelemetry()


class _BatchScope:
    """Scopes one batch: trace lifetime, batch metrics, optional profile."""

    __slots__ = ("_telemetry", "_trace", "_profile_scope", "_start")

    def __init__(self, telemetry: "Telemetry", trace: BatchTrace) -> None:
        self._telemetry = telemetry
        self._trace = trace
        self._profile_scope = None
        self._start = 0.0

    def __enter__(self) -> BatchTrace:
        self._start = time.perf_counter()
        profiler = self._telemetry.profiler
        if profiler is not None:
            self._profile_scope = profiler.profile(self._trace.batch_seq)
            self._profile_scope.__enter__()
        return self._trace

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._profile_scope is not None:
            self._profile_scope.__exit__(exc_type, exc, tb)
        telemetry = self._telemetry
        elapsed = time.perf_counter() - self._start
        telemetry.batch_seconds.observe(elapsed)
        telemetry.batch_tuples.observe(float(self._trace.size))
        telemetry.batches_total.inc()
        telemetry.tracer.end()


class Telemetry:
    """The enabled plane: registry + tracer + optional profiler."""

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 trace_ring: int = 16, profile_slowest: int = 0) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = Tracer(ring=trace_ring, on_span=self._on_span)
        self.profiler = (SlowBatchProfiler(top_n=profile_slowest)
                         if profile_slowest > 0 else None)
        reg = self.registry
        self.batches_total = reg.counter(
            "terids_batches_total", "Batches processed by the executor")
        self.batch_seconds = reg.histogram(
            "terids_batch_seconds", "End-to-end wall time per batch")
        self.batch_tuples = reg.histogram(
            "terids_batch_tuples", "Tuples per processed batch",
            buckets=exponential_buckets(1.0, 2.0, 16))
        self.stage_seconds = reg.histogram(
            "terids_stage_seconds",
            "Wall time of main-process pipeline stages per batch",
            labelnames=("stage",))
        self.pool_stage_seconds = reg.histogram(
            "terids_pool_stage_seconds",
            "Wall time of pooled worker stages, per pool and shard",
            labelnames=("pool", "shard", "stage"))
        self.resolve_seconds = reg.histogram(
            "terids_resolve_seconds",
            "Query-time resolve() latency by cache outcome",
            labelnames=("result",))

    enabled = True

    # -- batch/trace lifecycle ----------------------------------------------
    def begin_batch(self, batch_seq: int, size: int) -> _BatchScope:
        trace = self.tracer.begin(f"batch-{batch_seq:08d}", batch_seq, size)
        return _BatchScope(self, trace)

    @property
    def current_trace(self) -> Optional[BatchTrace]:
        return self.tracer.current

    def span(self, name: str):
        trace = self.tracer.current
        if trace is None:
            return NULL_SCOPE
        return trace.span(name)

    def _on_span(self, span: Span) -> None:
        labels = span.labels
        if labels and "pool" in labels:
            self.pool_stage_seconds.labels(
                pool=labels["pool"], shard=labels["shard"],
                stage=span.name).observe(span.duration)
        elif span.name != "batch":
            self.stage_seconds.labels(stage=span.name).observe(span.duration)

    # -- query path ----------------------------------------------------------
    def observe_resolve(self, seconds: float, cached: bool) -> None:
        self.resolve_seconds.labels(
            result="hit" if cached else "miss").observe(seconds)

    # -- export ---------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "metrics": self.registry.collect(),
            "traces": self.tracer.export(),
        }
        if self.profiler is not None:
            out["profiles"] = self.profiler.as_dicts()
        return out


def bind_context_metrics(registry: MetricsRegistry, ctx) -> None:
    """Bind a ``RuntimeContext``'s stat objects onto ``registry``.

    Everything goes through collect-time closures over ``ctx`` — never
    over the stat objects themselves, because several of them are
    *replaced* (not mutated) on checkpoint restore
    (``ctx.imputer.stats``, ``ctx.pruning.stats`` via ``clear_online_state``).
    """
    # Pruning cascade — the Figure-4 counters.
    for attr, outcome in PRUNING_FIELDS:
        registry.bind(
            "terids_pruning_pairs_total",
            (lambda a=attr: float(getattr(ctx.pruning.stats, a))),
            help="Pruning-cascade pair outcomes (Figure 4 counters)",
            labels={"outcome": outcome})

    # Imputation.
    for attr in IMPUTATION_FIELDS:
        registry.bind(
            "terids_imputation_events_total",
            (lambda a=attr: float(getattr(ctx.imputer.stats, a))),
            help="Imputation event counts by kind",
            labels={"kind": attr})

    # Ingest: scalars as counters, depth as gauges, triggers fanned out,
    # the formation-latency histogram bound live.
    for attr in ("tuples_ingested", "batches_formed", "reordered",
                 "force_released", "admitted_late", "shed_late",
                 "backpressure_waits", "idle_timeouts", "executor_waits",
                 "absorbed_samples", "expired_by_watermark"):
        registry.bind(
            "terids_ingest_events_total",
            (lambda a=attr: float(getattr(ctx.ingest, a))),
            help="Ingest driver event counts by kind",
            labels={"kind": attr})
    registry.bind(
        "terids_ingest_max_queue_depth",
        lambda: float(ctx.ingest.max_queue_depth),
        help="High-water mark of the bounded arrival queue", kind=GAUGE)
    registry.bind(
        "terids_ingest_queue_depth",
        lambda: float(ctx.ingest.queue_depths[-1]
                      if ctx.ingest.queue_depths else 0),
        help="Arrival-queue depth at the most recent batch", kind=GAUGE)
    registry.bind_multi(
        "terids_ingest_batches_total", "trigger",
        lambda: dict(ctx.ingest.triggers),
        help="Batches formed, by release trigger")
    registry.bind(
        "terids_ingest_formation_seconds",
        lambda: ctx.ingest.formation,
        help="Batch formation latency", kind=HISTOGRAM)

    # Transport (pool shipping).
    for attr in ("batches", "bytes_shipped", "synopses_shipped",
                 "orders_shipped", "evictions_shipped", "deltas_routed",
                 "backfills"):
        registry.bind(
            "terids_transport_events_total",
            (lambda a=attr: float(getattr(ctx.transport, a))),
            help="Worker-pool transport counts by kind",
            labels={"kind": attr})
    registry.bind(
        "terids_transport_shm_bytes_mapped",
        lambda: float(ctx.transport.shm_bytes_mapped),
        help="Bytes of shared-memory plane currently mapped by workers",
        kind=GAUGE)

    # Query-time resolution.
    for attr in ("resolves", "cache_hits", "cache_misses",
                 "cache_invalidations", "frontier_expansions"):
        registry.bind(
            "terids_query_events_total",
            (lambda a=attr: float(getattr(ctx.query, a))),
            help="Query-time resolve() counts by kind",
            labels={"kind": attr})

    # Stage wall-clock totals (the StageTimer the benches already read).
    registry.bind_multi(
        "terids_stage_wall_seconds_total", "stage",
        lambda: dict(ctx.timer.totals),
        help="Cumulative wall seconds per pipeline stage")
    registry.bind_multi(
        "terids_stage_invocations_total", "stage",
        lambda: dict(ctx.timer.counts),
        help="Cumulative invocations per pipeline stage")

    # ER-grid scan counters.
    registry.bind(
        "terids_grid_cells_examined_total",
        lambda: float(ctx.grid.cells_examined),
        help="ER-grid cells examined during candidate lookup")
    registry.bind(
        "terids_grid_tuples_examined_total",
        lambda: float(ctx.grid.tuples_examined),
        help="ER-grid tuples examined during candidate lookup")

    # Rule-install dispatch (skip / patch / rebuild).
    for attr, outcome in (("installs_skipped", "skipped"),
                          ("installs_patched", "patched"),
                          ("installs_rebuilt", "rebuilt")):
        registry.bind(
            "terids_rule_installs_total",
            (lambda a=attr: float(getattr(ctx, a))),
            help="Rule-install dispatch outcomes",
            labels={"outcome": outcome})

    # Batch sequencing.
    registry.bind(
        "terids_batch_seq", lambda: float(ctx.batch_seq),
        help="Monotonic batch sequence number (survives checkpoints)",
        kind=GAUGE)
    registry.bind(
        "terids_timestamps_processed", lambda: float(ctx.timestamps_processed),
        help="Stream timestamps processed so far", kind=GAUGE)

    # Runtime controller (sense→decide→act loop).  Bound through
    # ``ctx.controller_state`` — a plain dict the controller maintains — so
    # the closures work whether the controller attaches before or after
    # telemetry is enabled (all-zero samples until it does).
    def _controller(key, default=0.0):
        state = ctx.controller_state
        if not state:
            return float(default)
        return float(state.get(key, default))

    registry.bind_multi(
        "terids_controller_decisions_total", "action",
        lambda: dict((ctx.controller_state or {}).get("decisions", {})),
        help="Controller decisions applied, by action kind")
    registry.bind(
        "terids_controller_evaluations_total",
        lambda: _controller("evaluations"),
        help="Sense→decide→act evaluations run between batches")
    registry.bind(
        "terids_controller_target_workers",
        lambda: _controller("target_workers"),
        help="Worker/shard count the controller is currently steering to",
        kind=GAUGE)
    registry.bind(
        "terids_controller_target_max_batch",
        lambda: _controller("target_max_batch"),
        help="Batch-policy max_batch the controller is steering to",
        kind=GAUGE)
    registry.bind(
        "terids_controller_cooldown_remaining",
        lambda: _controller("cooldown_remaining"),
        help="Batches until the next scaling action is allowed", kind=GAUGE)
    registry.bind(
        "terids_controller_delta_routing",
        lambda: _controller("delta_routing", 1.0),
        help="1 when the shm delta mode is routed, 0 when broadcast",
        kind=GAUGE)
    registry.bind(
        "terids_controller_last_p95_seconds",
        lambda: _controller("last_p95_seconds"),
        help="Batch-latency p95 the last decision was based on", kind=GAUGE)
