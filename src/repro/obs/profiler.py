"""Opt-in cProfile capture of the N slowest batches.

Profiling every batch would dwarf the work being measured, so the
profiler keeps a small leaderboard: each batch is profiled, but only the
``top_n`` slowest (by wall clock) keep their stats text — the rest are
discarded on the spot.  Disabled entirely unless the telemetry plane was
asked for it (``profile_slowest > 0``).
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from typing import Dict, List, Optional


class _ProfileScope:
    __slots__ = ("_profiler", "_batch_seq", "_profile", "_start")

    def __init__(self, profiler: "SlowBatchProfiler", batch_seq: int) -> None:
        self._profiler = profiler
        self._batch_seq = batch_seq
        self._profile = cProfile.Profile()
        self._start = 0.0

    def __enter__(self) -> "_ProfileScope":
        self._start = time.perf_counter()
        self._profile.enable()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._profile.disable()
        elapsed = time.perf_counter() - self._start
        self._profiler._record(self._batch_seq, elapsed, self._profile)


class SlowBatchProfiler:
    """Keeps rendered cProfile stats for the ``top_n`` slowest batches."""

    def __init__(self, top_n: int = 3, restrict: int = 25) -> None:
        if top_n < 1:
            raise ValueError(f"top_n must be >= 1, got {top_n}")
        self.top_n = top_n
        self.restrict = restrict
        #: ``[{batch_seq, seconds, stats}]`` sorted slowest-first.
        self.slowest: List[Dict[str, object]] = []

    def profile(self, batch_seq: int) -> _ProfileScope:
        return _ProfileScope(self, batch_seq)

    def _record(self, batch_seq: int, elapsed: float,
                profile: cProfile.Profile) -> None:
        if (len(self.slowest) >= self.top_n
                and elapsed <= self.slowest[-1]["seconds"]):
            return
        buffer = io.StringIO()
        stats = pstats.Stats(profile, stream=buffer)
        stats.sort_stats("cumulative").print_stats(self.restrict)
        self.slowest.append({
            "batch_seq": batch_seq,
            "seconds": elapsed,
            "stats": buffer.getvalue(),
        })
        self.slowest.sort(key=lambda row: -float(row["seconds"]))
        del self.slowest[self.top_n:]

    def as_dicts(self) -> List[Dict[str, object]]:
        return [dict(row) for row in self.slowest]
