"""Process-wide metrics registry: counters, gauges, labelled histograms.

One :class:`MetricsRegistry` is the single place every measured signal of
the runtime lands in.  Three metric kinds, all label-aware:

* **counters** — monotonically increasing totals (``.inc``);
* **gauges** — point-in-time values (``.set``);
* **histograms** — exponential-bucket distributions
  (:class:`HistogramValue`) that additionally keep a *bounded sample ring*
  so exact quantiles (p50/p95/p99 by default) can be served without the
  bucket-interpolation error Prometheus-side quantile estimation carries.

The existing stat dataclasses (``PruningStats``, ``ImputationStats``,
``IngestStats``, ``TransportStats``, ``QueryStats``) keep their public APIs
and checkpoint formats untouched: they are *bound* onto the registry with
collect-time callbacks (:meth:`MetricsRegistry.bind`), so the registry
reads them only when a snapshot or a Prometheus render is requested —
zero steady-state cost on the hot path.

The quantile estimator intentionally replicates the nearest-rank formula
the ingest path has always used (``ordered[int(q * (len(ordered) - 1))]``)
so ``IngestStats.p95_formation_latency`` stays bit-compatible after its
sample ring was generalised onto :class:`HistogramValue`.
"""

from __future__ import annotations

import bisect
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: Default exact-quantile set served by histograms.
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)

#: Default retained sample count of a histogram's quantile ring.
DEFAULT_SAMPLE_WINDOW = 1024


def exponential_buckets(start: float, factor: float, count: int
                        ) -> Tuple[float, ...]:
    """``count`` exponentially growing bucket upper bounds from ``start``.

    ``exponential_buckets(0.001, 2.0, 4)`` → ``(0.001, 0.002, 0.004,
    0.008)``; the implicit ``+Inf`` bucket is always appended by the
    histogram itself.
    """
    if start <= 0:
        raise ValueError(f"start must be positive, got {start}")
    if factor <= 1.0:
        raise ValueError(f"factor must be > 1, got {factor}")
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return tuple(start * factor ** index for index in range(count))


#: Default latency buckets: 10 µs … ~21 s, doubling.
DEFAULT_BUCKETS = exponential_buckets(1e-5, 2.0, 22)


class CounterValue:
    """One counter series (a single label combination)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class GaugeValue:
    """One gauge series (a single label combination)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class HistogramValue:
    """One histogram series: exponential buckets + bounded sample ring.

    ``buckets`` are upper bounds (ascending); observations land in the
    first bucket whose bound is ``>= value`` (the implicit ``+Inf`` bucket
    catches the rest).  The ring keeps the most recent ``sample_window``
    raw observations for exact nearest-rank quantiles.

    Also usable standalone (outside any registry): ``IngestStats`` holds
    one directly for its formation-latency series and binds it onto the
    registry only when telemetry is enabled.
    """

    __slots__ = ("buckets", "bucket_counts", "sum", "count", "samples",
                 "quantiles")

    def __init__(self, buckets: Optional[Sequence[float]] = None,
                 sample_window: int = DEFAULT_SAMPLE_WINDOW,
                 quantiles: Sequence[float] = DEFAULT_QUANTILES) -> None:
        bounds = tuple(DEFAULT_BUCKETS if buckets is None else buckets)
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        if list(bounds) != sorted(bounds):
            raise ValueError(f"bucket bounds must be ascending, got {bounds}")
        if sample_window < 1:
            raise ValueError(
                f"sample_window must be >= 1, got {sample_window}")
        self.buckets = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # trailing +Inf
        self.sum = 0.0
        self.count = 0
        self.samples: Deque[float] = deque(maxlen=sample_window)
        self.quantiles = tuple(quantiles)

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect.bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1
        self.samples.append(value)

    def quantile(self, q: float) -> float:
        """Exact nearest-rank quantile over the retained sample ring.

        The formula is pinned to the historical ingest-latency estimator
        (``ordered[int(q * (len(ordered) - 1))]``); 0.0 when empty.
        """
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        return ordered[int(q * (len(ordered) - 1))]

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` rows, ``+Inf`` last."""
        rows: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket_count in zip(self.buckets, self.bucket_counts):
            running += bucket_count
            rows.append((bound, running))
        rows.append((float("inf"), running + self.bucket_counts[-1]))
        return rows

    def snapshot(self) -> Dict[str, object]:
        return {
            "buckets": [[bound, cumulative] for bound, cumulative
                        in self.cumulative_buckets()],
            "sum": self.sum,
            "count": self.count,
            "quantiles": {f"p{round(q * 100):d}" if (q * 100) == int(q * 100)
                          else f"p{q * 100:g}": self.quantile(q)
                          for q in self.quantiles},
        }

    def reset(self) -> None:
        for index in range(len(self.bucket_counts)):
            self.bucket_counts[index] = 0
        self.sum = 0.0
        self.count = 0
        self.samples.clear()


_VALUE_TYPES = {COUNTER: CounterValue, GAUGE: GaugeValue}


class MetricFamily:
    """One named metric: a fixed label schema + its per-combination series.

    Children are created on first :meth:`labels` access; a label-less
    family proxies ``inc`` / ``set`` / ``observe`` to its single child so
    ``registry.counter("x").inc()`` reads naturally.
    """

    def __init__(self, name: str, help: str, kind: str,
                 labelnames: Sequence[str] = (),
                 histogram_kwargs: Optional[Dict] = None) -> None:
        self.name = name
        self.help = help
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self._histogram_kwargs = dict(histogram_kwargs or {})
        self._children: Dict[Tuple[str, ...], object] = {}
        #: Collect-time callbacks: ``(labels_dict, getter)`` rows appended
        #: by :meth:`MetricsRegistry.bind` — evaluated only on collect.
        self._bound: List[Tuple[Dict[str, str], Callable]] = []

    def _make_child(self):
        if self.kind == HISTOGRAM:
            return HistogramValue(**self._histogram_kwargs)
        return _VALUE_TYPES[self.kind]()

    def labels(self, **labels):
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}")
        key = tuple(str(labels[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make_child()
        return child

    # -- label-less conveniences --------------------------------------------
    def _default(self):
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def dec(self, amount: float = 1.0) -> None:
        self._default().dec(amount)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    @property
    def value(self) -> float:
        return self._default().value

    def quantile(self, q: float) -> float:
        return self._default().quantile(q)

    # -- collection ----------------------------------------------------------
    def collect(self) -> Dict[str, object]:
        """JSON-safe snapshot of every series (bound callbacks evaluated)."""
        samples: List[Dict[str, object]] = []
        for key, child in self._children.items():
            labels = dict(zip(self.labelnames, key))
            samples.append(self._sample(labels, child))
        for labels, getter in self._bound:
            if "__multi__" in labels:
                # Marker row from bind_multi: the raw dict rides through to
                # MetricsRegistry.collect(), which expands it per key.
                samples.append({"labels": labels, "value": getter()})
            else:
                samples.append(self._sample(labels, getter()))
        return {"name": self.name, "help": self.help, "type": self.kind,
                "samples": samples}

    def _sample(self, labels: Dict[str, str], value) -> Dict[str, object]:
        if self.kind == HISTOGRAM:
            row: Dict[str, object] = {"labels": labels}
            row.update(value.snapshot())
            return row
        number = value.value if hasattr(value, "value") else value
        return {"labels": labels, "value": float(number)}


class MetricsRegistry:
    """The process-wide registry every exporter renders from.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create (idempotent
    for an identical kind; a kind conflict raises).  :meth:`bind` attaches
    collect-time callbacks so existing stat objects surface on the registry
    without being rewritten onto it.
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    # -- creation ------------------------------------------------------------
    def _family(self, name: str, help: str, kind: str,
                labelnames: Sequence[str],
                histogram_kwargs: Optional[Dict] = None) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, help, kind, labelnames,
                                  histogram_kwargs)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, "
                f"cannot re-register as {kind}")
        return family

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, help, COUNTER, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, help, GAUGE, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Optional[Sequence[float]] = None,
                  sample_window: int = DEFAULT_SAMPLE_WINDOW,
                  quantiles: Sequence[float] = DEFAULT_QUANTILES
                  ) -> MetricFamily:
        return self._family(name, help, HISTOGRAM, labelnames, {
            "buckets": buckets, "sample_window": sample_window,
            "quantiles": quantiles})

    # -- collect-time bindings ----------------------------------------------
    def bind(self, name: str, getter: Callable[[], float], help: str = "",
             kind: str = COUNTER,
             labels: Optional[Dict[str, str]] = None) -> None:
        """Surface an externally owned value under ``name`` at collect time.

        ``getter`` returns the current number (or, for ``kind="histogram"``,
        the live :class:`HistogramValue`); it is called only when the
        registry is collected, so binding costs nothing on the hot path.

        Re-binding the same ``(name, labels)`` *replaces* the previous
        getter instead of accumulating a duplicate sample row: re-enabling
        telemetry against a shared registry (e.g. after a controller pool
        rebuild) must not double every bound series.
        """
        labels = dict(labels or {})
        family = self._family(name, help, kind, tuple(labels))
        if tuple(sorted(labels)) != tuple(sorted(family.labelnames)):
            raise ValueError(
                f"metric {name!r} takes labels {family.labelnames}, "
                f"got {tuple(sorted(labels))}")
        self._rebind(family, labels, getter)

    @staticmethod
    def _rebind(family: MetricFamily, labels: Dict[str, str],
                getter: Callable) -> None:
        for index, (existing, _) in enumerate(family._bound):
            if existing == labels:
                family._bound[index] = (labels, getter)
                return
        family._bound.append((labels, getter))

    def bind_multi(self, name: str, label: str,
                   getter: Callable[[], Dict[str, float]], help: str = "",
                   kind: str = COUNTER) -> None:
        """Bind a dict-valued getter as one series per key of its result.

        For label sets unknown at bind time (e.g. the ingest trigger
        counts): at collect, every ``{key: value}`` row of ``getter()``
        becomes a sample labelled ``{label: key}``.
        """
        family = self._family(name, help, kind, (label,))
        # Marker row: expanded by collect() below.  Re-binding the same
        # marker replaces it (same duplicate-suppression as ``bind``).
        self._rebind(family, {"__multi__": label}, getter)

    def collect(self) -> List[Dict[str, object]]:
        """Snapshot every family (bound getters evaluated now)."""
        out: List[Dict[str, object]] = []
        for family in self._families.values():
            snap = family.collect()
            expanded: List[Dict[str, object]] = []
            for sample in snap["samples"]:
                labels = sample.get("labels", {})
                if "__multi__" in labels:
                    label = labels["__multi__"]
                    for key, value in sorted(sample["value"].items()
                                             if isinstance(sample["value"],
                                                           dict) else ()):
                        expanded.append({"labels": {label: str(key)},
                                         "value": float(value)})
                else:
                    expanded.append(sample)
            snap["samples"] = expanded
            out.append(snap)
        return out
