"""Unified telemetry plane: metrics registry, batch tracing, exporters.

Stdlib-only by design — ``repro.obs`` sits *below* the runtime modules
(``runtime/context.py`` imports from here), so it must not import from
anywhere else in ``repro``.
"""

from .exporters import LogReporter, render_prometheus
from .profiler import SlowBatchProfiler
from .registry import (COUNTER, DEFAULT_BUCKETS, DEFAULT_QUANTILES,
                       DEFAULT_SAMPLE_WINDOW, GAUGE, HISTOGRAM, CounterValue,
                       GaugeValue, HistogramValue, MetricFamily,
                       MetricsRegistry, exponential_buckets)
from .telemetry import (IMPUTATION_FIELDS, NULL_SCOPE, NULL_TELEMETRY,
                        PRUNING_FIELDS, NullTelemetry, Telemetry,
                        bind_context_metrics)
from .tracing import BatchTrace, Span, Tracer

__all__ = [
    "BatchTrace",
    "COUNTER",
    "CounterValue",
    "GAUGE",
    "HISTOGRAM",
    "DEFAULT_BUCKETS",
    "DEFAULT_QUANTILES",
    "DEFAULT_SAMPLE_WINDOW",
    "GaugeValue",
    "HistogramValue",
    "IMPUTATION_FIELDS",
    "LogReporter",
    "MetricFamily",
    "MetricsRegistry",
    "NULL_SCOPE",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "PRUNING_FIELDS",
    "SlowBatchProfiler",
    "Span",
    "Telemetry",
    "Tracer",
    "bind_context_metrics",
    "exponential_buckets",
    "render_prometheus",
]
