"""Per-batch span tracing, stitched across process boundaries.

A :class:`BatchTrace` is born when an executor starts a batch
(``RuntimeContext.begin_batch``) and dies when the batch's results have
been replayed.  Main-process stages open nested spans through
``Telemetry.span``; pooled workers cannot share the trace object, so they
time their own work as plain ``(name, rel_start, duration)`` tuples —
relative to their own message receipt, because worker clocks are not
synchronised with the parent — ship them back with the batch results, and
the parent stitches them under the live trace via
:meth:`BatchTrace.add_worker_spans`.

The result is one exported tree per batch: the root ``batch`` span, its
main-process stage children, and under the pool-boundary stages the
per-shard worker spans labelled with their pool and shard id.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple


class Span:
    """One timed region of a batch: name, wall-clock extent, children."""

    __slots__ = ("name", "start", "duration", "labels", "children")

    def __init__(self, name: str, start: float,
                 labels: Optional[Dict[str, str]] = None) -> None:
        self.name = name
        self.start = start
        self.duration = 0.0
        self.labels = labels or {}
        self.children: List["Span"] = []

    def to_dict(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
        }
        if self.labels:
            row["labels"] = dict(self.labels)
        if self.children:
            row["children"] = [child.to_dict() for child in self.children]
        return row


class _SpanScope:
    """Context manager closing one span and notifying the trace."""

    __slots__ = ("_trace", "_span")

    def __init__(self, trace: "BatchTrace", span: Span) -> None:
        self._trace = trace
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        span = self._span
        span.duration = time.perf_counter() - self._trace._epoch - span.start
        stack = self._trace._stack
        if stack and stack[-1] is span:
            stack.pop()
        self._trace._notify(span)


class BatchTrace:
    """The span tree of one batch, rooted at a ``batch`` span.

    ``start`` values are seconds relative to the batch's own start so the
    exported tree is self-contained (no absolute clock leaks into golden
    comparisons or test fixtures).  ``on_span`` fires as each span closes,
    letting the telemetry layer feed stage histograms without a second
    tree walk.
    """

    __slots__ = ("trace_id", "batch_seq", "size", "root", "_epoch", "_stack",
                 "_on_span")

    def __init__(self, trace_id: str, batch_seq: int, size: int,
                 on_span: Optional[Callable[[Span], None]] = None) -> None:
        self.trace_id = trace_id
        self.batch_seq = batch_seq
        self.size = size
        self._epoch = time.perf_counter()
        self.root = Span("batch", 0.0, {"batch_seq": str(batch_seq)})
        self._stack: List[Span] = [self.root]
        self._on_span = on_span

    def span(self, name: str, **labels: str) -> _SpanScope:
        """Open a child span under the innermost open span."""
        child = Span(name, time.perf_counter() - self._epoch,
                     labels or None)
        self._stack[-1].children.append(child)
        self._stack.append(child)
        return _SpanScope(self, child)

    def add_worker_spans(self, pool: str, shard: int,
                         spans: Optional[Iterable[Tuple[str, float, float]]]
                         ) -> None:
        """Stitch a worker's shipped ``(name, rel_start, duration)`` rows.

        Worker clocks are unsynchronised with the parent, so the rows are
        re-anchored at the parent's current position in the trace: they
        keep their *relative* layout (rel_start offsets within the
        worker's processing of this batch) but hang under the currently
        open span, labelled with their pool and shard id.
        """
        if not spans:
            return
        anchor = time.perf_counter() - self._epoch
        parent = self._stack[-1]
        for name, rel_start, duration in spans:
            child = Span(name, anchor + rel_start,
                         {"pool": pool, "shard": str(shard)})
            child.duration = duration
            parent.children.append(child)
            self._notify(child)

    def finish(self) -> None:
        self.root.duration = time.perf_counter() - self._epoch
        self._stack = [self.root]
        self._notify(self.root)

    def _notify(self, span: Span) -> None:
        if self._on_span is not None:
            self._on_span(span)

    def to_dict(self) -> Dict[str, object]:
        return {
            "trace_id": self.trace_id,
            "batch_seq": self.batch_seq,
            "size": self.size,
            "spans": self.root.to_dict(),
        }


class Tracer:
    """Holds the live trace and a bounded ring of finished ones."""

    def __init__(self, ring: int = 16,
                 on_span: Optional[Callable[[Span], None]] = None) -> None:
        if ring < 1:
            raise ValueError(f"trace ring must hold >= 1 trace, got {ring}")
        self.current: Optional[BatchTrace] = None
        self.finished: Deque[BatchTrace] = deque(maxlen=ring)
        self._on_span = on_span

    def begin(self, trace_id: str, batch_seq: int, size: int) -> BatchTrace:
        trace = BatchTrace(trace_id, batch_seq, size, on_span=self._on_span)
        self.current = trace
        return trace

    def end(self) -> Optional[BatchTrace]:
        trace = self.current
        if trace is not None:
            trace.finish()
            self.finished.append(trace)
            self.current = None
        return trace

    def export(self) -> List[Dict[str, object]]:
        return [trace.to_dict() for trace in self.finished]
