"""Exporters: Prometheus text exposition and a periodic log reporter.

``render_prometheus`` turns a :class:`~repro.obs.registry.MetricsRegistry`
snapshot into the Prometheus text exposition format (version 0.0.4):
``# HELP`` / ``# TYPE`` headers, escaped label values, cumulative
``_bucket{le=...}`` rows ending at ``+Inf``, plus ``_sum`` and ``_count``
for histograms, and the ``_total`` suffix convention for counters.  The
service tier's future ``/metrics`` endpoint returns this string verbatim.

``LogReporter`` is the zero-dependency exporter: hook it onto
``IngestDriver(on_batch=...)`` (or call ``report()`` on your own cadence)
and it logs a one-line digest every N batches.
"""

from __future__ import annotations

import logging
import math
from typing import Dict, List, Optional

from .registry import COUNTER, HISTOGRAM, MetricsRegistry


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", "\\\\").replace("\"", "\\\"")
            .replace("\n", "\\n"))


def _format_labels(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{name}="{_escape_label_value(str(value))}"'
             for name, value in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else repr(float(bound))


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in Prometheus text-exposition format."""
    lines: List[str] = []
    for family in registry.collect():
        name = family["name"]
        kind = family["type"]
        exposed = name
        if kind == COUNTER and not exposed.endswith("_total"):
            exposed = f"{exposed}_total"
        if family["help"]:
            lines.append(f"# HELP {exposed} {family['help']}")
        lines.append(f"# TYPE {exposed} {kind}")
        for sample in family["samples"]:
            labels = sample.get("labels", {})
            if kind == HISTOGRAM:
                for bound, cumulative in sample["buckets"]:
                    le = f'le="{_format_bound(bound)}"'
                    lines.append(f"{exposed}_bucket{_format_labels(labels, le)}"
                                 f" {int(cumulative)}")
                lines.append(f"{exposed}_sum{_format_labels(labels)}"
                             f" {_format_value(sample['sum'])}")
                lines.append(f"{exposed}_count{_format_labels(labels)}"
                             f" {int(sample['count'])}")
            else:
                lines.append(f"{exposed}{_format_labels(labels)}"
                             f" {_format_value(sample['value'])}")
    return "\n".join(lines) + "\n"


class LogReporter:
    """Logs a one-line telemetry digest every ``every_batches`` batches.

    Shaped to plug straight into ``IngestDriver(on_batch=reporter.on_batch)``;
    also callable directly (``reporter.report()``) from any loop.
    """

    def __init__(self, ctx, every_batches: int = 50,
                 logger: Optional[logging.Logger] = None) -> None:
        if every_batches < 1:
            raise ValueError(
                f"every_batches must be >= 1, got {every_batches}")
        self.ctx = ctx
        self.every_batches = every_batches
        self.logger = logger or logging.getLogger("repro.obs")
        self._batches_seen = 0

    def on_batch(self, driver, records) -> None:
        self._batches_seen += 1
        if self._batches_seen % self.every_batches == 0:
            self.report()

    def report(self) -> None:
        ctx = self.ctx
        tel = ctx.telemetry
        parts = [
            f"batch_seq={ctx.batch_seq}",
            f"timestamps={ctx.timestamps_processed}",
            f"matches={len(ctx.result_set)}",
            f"pairs_considered={ctx.pruning.stats.pairs_considered}",
            f"pruned={ctx.pruning.stats.total_pruned}",
        ]
        if getattr(tel, "enabled", False):
            parts.append(
                f"batch_p95={tel.batch_seconds.quantile(0.95):.6f}s")
        if ctx.ingest.batches_formed:
            parts.append(
                f"formation_p95={ctx.ingest.p95_formation_latency():.6f}s")
        self.logger.info("telemetry %s", " ".join(parts))
