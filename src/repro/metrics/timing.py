"""Wall-clock timing utilities and the break-up cost report (Figure 6).

The paper reports, for each new timestamp, the average wall-clock time of
the whole TER-iDS step and its break-up into online CDD selection, online
imputation and online ER.  :class:`StageTimer` accumulates per-stage wall
clock time; :class:`BreakupCost` is the per-dataset summary the Figure 6
bench prints.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

#: The single wall-clock source shared by :class:`StageTimer`,
#: :class:`Stopwatch` and the engine's end-to-end ``run`` timing, so every
#: reported duration is comparable.
now = time.perf_counter

#: Stage names used by the TER-iDS engine's break-up cost (Figure 6).
STAGE_CDD_SELECTION = "cdd_selection"
STAGE_IMPUTATION = "imputation"
STAGE_ER = "entity_resolution"
ALL_STAGES = (STAGE_CDD_SELECTION, STAGE_IMPUTATION, STAGE_ER)


@dataclass
class StageTimer:
    """Accumulates wall-clock time per named stage."""

    totals: Dict[str, float] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)

    @contextmanager
    def measure(self, stage: str) -> Iterator[None]:
        """Context manager accumulating the elapsed time into ``stage``."""
        start = now()
        try:
            yield
        finally:
            elapsed = now() - start
            self.totals[stage] = self.totals.get(stage, 0.0) + elapsed
            self.counts[stage] = self.counts.get(stage, 0) + 1

    def add(self, stage: str, seconds: float) -> None:
        """Manually add elapsed seconds to one stage."""
        self.totals[stage] = self.totals.get(stage, 0.0) + seconds
        self.counts[stage] = self.counts.get(stage, 0) + 1

    def total(self, stage: Optional[str] = None) -> float:
        """Total seconds of one stage (or of all stages)."""
        if stage is None:
            return sum(self.totals.values())
        return self.totals.get(stage, 0.0)

    def mean(self, stage: str) -> float:
        """Mean seconds per measured invocation of one stage."""
        count = self.counts.get(stage, 0)
        if count == 0:
            return 0.0
        return self.totals[stage] / count

    def reset(self) -> None:
        self.totals.clear()
        self.counts.clear()

    def as_dict(self) -> Dict[str, float]:
        return dict(self.totals)


@dataclass(frozen=True)
class BreakupCost:
    """Per-timestamp average cost of the three online TER-iDS stages."""

    cdd_selection: float
    imputation: float
    entity_resolution: float

    @property
    def total(self) -> float:
        return self.cdd_selection + self.imputation + self.entity_resolution

    def as_dict(self) -> Dict[str, float]:
        return {
            STAGE_CDD_SELECTION: self.cdd_selection,
            STAGE_IMPUTATION: self.imputation,
            STAGE_ER: self.entity_resolution,
        }

    @classmethod
    def from_timer(cls, timer: StageTimer, timestamps: int) -> "BreakupCost":
        """Average the accumulated stage totals over processed timestamps."""
        denominator = max(1, timestamps)
        return cls(
            cdd_selection=timer.total(STAGE_CDD_SELECTION) / denominator,
            imputation=timer.total(STAGE_IMPUTATION) / denominator,
            entity_resolution=timer.total(STAGE_ER) / denominator,
        )


@dataclass
class Stopwatch:
    """A tiny start/stop wall-clock timer used by the experiment harness."""

    _start: Optional[float] = None
    elapsed: float = 0.0

    def start(self) -> "Stopwatch":
        self._start = now()
        return self

    def stop(self) -> float:
        if self._start is None:
            raise RuntimeError("stopwatch was not started")
        self.elapsed += now() - self._start
        self._start = None
        return self.elapsed

    def reset(self) -> None:
        self._start = None
        self.elapsed = 0.0

    @contextmanager
    def measure(self) -> Iterator["Stopwatch"]:
        self.start()
        try:
            yield self
        finally:
            self.stop()


def time_callable(fn, *args, **kwargs):
    """Run ``fn`` and return ``(result, elapsed_seconds)``."""
    start = now()
    result = fn(*args, **kwargs)
    return result, now() - start
