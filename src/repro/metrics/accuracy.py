"""Effectiveness metrics: precision, recall and F-score (Equation (6)).

The paper measures the topic-related ER accuracy of each method as the
F-score of the returned pair set against the ground-truth matching pairs
(restricted to pairs that satisfy the topic/keyword constraint, since
non-topic pairs are not supposed to be returned at all).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Set, Tuple

from repro.core.matching import MatchPair

#: Order-independent identity of a ground-truth or reported pair.
PairKey = Tuple[Tuple[str, str], Tuple[str, str]]


def pair_key(left_source: str, left_rid: str,
             right_source: str, right_rid: str) -> PairKey:
    """Canonical (order-independent) identity of a record pair."""
    left = (left_source, left_rid)
    right = (right_source, right_rid)
    return (left, right) if left <= right else (right, left)


def match_pairs_to_keys(pairs: Iterable[MatchPair]) -> Set[PairKey]:
    """Convert reported :class:`MatchPair` objects to canonical keys."""
    return {pair.key() for pair in pairs}


@dataclass(frozen=True)
class AccuracyReport:
    """Precision / recall / F-score of one method on one workload."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def f_score(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) > 0 else 0.0

    def as_dict(self) -> dict:
        return {
            "precision": self.precision,
            "recall": self.recall,
            "f_score": self.f_score,
            "true_positives": self.true_positives,
            "false_positives": self.false_positives,
            "false_negatives": self.false_negatives,
        }


def evaluate_matches(reported: Iterable[MatchPair],
                     ground_truth: Iterable[PairKey]) -> AccuracyReport:
    """Compare reported pairs against ground-truth pair keys (Equation (6))."""
    reported_keys = match_pairs_to_keys(reported)
    truth_keys = set(ground_truth)
    true_positives = len(reported_keys & truth_keys)
    false_positives = len(reported_keys - truth_keys)
    false_negatives = len(truth_keys - reported_keys)
    return AccuracyReport(true_positives=true_positives,
                          false_positives=false_positives,
                          false_negatives=false_negatives)


def evaluate_key_sets(reported: Set[PairKey],
                      ground_truth: Set[PairKey]) -> AccuracyReport:
    """Same as :func:`evaluate_matches` but on pre-computed key sets."""
    true_positives = len(reported & ground_truth)
    return AccuracyReport(
        true_positives=true_positives,
        false_positives=len(reported) - true_positives,
        false_negatives=len(ground_truth) - true_positives,
    )
