"""Effectiveness and efficiency metrics."""

from repro.metrics.accuracy import (
    AccuracyReport,
    PairKey,
    evaluate_key_sets,
    evaluate_matches,
    match_pairs_to_keys,
    pair_key,
)
from repro.metrics.timing import (
    ALL_STAGES,
    STAGE_CDD_SELECTION,
    STAGE_ER,
    STAGE_IMPUTATION,
    BreakupCost,
    StageTimer,
    Stopwatch,
    time_callable,
)

__all__ = [
    "ALL_STAGES",
    "AccuracyReport",
    "BreakupCost",
    "PairKey",
    "STAGE_CDD_SELECTION",
    "STAGE_ER",
    "STAGE_IMPUTATION",
    "StageTimer",
    "Stopwatch",
    "evaluate_key_sets",
    "evaluate_matches",
    "match_pairs_to_keys",
    "pair_key",
    "time_callable",
]
