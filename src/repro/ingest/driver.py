"""The ingestion driver: N async sources → watermark clock → adaptive
batcher → staged TER-iDS runtime.

:class:`IngestDriver` multiplexes any number of :class:`~repro.ingest.sources.Source`
implementations into one bounded arrival queue, runs every arrival through
the :class:`~repro.ingest.clock.WatermarkClock` (per-stream watermarks,
bounded lateness, deterministic reordering) and the
:class:`~repro.ingest.batcher.AdaptiveBatcher` (size / deadline / watermark
triggers), and feeds the formed micro-batches to
``TERiDSEngine.process_batch`` — so the live path exercises exactly the
executors the offline harness pins against the goldens.

Determinism: replaying the same interleaved input through a
:class:`~repro.ingest.sources.ReplaySource` with ``lateness=0`` releases the
tuples in their original order whatever the trigger policy, and batched
execution is match-equivalent to the serial one — so ingestion reproduces
the offline executors' results bit-identically (pinned by
``tests/test_ingest.py`` against the ``tests/data/`` goldens).

Shutdown: when every source is exhausted (or :meth:`IngestDriver.stop` is
called) the driver performs a *graceful drain* — already-admitted arrivals
are observed, the reorder buffer is released, the final partial batch is
flushed — and then writes a final checkpoint when a ``checkpoint_path`` is
configured.  A checkpoint captures the *admitted* prefix: the engine's
online state plus every in-flight element (batcher pending + reorder
buffer), watermark positions and ingest counters.  A resumed run restores
the in-flight set and re-feeds the input from the first unadmitted tuple —
the snapshot's ``ingest.tuples_admitted`` gives the offset for a replay
(see :meth:`IngestDriver.checkpoint`).
"""

from __future__ import annotations

import asyncio
import logging
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.matching import MatchPair
from repro.core.time_window import TimeBasedWindow
from repro.ingest.batcher import AdaptiveBatcher, BatchPolicy
from repro.ingest.clock import (
    LATE_ADMIT,
    OBSERVED_LATE_ADMITTED,
    OBSERVED_LATE_SHED,
    OBSERVED_REORDERED,
    WatermarkClock,
)
from repro.ingest.sources import Source, StreamElement
from repro.persistence import record_from_dict, record_to_dict, save_checkpoint
from repro.runtime.checkpoint import engine_state_to_dict
from repro.runtime.context import IngestStats

logger = logging.getLogger(__name__)

#: Arrival-queue message kinds.
_ITEM = 0
_CLOSE = 1
_STOP = 2


@dataclass
class IngestReport:
    """Summary of one driver run.

    ``tuples_processed`` / ``batches_processed`` / ``total_seconds`` cover
    *this* run only; ``stats`` is the context-level :class:`IngestStats`,
    whose counters are cumulative across checkpoint restores.
    """

    tuples_processed: int
    batches_processed: int
    matches: List[MatchPair]
    stats: IngestStats
    final_watermark: float
    total_seconds: float

    @property
    def tuples_per_second(self) -> float:
        if self.total_seconds <= 0:
            return 0.0
        return self.tuples_processed / self.total_seconds


class IngestDriver:
    """Multiplex live sources into the staged TER-iDS pipeline.

    Parameters
    ----------
    engine:
        The :class:`~repro.core.engine.TERiDSEngine` to feed; its executor
        (serial or micro-batch, pooled or not) is used as-is.
    sources:
        The ingest sources; each holds its own watermark until exhausted.
    policy:
        Batch-formation policy (default: size-64 batches with a 50 ms
        latency deadline).
    lateness / late_policy:
        Bounded-lateness knobs of the :class:`WatermarkClock`.
    queue_capacity:
        Bound of the shared arrival queue; full-queue waits are counted as
        ``backpressure_waits`` and slow the sources down (asyncio
        backpressure) instead of buffering without bound.
    reorder_capacity:
        Bound of the watermark clock's reorder buffer (default
        ``4 * queue_capacity``).  A silent source holds the global
        watermark back while others keep arriving; beyond this cap the
        oldest held-back elements are force-released ahead of the
        watermark (best-effort ordering, counted as ``force_released``)
        so memory stays bounded.
    event_time_window:
        Optional event-time window horizon: when set, tuples whose event
        time falls ``event_time_window`` units behind the global watermark
        are retracted from the ER-grid and the entity result set
        (watermark-driven expiry over the existing
        :class:`~repro.core.time_window.TimeBasedWindow` machinery).
    idle_timeout:
        Optional idle-source punctuation in wall-clock seconds: a source
        with no arrival for this long is marked idle on the watermark
        clock and stops holding the global watermark back (a stalled
        ``CallbackSource`` no longer freezes batching, reordering and
        event-time expiry for every other stream).  The source rejoins
        the watermark with its next arrival, which is then subject to the
        normal late policy.  Idle transitions are counted as
        ``idle_timeouts`` on :class:`IngestStats`.
    process_in_executor:
        Run ``engine.process_batch`` on a single worker thread
        (``loop.run_in_executor``) instead of inline on the event loop, so
        paced sources keep producing into the arrival queue while a slow
        refinement runs.  Batches stay strictly sequential (one in flight);
        each off-loop invocation is counted as ``executor_waits`` on
        :class:`IngestStats`.
    checkpoint_path / checkpoint_every_batches:
        Write a JSON checkpoint after every N processed batches (and a
        final one on drain) to ``checkpoint_path``.
    on_batch:
        Optional callback ``on_batch(driver, records)`` invoked after each
        processed batch (tests, live metrics, custom checkpoint triggers).
    controller:
        Optional :class:`~repro.runtime.controller.RuntimeController` to
        run between batches.  The driver adopts it: the controller's
        ``batcher`` is bound to the driver's live batcher (so batch-policy
        retargets act on the real trigger policy) and its
        :meth:`~repro.runtime.controller.RuntimeController.after_batch` is
        invoked after each processed batch — a quiescent point even with
        ``process_in_executor`` (the batch has fully returned), so
        reconfiguration tears pools down at a safe boundary.  Runs after
        ``on_batch``.
    collect_matches:
        Accumulate every discovered pair on ``driver.matches`` (the replay
        / testing default).  Disable for indefinitely running drivers —
        the maintained result set (``engine.current_matches()``) and
        ``on_batch`` remain available without unbounded growth.
    """

    def __init__(self, engine, sources: Sequence[Source],
                 policy: Optional[BatchPolicy] = None,
                 lateness: float = 0.0, late_policy: str = LATE_ADMIT,
                 queue_capacity: int = 1024,
                 reorder_capacity: Optional[int] = None,
                 event_time_window: Optional[float] = None,
                 idle_timeout: Optional[float] = None,
                 process_in_executor: bool = False,
                 checkpoint_path=None,
                 checkpoint_every_batches: Optional[int] = None,
                 on_batch: Optional[Callable] = None,
                 controller=None,
                 collect_matches: bool = True) -> None:
        if not sources:
            raise ValueError("IngestDriver needs at least one source")
        names = [source.name for source in sources]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate source names: {names}")
        if queue_capacity <= 0:
            raise ValueError(
                f"queue_capacity must be positive, got {queue_capacity}")
        if reorder_capacity is not None and reorder_capacity <= 0:
            raise ValueError(
                f"reorder_capacity must be positive, got {reorder_capacity}")
        if event_time_window is not None and event_time_window <= 0:
            raise ValueError(
                f"event_time_window must be positive, got {event_time_window}")
        if idle_timeout is not None and idle_timeout <= 0:
            raise ValueError(
                f"idle_timeout must be positive, got {idle_timeout}")
        if checkpoint_every_batches is not None and checkpoint_every_batches <= 0:
            raise ValueError("checkpoint_every_batches must be positive, "
                             f"got {checkpoint_every_batches}")
        if checkpoint_every_batches is not None and checkpoint_path is None:
            raise ValueError("checkpoint_every_batches requires a "
                             "checkpoint_path to write to")
        self.engine = engine
        self.sources = list(sources)
        self.policy = policy or BatchPolicy(max_batch=64, max_delay=0.05)
        self.queue_capacity = queue_capacity
        self.reorder_capacity = (reorder_capacity if reorder_capacity
                                 is not None else 4 * queue_capacity)
        self.event_time_window = event_time_window
        self.idle_timeout = idle_timeout
        self.process_in_executor = process_in_executor
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every_batches = checkpoint_every_batches
        self.on_batch = on_batch
        self.collect_matches = collect_matches
        self.stats: IngestStats = engine.ctx.ingest
        self.matches: List[MatchPair] = []
        self.batches_processed = 0
        self.tuples_processed = 0
        self._clock = WatermarkClock(lateness=lateness, late_policy=late_policy)
        self._batcher = AdaptiveBatcher(self.policy, self.stats,
                                        queue_depth=self._queue_depth)
        self.controller = controller
        if controller is not None:
            if controller.engine is not engine:
                raise ValueError("controller is attached to a different "
                                 "engine than this driver feeds")
            # Bind the controller to the live batcher so retargets act on
            # the real trigger policy (a controller built standalone has no
            # batcher yet).
            controller.batcher = self._batcher
            if not controller.state.get("target_max_batch"):
                controller.state["target_max_batch"] = self.policy.max_batch
        self._event_window = (TimeBasedWindow(duration=event_time_window)
                              if event_time_window is not None else None)
        self._max_event = -math.inf
        self._queue: Optional[asyncio.Queue] = None
        #: Wall-clock instant of the last arrival per still-open source
        #: (idle-timeout tracking; entries leave on close).
        self._last_arrival: Dict[str, float] = {}
        #: Idleness accrues only while the loop is receptive: an *inline*
        #: ``process_batch`` blocks the event loop, so no source could have
        #: produced during it — the floor advances past such sections so
        #: they never count towards a source's silence.
        self._idle_floor = 0.0
        self._process_pool = None
        self._stopping = False
        self._ran = False
        self._checkpoint_due = False
        self._restored_pending: List[StreamElement] = []

    # -- public API ----------------------------------------------------------
    def run(self) -> IngestReport:
        """Drive every source to exhaustion (blocking asyncio front-end).

        If a source's iterator raises, the driver still drains and
        checkpoints everything already admitted, then re-raises the
        source's exception instead of returning a partial report.
        """
        return asyncio.run(self.run_async())

    def stop(self) -> None:
        """Request a graceful drain: stop pulling from the sources, process
        everything already admitted, flush, checkpoint.

        Call from the event-loop thread (e.g. an ``on_batch`` callback or a
        task on the same loop); from another thread, dispatch it with
        ``loop.call_soon_threadsafe(driver.stop)`` — the arrival queue is a
        plain ``asyncio.Queue`` and is not thread-safe.
        """
        self._stopping = True
        if self._queue is not None:
            try:
                self._queue.put_nowait((_STOP, None))
            except asyncio.QueueFull:
                pass  # the mux is draining the queue; the flag suffices

    async def run_async(self) -> IngestReport:
        if self._ran:
            raise RuntimeError("an IngestDriver is single-use; build a new "
                               "one (restoring a checkpoint) to resume")
        self._ran = True
        loop = asyncio.get_running_loop()
        start = loop.time()
        queue: asyncio.Queue = asyncio.Queue(maxsize=self.queue_capacity)
        self._queue = queue
        for source in self.sources:
            # ``open`` (not ``register``): a restored checkpoint may have
            # recorded this source name closed by its final drain.  A
            # restored *idle* mark is re-applied after the open: the source
            # was silent at the snapshot and must stay off the watermark
            # until it actually emits (its next observe wakes it), instead
            # of stalling the resumed run until the next idle timeout.
            was_idle = self._clock.is_idle(source.name)
            self._clock.open(source.name)
            if was_idle:
                self._clock.mark_idle(source.name)
            self._last_arrival[source.name] = loop.time()
        self._idle_floor = loop.time()
        if self.process_in_executor and self._process_pool is None:
            from concurrent.futures import ThreadPoolExecutor

            # A single worker keeps batches strictly sequential (the
            # engine is not re-entrant); the point is only that the event
            # loop — and with it the paced source readers — stays live
            # while a batch refines.
            self._process_pool = ThreadPoolExecutor(max_workers=1)
        readers = [asyncio.create_task(self._read(source, queue))
                   for source in self.sources]
        open_sources = len(self.sources)
        try:
            return await self._mux(loop, queue, readers, open_sources, start)
        finally:
            # The off-loop worker thread must not outlive the run — also
            # on the exception paths (a raising engine or source).
            if self._process_pool is not None:
                self._process_pool.shutdown()
                self._process_pool = None

    async def _mux(self, loop, queue: asyncio.Queue, readers, open_sources,
                   start: float) -> IngestReport:
        """The mux loop + graceful drain of :meth:`run_async`."""
        try:
            if self._restored_pending:
                # Re-enter the snapshot's batcher-pending elements in their
                # original processing order before any new arrival is
                # *processed* (the readers may already enqueue).
                now = loop.time()
                for element in self._restored_pending:
                    await self._maybe_process(self._batcher.add(element, now))
                self._restored_pending = []
            while open_sources > 0 and not self._stopping:
                now = loop.time()
                timeout = self._next_due(now)
                try:
                    kind, payload = await asyncio.wait_for(queue.get(), timeout)
                except asyncio.TimeoutError:
                    now = loop.time()
                    if self._check_idle(now):
                        # An idle mark advances the global watermark, so
                        # held-back elements may release: run a full pump,
                        # not just the trigger poll.
                        await self._pump(now)
                    else:
                        await self._maybe_process(
                            self._batcher.poll(now, self._clock.watermark))
                    self._write_due_checkpoint()
                    continue
                if kind == _STOP:
                    break
                if kind == _CLOSE:
                    self._clock.close(payload)
                    self._last_arrival.pop(payload, None)
                    open_sources -= 1
                else:
                    self._observe(payload)
                self._check_idle(loop.time())
                await self._pump(loop.time())
                # Periodic checkpoints are written here, at a quiescent
                # point: every released element is either processed or in
                # the batcher, so the snapshot (engine state + in-flight
                # elements) is complete even under reordering.
                self._write_due_checkpoint()
        finally:
            for task in readers:
                task.cancel()
            outcomes = await asyncio.gather(*readers, return_exceptions=True)
            # A source whose iterator raised still delivered its close
            # marker (finally), which must not masquerade as a clean
            # exhaustion: remember the failure and surface it after the
            # drain below has secured the already-admitted data.
            source_errors = [
                outcome for outcome in outcomes
                if isinstance(outcome, BaseException)
                and not isinstance(outcome, asyncio.CancelledError)
            ]

        # Graceful drain: everything already admitted to the arrival queue
        # is observed, the reorder buffer is released, and the final
        # partial batch is flushed.
        while True:
            try:
                kind, payload = queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            if kind == _ITEM:
                self._observe(payload)
            elif kind == _CLOSE:
                self._clock.close(payload)
        now = loop.time()
        for element in self._clock.drain():
            await self._maybe_process(self._batcher.add(element, now))
        await self._maybe_process(self._batcher.flush(now))

        if self.checkpoint_path is not None:
            save_checkpoint(self.checkpoint(), self.checkpoint_path)
        if source_errors:
            raise source_errors[0]
        return IngestReport(
            tuples_processed=self.tuples_processed,
            batches_processed=self.batches_processed,
            matches=self.matches,
            stats=self.stats,
            final_watermark=self._clock.watermark,
            total_seconds=loop.time() - start,
        )

    # -- query-time resolution (interleaved lookups) -------------------------
    def resolve(self, rid: str, source: str, topic=None, gamma=None):
        """Resolve one in-window entity's cluster between batches.

        The on-demand read path over the live window (see
        :mod:`repro.runtime.query`): safe from the event-loop thread — an
        ``on_batch`` callback or a task on the same loop — where lookups
        interleave with batch processing at batch boundaries.  With
        ``process_in_executor`` a batch may be refining *off* the loop
        while this runs; use :meth:`resolve_async` there so the lookup
        serialises behind the in-flight batch instead of racing it.
        """
        return self.engine.resolve(rid, source, topic=topic, gamma=gamma)

    async def resolve_async(self, rid: str, source: str, topic=None,
                            gamma=None):
        """:meth:`resolve`, serialised with off-loop batch processing.

        When the driver processes batches on its single worker thread
        (``process_in_executor``), the lookup is submitted to that same
        thread — batches stay strictly sequential and the lookup observes a
        quiescent engine.  Without the worker thread this is just
        :meth:`resolve`.
        """
        if self._process_pool is not None:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                self._process_pool,
                lambda: self.engine.resolve(rid, source, topic=topic,
                                            gamma=gamma))
        return self.engine.resolve(rid, source, topic=topic, gamma=gamma)

    def resolve_many(self, entities, topic=None, gamma=None):
        """Resolve a batch of in-window entities between batches.

        One shared frontier expansion serves all cache misses (see
        :meth:`~repro.core.engine.TERiDSEngine.resolve_many`); same
        threading rules as :meth:`resolve`.
        """
        return self.engine.resolve_many(entities, topic=topic, gamma=gamma)

    async def resolve_many_async(self, entities, topic=None, gamma=None):
        """:meth:`resolve_many`, serialised with off-loop batch processing
        (same single-worker hand-off as :meth:`resolve_async`)."""
        if self._process_pool is not None:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                self._process_pool,
                lambda: self.engine.resolve_many(entities, topic=topic,
                                                 gamma=gamma))
        return self.engine.resolve_many(entities, topic=topic, gamma=gamma)

    # -- internals -----------------------------------------------------------
    def _queue_depth(self) -> int:
        return self._queue.qsize() if self._queue is not None else 0

    def _next_due(self, now: float) -> Optional[float]:
        """Seconds until the mux must wake without an arrival: the batcher
        deadline or the next idle-source timeout, whichever comes first."""
        due = self._batcher.time_until_due(now)
        if self.idle_timeout is not None:
            deadlines = [
                max(last, self._idle_floor) + self.idle_timeout - now
                for name, last in self._last_arrival.items()
                if not self._clock.is_idle(name)
            ]
            if deadlines:
                idle_due = max(0.0, min(deadlines))
                due = idle_due if due is None else min(due, idle_due)
        return due

    def _check_idle(self, now: float) -> bool:
        """Mark sources silent for ``idle_timeout`` receptive seconds as idle."""
        if self.idle_timeout is None:
            return False
        marked = False
        for name, last in self._last_arrival.items():
            if (now - max(last, self._idle_floor) >= self.idle_timeout
                    and self._clock.mark_idle(name)):
                self.stats.idle_timeouts += 1
                marked = True
        return marked

    async def _read(self, source: Source, queue: asyncio.Queue) -> None:
        cancelled = False
        loop = asyncio.get_running_loop()
        try:
            async for element in source:
                if self._stopping:
                    break
                # Idle tracking is stamped HERE, at true arrival time: the
                # mux may be busy in a slow ``_process`` for longer than
                # ``idle_timeout``, and a stamp taken at dequeue time would
                # then mark perfectly live sources idle (and release
                # reorder-buffered elements ahead of their queued ones).
                self._last_arrival[source.name] = loop.time()
                if queue.full():
                    self.stats.backpressure_waits += 1
                await queue.put((_ITEM, element))
        except asyncio.CancelledError:
            cancelled = True
            raise
        finally:
            # On normal exhaustion the close marker MUST reach the mux or
            # ``open_sources`` never hits zero and the run hangs, so block
            # until there is room.  After a cancellation (stop/drain) the
            # blocking put would deadlock instead — the cancellation was
            # already delivered, nobody consumes the queue while the mux
            # awaits this task — so skip it: the post-loop drain closes
            # every stream through ``clock.drain`` anyway.
            try:
                queue.put_nowait((_CLOSE, source.name))
            except asyncio.QueueFull:
                if not cancelled:
                    await queue.put((_CLOSE, source.name))

    def _observe(self, element: StreamElement) -> None:
        status = self._clock.observe(element)
        if status == OBSERVED_REORDERED:
            self.stats.reordered += 1
        elif status == OBSERVED_LATE_ADMITTED:
            self.stats.admitted_late += 1
        elif status == OBSERVED_LATE_SHED:
            self.stats.shed_late += 1

    async def _pump(self, now: float) -> None:
        """Move released elements into the batcher; fire due triggers."""
        for element in self._clock.release_ready():
            await self._maybe_process(self._batcher.add(element, now))
        overflow = self._clock.release_overflow(self.reorder_capacity)
        if overflow:
            self.stats.force_released += len(overflow)
            for element in overflow:
                await self._maybe_process(self._batcher.add(element, now))
        await self._maybe_process(self._batcher.poll(now,
                                                     self._clock.watermark))

    async def _maybe_process(self,
                             batch: Optional[List[StreamElement]]) -> None:
        if batch:
            await self._process(batch)

    async def _process(self, batch: List[StreamElement]) -> None:
        records = [element.record for element in batch]
        if self._process_pool is not None:
            # Off-loop processing: the source readers keep filling the
            # arrival queue while the engine refines; batches remain
            # strictly sequential (awaited one at a time).  The readers
            # stamp arrivals throughout, so idle accounting stays live.
            self.stats.executor_waits += 1
            loop = asyncio.get_running_loop()
            batch_matches = await loop.run_in_executor(
                self._process_pool, self.engine.process_batch, records)
        else:
            batch_matches = self.engine.process_batch(records)
            # The inline call blocked the loop: nothing could arrive, so
            # the blocked span must not count towards any source's silence.
            self._idle_floor = asyncio.get_running_loop().time()
        if self.collect_matches:
            self.matches.extend(batch_matches)
        self.batches_processed += 1
        self.tuples_processed += len(records)
        absorbed = self.engine.pipeline.maintenance.absorb_complete_stream_tuples(
            records)
        self.stats.absorbed_samples += absorbed
        if self._event_window is not None:
            self._expire_by_watermark(batch)
        if self.on_batch is not None:
            self.on_batch(self, records)
        if self.controller is not None:
            # A quiescent point even off-loop: the batch above has fully
            # returned, so pool teardown/re-seed here is bit-identity safe.
            self.controller.after_batch(self, records)
        if (self.checkpoint_every_batches is not None
                and self.batches_processed % self.checkpoint_every_batches == 0):
            # Deferred to the mux loop's quiescent point — mid-``_pump``,
            # elements released but not yet handed to the batcher would be
            # missing from the snapshot.
            self._checkpoint_due = True

    def _write_due_checkpoint(self) -> None:
        if self._checkpoint_due and self.checkpoint_path is not None:
            save_checkpoint(self.checkpoint(), self.checkpoint_path)
            ctx = self.engine.ctx
            logger.info(
                "periodic checkpoint: batch_seq=%d trace_id=%s batches=%d "
                "tuples=%d path=%s", ctx.batch_seq, ctx.last_trace_id,
                self.batches_processed, self.tuples_processed,
                self.checkpoint_path)
        self._checkpoint_due = False

    def _expire_by_watermark(self, batch: List[StreamElement]) -> None:
        """Watermark-driven event-time expiry (grid + result-set retraction)."""
        window = self._event_window
        retract = self.engine.pipeline.maintenance.retract
        for element in batch:
            self._max_event = max(self._max_event, element.event_time)
            # Late-admitted elements may sit behind the window clock; they
            # enter at the current edge rather than rewinding time.
            arrival = max(element.event_time, window.current_time)
            self.stats.expired_by_watermark += retract(
                window.insert(element.record, arrival))
        watermark = self._clock.watermark
        if watermark == math.inf:
            # All sources closed: event time stands at the newest observed
            # event, it does not leap to infinity.  (A -inf watermark — a
            # still-silent source — must NOT fall back: that source may
            # yet deliver old events, so the window cannot advance on the
            # other streams' progress.)
            watermark = self._max_event
        if math.isfinite(watermark) and watermark > window.current_time:
            self.stats.expired_by_watermark += retract(
                window.advance_to(watermark))

    # -- checkpoint / restore ------------------------------------------------
    def checkpoint(self) -> Dict:
        """Snapshot the admitted prefix: engine state + in-flight elements.

        ``in_flight`` carries every element admitted from the sources but
        not yet processed — the batcher's pending buffer plus the clock's
        reorder buffer — so nothing is lost even when a periodic checkpoint
        fires while out-of-order tuples are held back.  A resumed run
        restores those and re-feeds the input from the first *unadmitted*
        tuple (``ingest.tuples_admitted`` gives the offset for a replay;
        external producers must re-push anything sent after the snapshot).
        The driver's own periodic checkpoints are taken at quiescent mux
        points; call this yourself only when the driver is not mid-run
        (e.g. after ``run`` returns).
        """
        state = engine_state_to_dict(self.engine.ctx)

        def rows(elements):
            return [[element.event_time, element.origin,
                     record_to_dict(element.record)] for element in elements]

        ingest: Dict = {
            "clock": self._clock.state_to_dict(),
            "tuples_admitted": self._clock.observed_count,
            # Kept separate: the batcher's pending elements preserve their
            # *processing* order (a late-admitted element sits out of event-
            # time order there), while the reorder buffer is event-time
            # sorted.  Restoring both through one sorted pool would reorder
            # the late-admitted ones and diverge from the uninterrupted run.
            "in_flight": {
                "pending": rows(self._batcher.pending_elements()),
                "buffered": rows(self._clock.buffered_elements()),
            },
        }
        if self._event_window is not None:
            ingest["event_window"] = {
                "duration": self._event_window.duration,
                "current_time": self._event_window.current_time,
                "items": [
                    [arrival, record_to_dict(item)]
                    for arrival, item in zip(self._event_window.timestamps(),
                                             self._event_window.items())
                ],
            }
        state["ingest"] = ingest
        return state

    def restore_checkpoint(self, state: Dict) -> None:
        """Rebuild engine + ingest state from a :meth:`checkpoint` snapshot."""
        self.engine.restore_checkpoint(state)
        ingest = state.get("ingest", {})
        self._clock.restore_state(ingest.get("clock", {}))

        def elements(rows):
            return [
                StreamElement(record=record_from_dict(row),
                              event_time=event_time, origin=origin)
                for event_time, origin, row in rows
            ]

        in_flight = ingest.get("in_flight", {})
        # Batcher-pending elements keep their snapshot *processing* order
        # (late-admitted ones sit out of event-time order); they re-enter
        # the batcher directly when the run starts.  Reorder-buffer
        # elements go back to the clock and wait for the watermark.
        self._restored_pending = elements(in_flight.get("pending", []))
        self._clock.restore_buffered(elements(in_flight.get("buffered", [])))
        window_state = ingest.get("event_window")
        if window_state is not None:
            if self._event_window is None:
                raise ValueError(
                    "checkpoint carries an event-time window but this driver "
                    "was built without event_time_window")
            duration = window_state.get("duration")
            if duration is not None and duration != self._event_window.duration:
                # A narrower resumed window would expire restored items on
                # insert *after* the engine restore already re-registered
                # them in the grid/result set — silently stranding them.
                raise ValueError(
                    f"checkpoint event-time window duration {duration} does "
                    f"not match this driver's event_time_window "
                    f"{self._event_window.duration}")
            for arrival, row in window_state.get("items", []):
                item = record_from_dict(row)
                self._event_window.insert(item, arrival)
                self._max_event = max(self._max_event, arrival)
            current = window_state.get("current_time", 0)
            if current > self._event_window.current_time:
                self._event_window.advance_to(current)
