"""Adaptive micro-batch formation for the ingestion driver.

A batch is emitted when the first of three triggers fires:

* **size** — the pending buffer reached ``max_batch`` elements;
* **deadline** — the oldest pending element has waited ``max_delay``
  wall-clock seconds (bounds formation latency under a trickle);
* **watermark** — the global event-time watermark advanced at least
  ``watermark_stride`` units past the last flush (aligns batch boundaries
  with event-time progress, e.g. for watermark-driven expiry).

The batcher is deliberately synchronous and pure (wall-clock instants and
watermarks are passed in), so its trigger behaviour is directly unit- and
property-testable; the asyncio plumbing lives in
:class:`~repro.ingest.driver.IngestDriver`.  Trigger counts, batch sizes and
formation latencies are recorded on the shared
:class:`~repro.runtime.context.IngestStats`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.ingest.sources import StreamElement
from repro.runtime.context import IngestStats

#: Trigger labels recorded in ``IngestStats.triggers``.
TRIGGER_SIZE = "size"
TRIGGER_DEADLINE = "deadline"
TRIGGER_WATERMARK = "watermark"
TRIGGER_DRAIN = "drain"


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs of adaptive batch formation.

    ``max_batch`` must be positive; ``max_delay`` (seconds) and
    ``watermark_stride`` (event-time units) are optional triggers — ``None``
    disables them, leaving pure size-triggered batching.
    """

    max_batch: int = 64
    max_delay: Optional[float] = None
    watermark_stride: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {self.max_batch}")
        if self.max_delay is not None and self.max_delay <= 0:
            raise ValueError(f"max_delay must be positive, got {self.max_delay}")
        if self.watermark_stride is not None and self.watermark_stride <= 0:
            raise ValueError(
                f"watermark_stride must be positive, got {self.watermark_stride}")


class AdaptiveBatcher:
    """Size / deadline / watermark triggered micro-batch formation."""

    def __init__(self, policy: BatchPolicy, stats: IngestStats,
                 queue_depth: Optional[Callable[[], int]] = None) -> None:
        self.policy = policy
        self.stats = stats
        #: Probe for the arrival-queue depth at emit time (the driver wires
        #: its bounded queue's ``qsize`` in; standalone use reports 0).
        self.queue_depth = queue_depth or (lambda: 0)
        self._pending: List[StreamElement] = []
        self._first_enqueue: Optional[float] = None
        self._last_flush_watermark = -math.inf

    @property
    def pending(self) -> int:
        """Number of elements waiting for a trigger."""
        return len(self._pending)

    def retarget(self, policy: BatchPolicy) -> BatchPolicy:
        """Swap the trigger policy in place; returns the previous one.

        Safe at any point between emits: the policy is only read when
        triggers are checked (``add`` / ``poll`` / ``time_until_due``), so
        already-pending elements simply meet the new thresholds — a
        shrunken ``max_batch`` emits on the next ``add``, a longer
        ``max_delay`` extends the current deadline.  This is the ingest-side
        *act* hook of the runtime controller
        (:mod:`repro.runtime.controller`).
        """
        if not isinstance(policy, BatchPolicy):
            raise TypeError(f"retarget expects a BatchPolicy, "
                            f"got {type(policy).__name__}")
        previous = self.policy
        self.policy = policy
        return previous

    def pending_elements(self) -> List[StreamElement]:
        """Snapshot of the waiting elements (checkpoint serialisation)."""
        return list(self._pending)

    def add(self, element: StreamElement,
            now: float) -> Optional[List[StreamElement]]:
        """Buffer one released element; returns a batch on the size trigger."""
        if not self._pending:
            self._first_enqueue = now
        self._pending.append(element)
        if len(self._pending) >= self.policy.max_batch:
            return self._emit(now, TRIGGER_SIZE)
        return None

    def poll(self, now: float,
             watermark: float) -> Optional[List[StreamElement]]:
        """Check the deadline and watermark triggers (after adds/timeouts)."""
        if not self._pending:
            # Track watermark progress even while idle so a later trickle is
            # not flushed immediately by a stride crossed long ago.
            if self.policy.watermark_stride is not None:
                self._last_flush_watermark = max(self._last_flush_watermark,
                                                 watermark)
            return None
        if (self.policy.max_delay is not None
                and self._first_enqueue is not None
                and now - self._first_enqueue >= self.policy.max_delay):
            return self._emit(now, TRIGGER_DEADLINE)
        if self.policy.watermark_stride is not None:
            # The stride is measured from the last flush, but never from
            # before the pending batch started: a batch closes once the
            # watermark has advanced ``watermark_stride`` units past its
            # first event.
            baseline = max(self._last_flush_watermark,
                           self._pending[0].event_time)
            if watermark - baseline >= self.policy.watermark_stride:
                return self._emit(now, TRIGGER_WATERMARK, watermark=watermark)
        return None

    def time_until_due(self, now: float) -> Optional[float]:
        """Seconds until the deadline trigger fires (None = no deadline)."""
        if self.policy.max_delay is None or not self._pending:
            return None
        assert self._first_enqueue is not None
        return max(0.0, self._first_enqueue + self.policy.max_delay - now)

    def flush(self, now: float,
              trigger: str = TRIGGER_DRAIN) -> Optional[List[StreamElement]]:
        """Emit whatever is pending (drain path); None when empty."""
        if not self._pending:
            return None
        return self._emit(now, trigger)

    def _emit(self, now: float, trigger: str,
              watermark: Optional[float] = None) -> List[StreamElement]:
        batch = self._pending
        self._pending = []
        latency = 0.0 if self._first_enqueue is None else now - self._first_enqueue
        self._first_enqueue = None
        if watermark is not None:
            self._last_flush_watermark = watermark
        elif batch:
            self._last_flush_watermark = max(self._last_flush_watermark,
                                             batch[-1].event_time)
        self.stats.record_batch(size=len(batch), latency=latency,
                                queue_depth=self.queue_depth(),
                                trigger=trigger)
        return batch
