"""Async streaming ingestion: live sources → watermarks → adaptive batches.

The subsystem that turns the offline reproduction into a servable streaming
system: :mod:`repro.ingest.sources` define where tuples come from
(:class:`ReplaySource`, :class:`SyntheticRateSource`, :class:`CallbackSource`),
:mod:`repro.ingest.clock` tracks event time with per-stream watermarks and
bounded lateness, :mod:`repro.ingest.batcher` forms micro-batches
adaptively (size / latency deadline / watermark advance), and
:mod:`repro.ingest.driver` multiplexes N sources into the staged runtime
with graceful drain + checkpoint — deterministically reproducing the
offline executors' results when replaying the same interleaved input.
"""

from repro.ingest.batcher import (
    AdaptiveBatcher,
    BatchPolicy,
    TRIGGER_DEADLINE,
    TRIGGER_DRAIN,
    TRIGGER_SIZE,
    TRIGGER_WATERMARK,
)
from repro.ingest.clock import (
    LATE_ADMIT,
    LATE_SHED,
    OBSERVED_LATE_ADMITTED,
    OBSERVED_LATE_SHED,
    OBSERVED_READY,
    OBSERVED_REORDERED,
    WatermarkClock,
)
from repro.ingest.driver import IngestDriver, IngestReport
from repro.ingest.sources import (
    CallbackSource,
    ReplaySource,
    Source,
    StreamElement,
    SyntheticRateSource,
)

__all__ = [
    "AdaptiveBatcher",
    "BatchPolicy",
    "CallbackSource",
    "IngestDriver",
    "IngestReport",
    "LATE_ADMIT",
    "LATE_SHED",
    "OBSERVED_LATE_ADMITTED",
    "OBSERVED_LATE_SHED",
    "OBSERVED_READY",
    "OBSERVED_REORDERED",
    "ReplaySource",
    "Source",
    "StreamElement",
    "SyntheticRateSource",
    "TRIGGER_DEADLINE",
    "TRIGGER_DRAIN",
    "TRIGGER_SIZE",
    "TRIGGER_WATERMARK",
    "WatermarkClock",
]
