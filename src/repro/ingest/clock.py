"""Event-time tracking: per-stream watermarks and bounded lateness.

The watermark clock sits between the ingest sources and the batcher.  Every
source has a *high mark* (the largest event time it has emitted) and a
watermark ``high - lateness``; the **global watermark** is the minimum over
all open sources (an exhausted/closed source stops holding it back).  An
element is *released* to the batcher once its event time is covered by the
global watermark, and releases happen in ``(event_time, arrival_seq)``
order — so as long as no element is *late* (behind its own stream's
watermark on arrival), the released sequence is non-decreasing in event
time: watermark-monotone batches, whatever interleaving the sources
produced within the lateness bound.

Late elements (event time strictly behind the stream watermark) follow the
configured policy: ``admit`` releases them immediately out of order (they
are counted, and batches lose strict monotonicity), ``shed`` drops them
(counted as shed).
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Tuple

from repro.ingest.sources import StreamElement

#: Late-arrival policies.
LATE_ADMIT = "admit"
LATE_SHED = "shed"

#: ``observe`` outcomes.
OBSERVED_READY = "ready"          # in order; releasable now or soon
OBSERVED_REORDERED = "reordered"  # out of order but within the bound
OBSERVED_LATE_ADMITTED = "late_admitted"
OBSERVED_LATE_SHED = "late_shed"


class WatermarkClock:
    """Bounded-lateness event-time clock over N ingest sources.

    Parameters
    ----------
    lateness:
        Allowed lateness ``L`` in event-time units: a stream's watermark
        trails its high mark by ``L``, so an element may arrive up to ``L``
        event-time units behind the newest one of its stream before it
        counts as late.
    late_policy:
        ``"admit"`` (default) or ``"shed"`` — what to do with late elements.
    """

    def __init__(self, lateness: float = 0.0,
                 late_policy: str = LATE_ADMIT) -> None:
        if lateness < 0:
            raise ValueError(f"lateness must be >= 0, got {lateness}")
        if late_policy not in (LATE_ADMIT, LATE_SHED):
            raise ValueError(
                f"late_policy must be {LATE_ADMIT!r} or {LATE_SHED!r}, "
                f"got {late_policy!r}")
        self.lateness = lateness
        self.late_policy = late_policy
        self._high: Dict[str, float] = {}
        self._closed: Dict[str, bool] = {}
        self._idle: set = set()
        self._buffer: List[Tuple[float, int, StreamElement]] = []
        self._admitted: List[StreamElement] = []
        self._seq = 0

    # -- stream lifecycle ----------------------------------------------------
    def register(self, origin: str) -> None:
        """Announce a source before it emits; it holds the global watermark
        at ``-inf`` until its first element (or its close)."""
        self._high.setdefault(origin, -math.inf)
        self._closed.setdefault(origin, False)

    def close(self, origin: str) -> None:
        """Mark a source exhausted; it no longer holds back the watermark."""
        self.register(origin)
        self._closed[origin] = True

    def open(self, origin: str) -> None:
        """(Re-)open a source: a driver that actively reads it counts it
        into the global watermark again even if a restored checkpoint had
        recorded it closed (e.g. the final drain closes every stream)."""
        self.register(origin)
        self._closed[origin] = False
        self._idle.discard(origin)

    # -- idle punctuation ----------------------------------------------------
    def mark_idle(self, origin: str) -> bool:
        """Temporarily exclude a silent source from the global watermark.

        A registered source that has stopped emitting (a stalled
        ``CallbackSource``, a producer outage) would otherwise hold the
        global watermark — and with it the reorder buffer and any
        watermark-triggered batching/expiry — forever.  Marking it idle is
        a revocable punctuation: the source rejoins the watermark
        automatically with its next :meth:`observe`, whose element is then
        classified against its own stream watermark as usual (it may be
        late under the configured policy, exactly like any stale arrival).
        Returns ``False`` when the source is already idle or closed (so
        callers can count distinct idle transitions).
        """
        self.register(origin)
        if self._closed.get(origin, False) or origin in self._idle:
            return False
        self._idle.add(origin)
        return True

    def is_idle(self, origin: str) -> bool:
        return origin in self._idle

    # -- watermarks ----------------------------------------------------------
    def stream_watermark(self, origin: str) -> float:
        if self._closed.get(origin, False) or origin in self._idle:
            return math.inf
        return self._high.get(origin, -math.inf) - self.lateness

    @property
    def watermark(self) -> float:
        """Global watermark: min over the open sources' watermarks."""
        if not self._high:
            return -math.inf
        return min(self.stream_watermark(origin) for origin in self._high)

    @property
    def buffered(self) -> int:
        """Elements held in the reorder buffer (not yet released)."""
        return len(self._buffer)

    @property
    def observed_count(self) -> int:
        """Total arrivals observed so far (including shed ones)."""
        return self._seq

    def buffered_elements(self) -> List[StreamElement]:
        """Snapshot of the reorder buffer in ``(event_time, seq)`` order."""
        return [element for _, _, element in sorted(self._buffer)]

    def restore_buffered(self, elements: List[StreamElement]) -> None:
        """Re-inject checkpointed in-flight elements, bypassing the late
        check (they were admitted before the snapshot; re-classifying them
        against the restored high marks could wrongly shed them when
        another stream held the global watermark back).  The elements were
        already counted by ``observed_count`` before the snapshot, so they
        are renumbered *below* the current sequence — list order preserves
        the original tie-breaking, and future arrivals still sort after
        them on event-time ties."""
        base = self._seq - len(elements)
        for offset, element in enumerate(elements):
            element.seq = base + offset
            heapq.heappush(self._buffer,
                           (element.event_time, element.seq, element))

    # -- element flow --------------------------------------------------------
    def observe(self, element: StreamElement) -> str:
        """Admit one arrival; returns the ``OBSERVED_*`` outcome.

        Non-late elements go to the reorder buffer until the global
        watermark covers them; late ones are admitted immediately or shed
        according to the policy.
        """
        origin = element.origin
        self.register(origin)
        # A woken idle source rejoins the watermark *before* the late
        # check — against an idle (infinite) stream watermark every
        # arrival would count as late.  A *closed* source that emits again
        # (e.g. a CallbackSource pushed after a drain, without the driver
        # re-opening it) wakes the same way: its closed-stream watermark is
        # also infinite, so without the wake every element of the revived
        # stream would be classified late.
        self._idle.discard(origin)
        if self._closed.get(origin, False):
            self._closed[origin] = False
        element.seq = self._seq
        self._seq += 1
        if element.event_time < self.stream_watermark(origin):
            if self.late_policy == LATE_SHED:
                return OBSERVED_LATE_SHED
            self._admitted.append(element)
            return OBSERVED_LATE_ADMITTED
        out_of_order = element.event_time < self._high.get(origin, -math.inf)
        self._high[origin] = max(self._high.get(origin, -math.inf),
                                 element.event_time)
        heapq.heappush(self._buffer,
                       (element.event_time, element.seq, element))
        return OBSERVED_REORDERED if out_of_order else OBSERVED_READY

    def release_ready(self) -> List[StreamElement]:
        """Pop every element covered by the global watermark, in
        ``(event_time, seq)`` order; late-admitted elements ride along."""
        released: List[StreamElement] = self._admitted
        self._admitted = []
        watermark = self.watermark
        while self._buffer and self._buffer[0][0] <= watermark:
            released.append(heapq.heappop(self._buffer)[2])
        return released

    def release_overflow(self, capacity: int) -> List[StreamElement]:
        """Force-release the oldest buffered elements beyond ``capacity``.

        Bounds the reorder buffer when one source stalls the global
        watermark (e.g. a registered ``CallbackSource`` that has not pushed
        yet) while others keep arriving: beyond the cap, ordering degrades
        to best-effort — the oldest elements are released ahead of the
        watermark (still in ``(event_time, seq)`` order) rather than
        buffered without bound.
        """
        released: List[StreamElement] = []
        while len(self._buffer) > capacity:
            released.append(heapq.heappop(self._buffer)[2])
        return released

    def drain(self) -> List[StreamElement]:
        """Close every source and release everything still buffered."""
        for origin in self._high:
            self._closed[origin] = True
        return self.release_ready()

    # -- checkpointing -------------------------------------------------------
    def state_to_dict(self) -> Dict:
        """High marks of each source.  The reorder buffer is serialised
        separately by the driver (``in_flight``), since its elements carry
        whole records."""
        return {
            "lateness": self.lateness,
            "observed": self._seq,
            "high": {origin: high for origin, high in sorted(self._high.items())
                     if high != -math.inf},
            "closed": sorted(origin for origin, closed in self._closed.items()
                             if closed),
            "idle": sorted(self._idle),
        }

    def restore_state(self, state: Dict) -> None:
        lateness = state.get("lateness")
        if lateness is not None and float(lateness) != self.lateness:
            # A different bound silently re-classifies arrivals near the
            # restored high marks (shed or admitted out of order), so the
            # resumed run would diverge from the uninterrupted one.
            raise ValueError(
                f"checkpoint was taken with lateness {lateness}, this clock "
                f"uses {self.lateness}; resume with the same bound")
        for origin, high in state.get("high", {}).items():
            self.register(origin)
            self._high[origin] = max(self._high[origin], float(high))
        # Exhausted sources stay closed on restore, or their stale high
        # marks would cap the global watermark forever; sources the new
        # driver actually reads are re-opened by ``open`` at run start.
        for origin in state.get("closed", []):
            self.close(origin)
        # Idle punctuation survives the snapshot too: a source marked idle
        # before the checkpoint was releasing the watermark, and must not
        # silently rejoin (and stall) the restored one — until the next
        # idle timeout if the resumed driver reads it, forever if not.  It
        # still wakes on its next observe, exactly like a live idle mark.
        for origin in state.get("idle", []):
            self.register(origin)
            self._idle.add(origin)
        # Continue the arrival numbering where the snapshot left off so
        # ``observed_count`` stays a cumulative replay offset across resumes.
        self._seq = max(self._seq, int(state.get("observed", 0)))
