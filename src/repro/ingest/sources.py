"""Ingestion sources: where live tuples come from.

A :class:`Source` is an async iterator of :class:`StreamElement`\\ s — a
record plus its *event time* (the logical instant the tuple belongs to,
distinct from both the wall clock and the record's engine-assigned arrival
``timestamp``, which the sources never touch).  Three implementations cover
the spectrum the ingest driver needs:

* :class:`ReplaySource` — wraps an existing record sequence,
  :class:`~repro.core.stream.IncompleteDataStream` or
  :class:`~repro.core.stream.StreamSet` (round-robin interleaving) and
  replays it, optionally paced against the wall clock.  Event times are the
  arrival indexes, so a replay is strictly in order and — with lateness 0 —
  the driver reproduces the offline executors' results bit-identically.
* :class:`SyntheticRateSource` — generates records from a factory under a
  configurable arrival-rate/burst model (load benchmarks, soak tests).
* :class:`CallbackSource` — a push API for external producers: call
  :meth:`~CallbackSource.push` from the event loop (or via
  ``loop.call_soon_threadsafe`` from another thread), then
  :meth:`~CallbackSource.close`.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import (
    AsyncIterator,
    Callable,
    Iterable,
    Optional,
    Protocol,
    Sequence,
    Union,
    runtime_checkable,
)

from repro.core.stream import IncompleteDataStream, StreamSet
from repro.core.tuples import Record


@dataclass
class StreamElement:
    """One arriving tuple: the record, its event time and its origin.

    ``origin`` is the *ingest source* name (watermarks are tracked per
    source), which is independent of ``record.source`` (the logical stream a
    tuple belongs to — one replay source may interleave several streams).
    ``seq`` is a global arrival sequence number assigned by the watermark
    clock; it breaks event-time ties deterministically.
    """

    record: Record
    event_time: float
    origin: str = ""
    seq: int = -1


@runtime_checkable
class Source(Protocol):
    """An asynchronous producer of stream elements.

    ``name`` identifies the source to the watermark clock; iteration ends
    when the source is exhausted (the driver then closes the source's
    watermark so it no longer holds back the global one).
    """

    name: str

    def __aiter__(self) -> AsyncIterator[StreamElement]:  # pragma: no cover
        ...


ReplayInput = Union[Sequence[Record], IncompleteDataStream, StreamSet]


class ReplaySource:
    """Replay a pre-materialized workload as a live source.

    Parameters
    ----------
    records:
        A record sequence, a single :class:`IncompleteDataStream`, or a
        :class:`StreamSet` (replayed in its round-robin interleaving —
        exactly the order ``StreamSet.interleaved`` / the offline harness
        would produce).
    name:
        Source name (the watermark clock tracks one watermark per name).
    pace:
        Seconds of wall-clock delay between consecutive arrivals; ``None``
        (default) replays as fast as the loop allows.
    start_event_time:
        First event time; event times are ``start_event_time + i`` for the
        ``i``-th replayed record, so they are strictly increasing and a
        resumed replay can continue the sequence where a checkpoint left it.
    timestamps:
        Optional *recorded event-time trace*: one event time per replayed
        record, used verbatim instead of the synthetic
        ``start_event_time + i`` sequence.  This is how a captured load
        regime (bursty event-time clumps, bounded disorder, stragglers)
        is replayed bit-for-bit — e.g. the scenario traces of
        ``benchmarks/scenarios.py``.  The trace length must match the
        record count (checked during replay); it need not be monotone
        (the watermark clock handles reordering and lateness downstream).
    """

    def __init__(self, records: ReplayInput, name: str = "replay",
                 pace: Optional[float] = None,
                 start_event_time: float = 0.0,
                 timestamps: Optional[Sequence[float]] = None) -> None:
        if pace is not None and pace < 0:
            raise ValueError(f"pace must be >= 0, got {pace}")
        self.name = name
        self.pace = pace
        self.start_event_time = start_event_time
        self.timestamps = (list(timestamps) if timestamps is not None
                           else None)
        self._records = records

    def _iter_records(self) -> Iterable[Record]:
        if isinstance(self._records, StreamSet):
            return self._records.interleaved()
        # A plain sequence and an IncompleteDataStream both just iterate
        # (the stream stamps its own per-stream arrival timestamps).
        return iter(self._records)

    async def __aiter__(self) -> AsyncIterator[StreamElement]:
        event_time = self.start_event_time
        trace = self.timestamps
        for index, record in enumerate(self._iter_records()):
            if self.pace:
                await asyncio.sleep(self.pace)
            else:
                # Cooperative yield so an unpaced replay cannot starve the
                # mux (and the bounded queue can exert backpressure).
                await asyncio.sleep(0)
            if trace is not None:
                if index >= len(trace):
                    raise ValueError(
                        f"recorded trace of {self.name!r} has "
                        f"{len(trace)} timestamps but more records")
                event_time = trace[index]
            yield StreamElement(record=record, event_time=event_time,
                                origin=self.name)
            if trace is None:
                event_time += 1.0


class SyntheticRateSource:
    """Generate records under a configurable arrival-rate/burst model.

    Parameters
    ----------
    factory:
        ``factory(i) -> Record`` producing the ``i``-th tuple.
    count:
        Total number of tuples to emit.
    name:
        Source name.
    rate:
        Mean arrival rate in tuples/second; ``None`` emits as fast as the
        loop allows (throughput benchmarks).
    burst_every / burst_size:
        Every ``burst_every``-th arrival additionally emits ``burst_size``
        back-to-back tuples with no pacing delay — a simple bursty-traffic
        model (the burst tuples count towards ``count``).
    jitter:
        Fractional uniform jitter on the pacing interval (0 = deterministic
        pacing), drawn from a ``random.Random(seed)`` so runs repeat.
    """

    def __init__(self, factory: Callable[[int], Record], count: int,
                 name: str = "synthetic", rate: Optional[float] = None,
                 burst_every: Optional[int] = None, burst_size: int = 0,
                 jitter: float = 0.0, seed: int = 7) -> None:
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        if rate is not None and rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst_every is not None and burst_every <= 0:
            raise ValueError(f"burst_every must be positive, got {burst_every}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.name = name
        self.factory = factory
        self.count = count
        self.rate = rate
        self.burst_every = burst_every
        self.burst_size = burst_size
        self.jitter = jitter
        self.seed = seed

    async def __aiter__(self) -> AsyncIterator[StreamElement]:
        rng = random.Random(self.seed)
        interval = (1.0 / self.rate) if self.rate else 0.0
        emitted = 0
        arrivals = 0
        while emitted < self.count:
            if interval:
                delay = interval
                if self.jitter:
                    delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
                await asyncio.sleep(delay)
            else:
                await asyncio.sleep(0)
            arrivals += 1
            burst = 1
            if (self.burst_every is not None
                    and arrivals % self.burst_every == 0):
                burst += self.burst_size
            for _ in range(burst):
                if emitted >= self.count:
                    break
                yield StreamElement(record=self.factory(emitted),
                                    event_time=float(emitted),
                                    origin=self.name)
                emitted += 1


#: Queue sentinel marking the end of a callback source.
_CLOSED = object()


class CallbackSource:
    """Push API for external producers.

    ``push`` enqueues one record (with an optional explicit event time;
    defaults to a per-source arrival counter), ``close`` ends the source.
    Both must be called from the event-loop thread — external threads go
    through ``loop.call_soon_threadsafe(source.push, record)``.  A bounded
    ``capacity`` makes ``push`` return ``False`` (and count the drop) when
    the producer outruns the pipeline, surfacing backpressure to the caller
    instead of buffering without bound.
    """

    def __init__(self, name: str = "callback",
                 capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.dropped = 0
        # One slot above capacity is reserved for the close sentinel, so
        # closing a full source can never fail; ``push`` enforces the
        # user-visible capacity itself.
        self._queue: "asyncio.Queue" = asyncio.Queue(
            maxsize=(capacity + 1) if capacity else 0)
        self._next_event_time = 0.0
        self._closed = False

    def push(self, record: Record,
             event_time: Optional[float] = None) -> bool:
        """Enqueue one record; ``False`` when the source is closed or full."""
        if self._closed:
            return False
        if event_time is None:
            event_time = self._next_event_time
        self._next_event_time = max(self._next_event_time, event_time) + 1.0
        if self.capacity is not None and self._queue.qsize() >= self.capacity:
            self.dropped += 1
            return False
        self._queue.put_nowait(StreamElement(record=record,
                                             event_time=event_time,
                                             origin=self.name))
        return True

    def close(self) -> None:
        """End the source; the driver releases its watermark hold."""
        if not self._closed:
            self._closed = True
            self._queue.put_nowait(_CLOSED)

    async def __aiter__(self) -> AsyncIterator[StreamElement]:
        while True:
            item = await self._queue.get()
            if item is _CLOSED:
                return
            yield item
