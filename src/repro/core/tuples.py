"""Record and probabilistic (imputed) tuple models.

The paper (Definitions 1 and 4) models every stream element as a *record*
``r_i`` with a unique profile identifier and ``d`` textual attribute values,
some of which may be missing (denoted ``-`` in the paper, ``None`` here).
Imputation turns an incomplete record into an *imputed record* ``r^p_i`` that
holds, for every missing attribute, a discrete distribution over candidate
values.  The imputed record therefore induces a set of mutually exclusive
*instances* ``r_{i,m}``, each a fully specified record with an existence
probability ``r_{i,m}.p`` such that the probabilities sum to at most one.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.similarity import tokenize

#: Sentinel used in textual dumps for a missing attribute value (the paper
#: renders missing values as a dash).
MISSING_DISPLAY = "-"


class SchemaError(ValueError):
    """Raised when a record does not conform to the expected schema."""


@dataclass(frozen=True)
class Schema:
    """An ordered, homogeneous attribute schema shared by all streams.

    The paper assumes homogeneous schemas across the ``n`` incomplete data
    streams and the data repository ``R`` (Section 2.3).  A :class:`Schema`
    is simply the ordered tuple of attribute names; the identifier column is
    *not* part of the schema.
    """

    attributes: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.attributes:
            raise SchemaError("a schema needs at least one attribute")
        if len(set(self.attributes)) != len(self.attributes):
            raise SchemaError("duplicate attribute names in schema")

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[str]:
        return iter(self.attributes)

    def __contains__(self, name: object) -> bool:
        return name in self.attributes

    def index(self, name: str) -> int:
        """Return the position of ``name`` in the schema."""
        try:
            return self.attributes.index(name)
        except ValueError as exc:
            raise SchemaError(f"unknown attribute {name!r}") from exc

    @property
    def dimensionality(self) -> int:
        """Number of attributes ``d`` used in the similarity function."""
        return len(self.attributes)


@dataclass(frozen=True)
class Record:
    """A (possibly incomplete) tuple from an incomplete data stream.

    Parameters
    ----------
    rid:
        Unique profile identifier ``rid_i``.
    values:
        Mapping from attribute name to textual value.  A missing attribute is
        represented by ``None`` (or may be absent from the mapping).
    source:
        Identifier of the data stream the record belongs to.  The TER-iDS
        problem statement asks for matches across *different* streams, so the
        engine uses ``source`` to avoid intra-stream pairs.
    timestamp:
        Arrival timestamp assigned by the stream.  ``-1`` means "not yet
        assigned" (e.g. repository samples).
    """

    rid: str
    values: Mapping[str, Optional[str]]
    source: str = "stream-0"
    timestamp: int = -1

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", dict(self.values))

    # -- attribute access --------------------------------------------------
    def __getitem__(self, attribute: str) -> Optional[str]:
        return self.values.get(attribute)

    def get(self, attribute: str, default: Optional[str] = None) -> Optional[str]:
        """Return the value of ``attribute`` or ``default`` when missing."""
        value = self.values.get(attribute)
        return default if value is None else value

    def is_missing(self, attribute: str) -> bool:
        """True when ``attribute`` has no value in this record."""
        return self.values.get(attribute) is None

    def missing_attributes(self, schema: Schema) -> List[str]:
        """Names of schema attributes with a missing value, in schema order."""
        return [name for name in schema if self.is_missing(name)]

    def is_complete(self, schema: Schema) -> bool:
        """True when every schema attribute has a value."""
        return not self.missing_attributes(schema)

    # -- token helpers -----------------------------------------------------
    def tokens(self, attribute: str) -> frozenset:
        """Token set ``T(r[A_j])`` of one attribute (empty when missing)."""
        value = self.values.get(attribute)
        if value is None:
            return frozenset()
        return tokenize(value)

    def all_tokens(self, schema: Schema) -> frozenset:
        """Union of token sets over all schema attributes."""
        out: set = set()
        for name in schema:
            out |= self.tokens(name)
        return frozenset(out)

    def contains_keyword(self, keywords: Iterable[str], schema: Schema) -> bool:
        """Topic predicate ϖ(r, K): does any keyword appear in the tokens?"""
        token_union = self.all_tokens(schema)
        return any(keyword.lower() in token_union for keyword in keywords)

    # -- convenience -------------------------------------------------------
    def with_value(self, attribute: str, value: Optional[str]) -> "Record":
        """Return a copy of this record with one attribute replaced."""
        new_values = dict(self.values)
        new_values[attribute] = value
        return Record(rid=self.rid, values=new_values, source=self.source,
                      timestamp=self.timestamp)

    def with_timestamp(self, timestamp: int) -> "Record":
        """Return a copy of this record stamped with an arrival time."""
        return Record(rid=self.rid, values=dict(self.values),
                      source=self.source, timestamp=timestamp)

    def as_display_row(self, schema: Schema) -> List[str]:
        """Row of display strings, using ``-`` for missing values."""
        return [self.values.get(name) or MISSING_DISPLAY for name in schema]

    def __hash__(self) -> int:  # records are identified by rid + source
        return hash((self.rid, self.source))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Record):
            return NotImplemented
        return self.rid == other.rid and self.source == other.source


@dataclass(frozen=True)
class Instance:
    """One possible world ``r_{i,m}`` of an imputed record.

    An instance is a fully specified record together with its existence
    probability.  Instances of the same imputed record are mutually
    exclusive and their probabilities sum to at most one (Definition 4).
    """

    record: Record
    probability: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.probability <= 1.0 + 1e-9):
            raise ValueError(
                f"instance probability must be in [0, 1], got {self.probability}")

    def tokens(self, attribute: str) -> frozenset:
        """Token set of one attribute of the instance."""
        return self.record.tokens(attribute)


@dataclass
class ImputedRecord:
    """The imputed (probabilistic) version ``r^p_i`` of an incomplete record.

    ``candidates`` maps every *originally missing* attribute to a discrete
    distribution over candidate textual values (value -> probability).  The
    non-missing attributes keep their observed value with probability one.
    A record that was already complete has an empty ``candidates`` mapping
    and exactly one instance with probability one.
    """

    base: Record
    schema: Schema
    candidates: Dict[str, Dict[str, float]] = field(default_factory=dict)
    _instances: Optional[List[Instance]] = field(default=None, repr=False)

    MAX_INSTANCES = 256

    def __post_init__(self) -> None:
        for attribute, distribution in self.candidates.items():
            if attribute not in self.schema:
                raise SchemaError(f"candidate attribute {attribute!r} not in schema")
            if not distribution:
                raise ValueError(
                    f"empty candidate distribution for attribute {attribute!r}")
            total = sum(distribution.values())
            if total > 1.0 + 1e-6:
                raise ValueError(
                    f"candidate probabilities for {attribute!r} sum to {total} > 1")

    # -- basic properties ----------------------------------------------------
    @property
    def rid(self) -> str:
        return self.base.rid

    @property
    def source(self) -> str:
        return self.base.source

    @property
    def timestamp(self) -> int:
        return self.base.timestamp

    @property
    def imputed_attributes(self) -> List[str]:
        """Attributes whose values were filled in by the imputer."""
        return list(self.candidates)

    def is_trivial(self) -> bool:
        """True when the record required no imputation."""
        return not self.candidates

    # -- possible values -----------------------------------------------------
    def possible_values(self, attribute: str) -> Dict[str, float]:
        """Distribution of possible values of ``attribute`` (prob-weighted).

        For a non-missing attribute this is a single observed value with
        probability one; for an imputed attribute it is the candidate
        distribution produced by the imputer.
        """
        if attribute in self.candidates:
            return dict(self.candidates[attribute])
        value = self.base[attribute]
        if value is None:
            # Missing attribute that the imputer could not fill: the paper
            # treats it as an empty token set (similarity contribution 0).
            return {"": 1.0}
        return {value: 1.0}

    def token_size_bounds(self, attribute: str) -> Tuple[int, int]:
        """``[|T^-|, |T^+|]`` bounds of the token-set size on one attribute."""
        sizes = [len(tokenize(value)) for value in self.possible_values(attribute)]
        return min(sizes), max(sizes)

    def may_contain_keyword(self, keywords: Iterable[str]) -> bool:
        """Can *any* instance contain at least one topic keyword?

        Used by the topic keyword pruning (Theorem 4.1): a pair can be pruned
        only when neither tuple has *any chance* of containing a keyword.
        """
        lowered = [keyword.lower() for keyword in keywords]
        if not lowered:
            return False
        for name in self.schema:
            for value in self.possible_values(name):
                token_set = tokenize(value)
                if any(keyword in token_set for keyword in lowered):
                    return True
        return False

    def must_contain_keyword(self, keywords: Iterable[str]) -> bool:
        """Do *all* instances contain at least one topic keyword?"""
        lowered = [keyword.lower() for keyword in keywords]
        if not lowered:
            return False
        return all(
            instance.record.contains_keyword(lowered, self.schema)
            for instance in self.instances()
        )

    # -- instances -----------------------------------------------------------
    def instances(self) -> List[Instance]:
        """Enumerate the mutually exclusive instances ``r_{i,m}``.

        The cross product over imputed attributes is capped at
        :attr:`MAX_INSTANCES` instances (keeping the most probable
        combinations) so that adversarial candidate distributions cannot blow
        up memory; the retained probability mass is reported faithfully, i.e.
        probabilities are *not* re-normalised, matching Definition 4's
        ``sum <= 1`` semantics.
        """
        if self._instances is not None:
            return self._instances

        if not self.candidates:
            instances = [Instance(record=self.base, probability=1.0)]
            self._instances = instances
            return instances

        attributes = list(self.candidates)
        per_attribute: List[List[Tuple[str, float]]] = []
        for attribute in attributes:
            ranked = sorted(self.candidates[attribute].items(),
                            key=lambda item: (-item[1], item[0]))
            per_attribute.append(ranked)

        combos: List[Tuple[Tuple[str, ...], float]] = []
        for assignment in itertools.product(*per_attribute):
            values = tuple(value for value, _ in assignment)
            probability = 1.0
            for _, p in assignment:
                probability *= p
            combos.append((values, probability))
        combos.sort(key=lambda item: (-item[1], item[0]))
        combos = combos[: self.MAX_INSTANCES]

        instances = []
        for values, probability in combos:
            record = self.base
            for attribute, value in zip(attributes, values):
                record = record.with_value(attribute, value)
            instances.append(Instance(record=record, probability=probability))
        self._instances = instances
        return instances

    def expected_instance(self) -> Record:
        """The single most probable instance (used for point predictions)."""
        return max(self.instances(), key=lambda inst: inst.probability).record

    def total_probability(self) -> float:
        """Total retained probability mass of the enumerated instances."""
        return sum(instance.probability for instance in self.instances())

    @classmethod
    def from_complete(cls, record: Record, schema: Schema) -> "ImputedRecord":
        """Wrap an already complete record as a trivial imputed record."""
        return cls(base=record, schema=schema, candidates={})


def make_records(rows: Sequence[Mapping[str, Optional[str]]], schema: Schema,
                 source: str = "stream-0", prefix: str = "r") -> List[Record]:
    """Build a list of records from dict rows, assigning sequential ids."""
    records = []
    for index, row in enumerate(rows):
        values = {name: row.get(name) for name in schema}
        records.append(Record(rid=f"{prefix}{index}", values=values, source=source))
    return records
