"""Time-based sliding windows — the extension sketched in Section 2.1.

The paper adopts the count-based sliding window model and notes that the
approach "can be easily extended to the time-based one, by assuming that
more than one tuple arrives at a new timestamp".  This module provides that
extension: a :class:`TimeBasedWindow` keeps every record whose arrival time
lies within the last ``duration`` time units, so several records may arrive
at the same timestamp and several may expire at once.

:class:`TimeBatchedStream` groups an ordinary record sequence into
per-timestamp batches, which is how the engine-facing helpers feed a
time-based workload.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.tuples import Record, Schema


@dataclass
class TimeBasedWindow:
    """A sliding window keeping items whose timestamp is within ``duration``.

    ``advance_to(now)`` moves the window's right edge to ``now`` and returns
    the expired items (those with ``timestamp <= now - duration``).  Items
    must be inserted in non-decreasing timestamp order, as in a stream.
    """

    duration: int
    _items: Deque = field(default_factory=deque, repr=False)
    _by_key: Dict = field(default_factory=dict, repr=False)
    current_time: int = 0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"window duration must be positive, got {self.duration}")

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(self._items)

    def insert(self, item, timestamp: Optional[int] = None) -> List:
        """Insert one item at ``timestamp`` (defaults to ``item.timestamp``).

        Returns the list of items expired by advancing time to ``timestamp``.
        """
        arrival = item.timestamp if timestamp is None else timestamp
        if arrival < self.current_time:
            raise ValueError(
                f"out-of-order arrival: {arrival} < current time {self.current_time}")
        expired = self.advance_to(arrival)
        self._items.append((arrival, item))
        self._by_key[(item.rid, item.source)] = item
        return expired

    def advance_to(self, now: int) -> List:
        """Advance the window to time ``now``, returning the expired items."""
        if now < self.current_time:
            raise ValueError(
                f"time cannot move backwards: {now} < {self.current_time}")
        self.current_time = now
        cutoff = now - self.duration
        expired = []
        while self._items and self._items[0][0] <= cutoff:
            _, item = self._items.popleft()
            self._by_key.pop((item.rid, item.source), None)
            expired.append(item)
        return expired

    def get(self, rid: str, source: str):
        """Look up an in-window item by record identity (None if absent)."""
        return self._by_key.get((rid, source))

    def items(self) -> List:
        """Snapshot of the window content, oldest first (without timestamps)."""
        return [item for _, item in self._items]

    def timestamps(self) -> List[int]:
        """Arrival timestamps of the in-window items, oldest first."""
        return [arrival for arrival, _ in self._items]


@dataclass
class TimeBatchedStream:
    """Groups records into per-timestamp batches for time-based processing.

    ``arrivals_per_tick`` records share each logical timestamp; the batches
    are what a time-based TER-iDS deployment would process per tick.
    """

    schema: Schema
    records: Sequence[Record]
    arrivals_per_tick: int = 2

    def __post_init__(self) -> None:
        if self.arrivals_per_tick <= 0:
            raise ValueError("arrivals_per_tick must be positive")

    def batches(self) -> Iterator[Tuple[int, List[Record]]]:
        """Yield ``(timestamp, records)`` batches in arrival order."""
        batch: List[Record] = []
        tick = 0
        for record in self.records:
            batch.append(record.with_timestamp(tick))
            if len(batch) == self.arrivals_per_tick:
                yield tick, batch
                batch = []
                tick += 1
        if batch:
            yield tick, batch

    def tick_count(self) -> int:
        """Number of logical timestamps the stream spans."""
        full, remainder = divmod(len(self.records), self.arrivals_per_tick)
        return full + (1 if remainder else 0)


def run_time_based(engine, stream: TimeBatchedStream, window_duration: int):
    """Drive a :class:`~repro.core.engine.TERiDSEngine` with time-based batches.

    The engine's own count-based windows still bound memory; this helper
    additionally maintains a time-based view and removes from the engine's
    result set every pair involving a time-expired tuple, so the reported
    result set follows time-based semantics.  Returns the list of all match
    pairs found (before time-based eviction), mirroring ``TERiDSEngine.run``.
    """
    window = TimeBasedWindow(duration=window_duration)
    retract = engine.pipeline.maintenance.retract
    all_matches = []
    for timestamp, batch in stream.batches():
        for record in batch:
            all_matches.extend(engine.process(record))
            retract(window.insert(record, timestamp))
    return all_matches
