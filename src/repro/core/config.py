"""Configuration of the TER-iDS operator and its default parameter values.

The defaults mirror Table 5 of the paper (bold values): probabilistic
threshold ``α = 0.5``, similarity ratio ``ρ = 0.5`` (so ``γ = ρ·d``),
missing rate ``ξ = 0.3``, window size ``w = 1000``, repository size ratio
``η = 0.3`` and one missing attribute per incomplete tuple (``m = 1``).
Window and repository sizes are scaled down by the dataset profiles used in
the benchmarks, but the *ratios* keep the paper's defaults.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import FrozenSet, Iterable, Optional, Tuple

from repro.core.matching import normalise_keywords
from repro.core.tuples import Schema


# Paper defaults (Table 5, bold entries).
DEFAULT_ALPHA = 0.5
DEFAULT_SIMILARITY_RATIO = 0.5
DEFAULT_MISSING_RATE = 0.3
DEFAULT_WINDOW_SIZE = 1000
DEFAULT_REPOSITORY_RATIO = 0.3
DEFAULT_MISSING_ATTRIBUTES = 1

# Pivot-selection defaults (Appendix C.1).
DEFAULT_ENTROPY_BUCKETS = 10
DEFAULT_MIN_ENTROPY = 1.5
DEFAULT_MAX_PIVOTS = 3

# ER-grid resolution (cells per dimension).  Not specified numerically in the
# paper; 5 cells per converted dimension keeps cells coarse enough to batch
# candidates while still pruning far-apart tuples.
DEFAULT_GRID_CELLS_PER_DIM = 5


class ConfigError(ValueError):
    """Raised when a TER-iDS configuration is inconsistent."""


@dataclass(frozen=True)
class TERiDSConfig:
    """All knobs of the TER-iDS operator.

    Parameters
    ----------
    schema:
        The homogeneous attribute schema of the streams and the repository.
    keywords:
        Query topic keyword set ``K``.  An empty set disables the topic
        constraint (the paper's "all topics" extension).
    alpha:
        Probabilistic threshold ``α ∈ [0, 1)`` of Equation (2).
    similarity_ratio:
        Ratio ``ρ = γ / d``; the similarity threshold is ``γ = ρ · d``.
    window_size:
        Count-based sliding window size ``w`` per stream.
    max_pivots / entropy_buckets / min_entropy:
        Pivot-selection cost-model parameters (Appendix B): maximum number of
        attribute pivots per attribute (``cntMax``), number of histogram
        buckets ``P`` and minimum Shannon entropy ``eMin``.
    grid_cells_per_dim:
        ER-grid resolution (cells per converted dimension).
    use_topic_pruning / use_similarity_pruning / use_probability_pruning /
    use_instance_pruning:
        Individual switches for the four pruning strategies of Section 4;
        all enabled by default, disabled selectively by the ablation benches.
    absorb_complete_tuples:
        Online repository growth (Section 5.5 follow-up): when enabled, the
        ingestion driver hands every *complete* arriving stream tuple to
        ``MaintenanceStage.absorb_complete_stream_tuples`` so the repository
        (and, in incremental/hybrid maintenance modes, the CDD rules) grows
        from the streams themselves.  Off by default — absorbing changes
        imputation answers, so replay determinism against the pinned goldens
        requires the flag off.
    patch_cdd_indexes:
        When live incremental maintenance installs an updated rule set, patch
        the per-attribute CDD-indexes in place from the maintainer's rule
        diff (``CDDIndex.apply_diff``) instead of rebuilding every lattice
        and aR-tree from scratch.  Patched indexes are bit-identical to
        rebuilt ones; the knob exists as an escape hatch and for A/B
        benchmarking.  Checkpoint restore and full re-mines always rebuild.
    """

    schema: Schema
    keywords: FrozenSet[str] = frozenset()
    alpha: float = DEFAULT_ALPHA
    similarity_ratio: float = DEFAULT_SIMILARITY_RATIO
    window_size: int = DEFAULT_WINDOW_SIZE
    max_pivots: int = DEFAULT_MAX_PIVOTS
    entropy_buckets: int = DEFAULT_ENTROPY_BUCKETS
    min_entropy: float = DEFAULT_MIN_ENTROPY
    grid_cells_per_dim: int = DEFAULT_GRID_CELLS_PER_DIM
    use_topic_pruning: bool = True
    use_similarity_pruning: bool = True
    use_probability_pruning: bool = True
    use_instance_pruning: bool = True
    absorb_complete_tuples: bool = False
    patch_cdd_indexes: bool = True
    random_seed: int = 7

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha < 1.0:
            raise ConfigError(f"alpha must be in [0, 1), got {self.alpha}")
        if not 0.0 < self.similarity_ratio < 1.0:
            raise ConfigError(
                f"similarity_ratio must be in (0, 1), got {self.similarity_ratio}")
        if self.window_size <= 0:
            raise ConfigError(f"window_size must be positive, got {self.window_size}")
        if self.max_pivots < 1:
            raise ConfigError(f"max_pivots must be >= 1, got {self.max_pivots}")
        if self.entropy_buckets < 2:
            raise ConfigError(
                f"entropy_buckets must be >= 2, got {self.entropy_buckets}")
        if self.grid_cells_per_dim < 1:
            raise ConfigError(
                f"grid_cells_per_dim must be >= 1, got {self.grid_cells_per_dim}")
        object.__setattr__(self, "keywords", normalise_keywords(self.keywords))

    @property
    def dimensionality(self) -> int:
        """Number of attributes ``d``."""
        return self.schema.dimensionality

    @property
    def gamma(self) -> float:
        """Similarity threshold ``γ = ρ · d`` of Equation (2)."""
        return self.similarity_ratio * self.dimensionality

    @property
    def topic_free(self) -> bool:
        """True when no keyword constraint applies (K = all keywords)."""
        return not self.keywords

    def with_keywords(self, keywords: Iterable[str]) -> "TERiDSConfig":
        """Copy of the configuration with a different keyword set."""
        return replace(self, keywords=normalise_keywords(keywords))

    def replace(self, **changes) -> "TERiDSConfig":
        """Dataclass ``replace`` passthrough for fluent config tweaking."""
        return replace(self, **changes)
