"""Incomplete data streams and the count-based sliding window model.

Definitions 1 and 2 of the paper: an incomplete data stream ``iDS`` is an
ordered sequence of records arriving one per timestamp; the sliding window
``W_t`` holds the ``w`` most recent records.  When a new record arrives the
oldest one expires.  The paper uses the count-based model; a time-based
window (several arrivals per timestamp) can be emulated by calling
:meth:`SlidingWindow.insert` several times per logical tick.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.core.tuples import Record, Schema


class StreamError(RuntimeError):
    """Raised on invalid stream operations (e.g. exhausted stream)."""


@dataclass
class IncompleteDataStream:
    """An ordered sequence of (possibly incomplete) records (Definition 1).

    The stream is a thin iterator wrapper that stamps arrival timestamps on
    records as they are emitted.  It also keeps simple arrival statistics
    used by the experiment harness (counts of complete vs incomplete
    records).
    """

    name: str
    schema: Schema
    records: Sequence[Record]
    _cursor: int = field(default=0, repr=False)
    emitted: int = field(default=0, repr=False)
    incomplete_emitted: int = field(default=0, repr=False)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[Record]:
        while not self.exhausted:
            yield self.next_record()

    @property
    def exhausted(self) -> bool:
        """True when every record has been emitted."""
        return self._cursor >= len(self.records)

    @property
    def remaining(self) -> int:
        """Number of records not yet emitted."""
        return len(self.records) - self._cursor

    def peek(self) -> Optional[Record]:
        """Return the next record without consuming it (None when done)."""
        if self.exhausted:
            return None
        return self.records[self._cursor]

    def next_record(self) -> Record:
        """Emit the next record, stamped with the next arrival timestamp."""
        if self.exhausted:
            raise StreamError(f"stream {self.name!r} is exhausted")
        record = self.records[self._cursor]
        stamped = Record(rid=record.rid, values=dict(record.values),
                         source=self.name, timestamp=self.emitted)
        self._cursor += 1
        self.emitted += 1
        if not stamped.is_complete(self.schema):
            self.incomplete_emitted += 1
        return stamped

    def next_batch(self, count: int) -> List[Record]:
        """Emit up to ``count`` records (fewer when the stream runs dry).

        The micro-batch runtime ingests tuples in batches; this is the
        single-stream primitive behind :meth:`StreamSet.interleaved_batches`.
        """
        if count <= 0:
            raise ValueError(f"batch size must be positive, got {count}")
        batch: List[Record] = []
        while len(batch) < count and not self.exhausted:
            batch.append(self.next_record())
        return batch

    def reset(self) -> None:
        """Rewind the stream to its first record."""
        self._cursor = 0
        self.emitted = 0
        self.incomplete_emitted = 0

    @property
    def missing_rate(self) -> float:
        """Fraction of emitted records that had at least one missing value."""
        if self.emitted == 0:
            return 0.0
        return self.incomplete_emitted / self.emitted


@dataclass
class SlidingWindow:
    """Count-based sliding window ``W_t`` of one stream (Definition 2)."""

    capacity: int
    _items: Deque = field(default_factory=deque, repr=False)
    _by_key: Dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ValueError(f"window capacity must be positive, got {self.capacity}")

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(self._items)

    def __contains__(self, item: object) -> bool:
        key = getattr(item, "rid", None), getattr(item, "source", None)
        return key in self._by_key

    @property
    def is_full(self) -> bool:
        """True when inserting one more item would evict the oldest."""
        return len(self._items) >= self.capacity

    def insert(self, item) -> Optional[object]:
        """Insert a new item and return the expired one, if any.

        ``item`` can be a :class:`Record` or an imputed record; the window
        only requires ``rid`` / ``source`` attributes for identity.
        """
        expired = None
        if self.is_full:
            expired = self._items.popleft()
            self._by_key.pop((expired.rid, expired.source), None)
        self._items.append(item)
        self._by_key[(item.rid, item.source)] = item
        return expired

    def get(self, rid: str, source: str):
        """Look up a window item by its record identity (None if absent)."""
        return self._by_key.get((rid, source))

    def items(self) -> List:
        """Snapshot list of the window content, oldest first."""
        return list(self._items)

    def clear(self) -> None:
        """Drop every item from the window."""
        self._items.clear()
        self._by_key.clear()


@dataclass
class StreamSet:
    """A set of ``n`` incomplete data streams processed round-robin.

    The TER-iDS problem takes ``n >= 2`` streams; the engine consumes their
    records in a round-robin interleaving (one record per stream per
    timestamp in the paper's count-based model).
    """

    streams: List[IncompleteDataStream]

    def __post_init__(self) -> None:
        if not self.streams:
            raise ValueError("StreamSet needs at least one stream")
        schemas = {tuple(stream.schema.attributes) for stream in self.streams}
        if len(schemas) != 1:
            raise ValueError("all streams must share the same schema")

    @property
    def schema(self) -> Schema:
        return self.streams[0].schema

    @property
    def names(self) -> List[str]:
        return [stream.name for stream in self.streams]

    def __len__(self) -> int:
        return len(self.streams)

    def interleaved(self) -> Iterator[Record]:
        """Round-robin interleaving of all streams until all are exhausted."""
        active = True
        while active:
            active = False
            for stream in self.streams:
                if not stream.exhausted:
                    active = True
                    yield stream.next_record()

    def interleaved_batches(self, batch_size: int) -> Iterator[List[Record]]:
        """Round-robin interleaving chunked into micro-batches.

        Emits the same record sequence as :meth:`interleaved`, grouped into
        lists of ``batch_size`` records (the final batch may be shorter).
        Feeding these batches to ``TERiDSEngine.process_batch`` is equivalent
        to processing the interleaved sequence tuple by tuple.
        """
        if batch_size <= 0:
            raise ValueError(f"batch size must be positive, got {batch_size}")
        batch: List[Record] = []
        for record in self.interleaved():
            batch.append(record)
            if len(batch) >= batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    @property
    def exhausted(self) -> bool:
        """True when every member stream has emitted all of its records."""
        return all(stream.exhausted for stream in self.streams)

    def total_records(self) -> int:
        """Total number of records across all streams."""
        return sum(len(stream) for stream in self.streams)

    def reset(self) -> None:
        """Rewind every stream."""
        for stream in self.streams:
            stream.reset()


def build_stream(name: str, records: Iterable[Record], schema: Schema) -> IncompleteDataStream:
    """Convenience constructor normalising the record source to ``name``."""
    normalised = [
        Record(rid=record.rid, values=dict(record.values), source=name,
               timestamp=record.timestamp)
        for record in records
    ]
    return IncompleteDataStream(name=name, schema=schema, records=normalised)
