"""Tokenisation and Jaccard similarity / distance (Definition 5, Eq. (1)).

All attribute values in the paper are textual.  The similarity between two
complete tuples is the *sum* over all ``d`` attributes of the Jaccard
similarity between the attributes' token sets, so the score lies in
``[0, d]``.  The Jaccard *distance* ``1 - sim`` on token sets is a metric and
obeys the triangle inequality, which the pivot-based pruning (Lemma 4.2) and
the Paley–Zygmund probability bound (Lemma 4.3) rely on.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import TYPE_CHECKING, Iterable, Tuple

try:  # numpy is optional: the vectorized kernels fall back to scalar code.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on numpy-less installs
    _np = None

HAS_NUMPY = _np is not None

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.tuples import Record, Schema

_TOKEN_PATTERN = re.compile(r"[a-z0-9]+")


@lru_cache(maxsize=200_000)
def tokenize(text: str) -> frozenset:
    """Split a textual attribute value into its lower-case token set.

    Tokens are maximal alphanumeric runs; the empty string or a value made of
    punctuation only yields the empty set.  The result is cached because the
    streaming engine re-tokenises the same repository values many times.
    """
    if not text:
        return frozenset()
    return frozenset(_TOKEN_PATTERN.findall(text.lower()))


def jaccard_similarity(left: frozenset, right: frozenset) -> float:
    """Jaccard similarity ``|L ∩ R| / |L ∪ R|`` between two token sets.

    Two empty sets are defined to have similarity 0 (the paper's missing
    attributes contribute nothing to the score).
    """
    if not left or not right:
        return 0.0
    if left is right:
        return 1.0
    intersection = len(left & right)
    if intersection == 0:
        return 0.0
    union = len(left) + len(right) - intersection
    return intersection / union


def jaccard_distance(left: frozenset, right: frozenset) -> float:
    """Jaccard distance ``1 - similarity``; a metric on token sets."""
    return 1.0 - jaccard_similarity(left, right)


def text_similarity(left: str, right: str) -> float:
    """Jaccard similarity between the token sets of two strings."""
    return jaccard_similarity(tokenize(left), tokenize(right))


def text_distance(left: str, right: str) -> float:
    """Jaccard distance between the token sets of two strings."""
    return 1.0 - text_similarity(left, right)


def attribute_similarity(left: "Record", right: "Record", attribute: str) -> float:
    """Per-attribute Jaccard similarity ``sim(r[A_j], r'[A_j])``."""
    return jaccard_similarity(left.tokens(attribute), right.tokens(attribute))


def record_similarity(left: "Record", right: "Record", schema: "Schema") -> float:
    """Tuple similarity Eq. (1): sum of per-attribute Jaccard similarities.

    The value lies in ``[0, d]`` where ``d`` is the schema dimensionality.
    Missing attributes contribute 0 (their token set is empty).
    """
    return sum(
        jaccard_similarity(left.tokens(name), right.tokens(name))
        for name in schema
    )


def record_distance(left: "Record", right: "Record", schema: "Schema") -> float:
    """Tuple distance ``d - sim(r, r')`` used by the pivot-based bounds."""
    return len(schema) - record_similarity(left, right, schema)


def similarity_threshold(ratio: float, dimensionality: int) -> float:
    """Translate the paper's ratio ``ρ = γ / d`` into a threshold ``γ``."""
    if not 0.0 < ratio < 1.0:
        raise ValueError(f"similarity ratio must be in (0, 1), got {ratio}")
    return ratio * dimensionality


def token_overlap(left: Iterable[str], right: Iterable[str]) -> int:
    """Number of shared tokens between two token iterables."""
    return len(frozenset(left) & frozenset(right))


def size_bounded_similarity_upper(min_size_small: int, max_size_large: int) -> float:
    """Upper bound of Jaccard similarity given token-set size bounds.

    Lemma 4.1: when the smaller set has at most ``max_size_large`` tokens and
    the larger set has at least ``min_size_small`` tokens the similarity is at
    most ``max_size_large / min_size_small``.
    """
    if min_size_small <= 0:
        return 1.0
    return min(1.0, max_size_large / min_size_small)


def attribute_similarity_upper_bound(
    left_bounds: Tuple[int, int], right_bounds: Tuple[int, int]
) -> float:
    """Lemma 4.1 per-attribute similarity upper bound from token-size bounds.

    ``left_bounds`` / ``right_bounds`` are ``(|T^-|, |T^+|)`` pairs of the two
    imputed tuples on one attribute.
    """
    left_min, left_max = left_bounds
    right_min, right_max = right_bounds
    if left_min > right_max:
        return size_bounded_similarity_upper(left_min, right_max)
    if left_max < right_min:
        return size_bounded_similarity_upper(right_min, left_max)
    return 1.0


def attribute_similarity_upper_bound_batch(left_min, left_max,
                                           right_min, right_max):
    """Vectorized Lemma 4.1 bound: one query against a candidate column.

    ``left_min`` / ``left_max`` are the query's per-attribute token-size
    bounds (shape ``(d,)``); ``right_min`` / ``right_max`` stack the
    candidates' bounds (shape ``(n, d)``).  Element-for-element this performs
    the exact float operations of :func:`attribute_similarity_upper_bound`
    (same comparisons, same division, same ``min``), so the result is
    bit-identical to the scalar bound — just computed for every
    (query, candidate, attribute) cell at once.
    """
    if _np is None:  # pragma: no cover - callers gate on HAS_NUMPY
        raise RuntimeError("numpy is required for the batched similarity bound")
    l_min = left_min[_np.newaxis, :]
    l_max = left_max[_np.newaxis, :]
    # Branch 1: the query's smallest set is larger than the candidate's
    # largest (size_bounded(l_min, r_max)); branch 2 is the mirror case.
    branch1 = l_min > right_max
    branch2 = l_max < right_min
    # Denominators are clamped to 1 only to keep the un-taken lanes finite;
    # wherever a branch is actually taken its denominator is >= 1 already
    # (it exceeds a token count, which is >= 0), so values are unchanged.
    ratio1 = _np.minimum(1.0, right_max / _np.maximum(l_min, 1.0))
    ratio1 = _np.where(l_min <= 0, 1.0, ratio1)
    ratio2 = _np.minimum(1.0, l_max / _np.maximum(right_min, 1.0))
    ratio2 = _np.where(right_min <= 0, 1.0, ratio2)
    return _np.where(branch1, ratio1, _np.where(branch2, ratio2, 1.0))
