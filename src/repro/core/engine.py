"""The TER-iDS processing engine (Algorithms 1 and 2 of the paper).

:class:`TERiDSEngine` wires together every substrate:

* **pre-computation phase** — select pivot tuples from the repository,
  mine CDD rules, build the per-attribute CDD-indexes and the DR-index,
  create the ER-grid synopsis over the streams (Algorithm 1, lines 1–6);
* **imputation + pruning phase** — per arriving tuple, evict the expired
  tuple of that stream, run the index join (CDD-index → applicable rules,
  DR-index → candidate samples, Equation (4) → imputed instances), query the
  ER-grid for candidate matching tuples and filter them with the four
  pruning strategies (Algorithm 2, lines 2–25);
* **refinement phase** — compute the exact TER-iDS probability of surviving
  candidates (with Theorem 4.4 early termination) and maintain the entity
  result set ``ES`` (Algorithm 2, line 26).

The engine also records everything the evaluation section needs: pruning
power (Figure 4), break-up cost (Figure 6), imputation statistics and
wall-clock times.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import TERiDSConfig
from repro.core.matching import EntityResultSet, MatchPair
from repro.core.pruning import PruningPipeline, PruningStats, RecordSynopsis
from repro.core.stream import SlidingWindow
from repro.core.tuples import ImputedRecord, Record, Schema
from repro.imputation.cdd import CDDDiscoveryConfig, CDDRule, discover_cdd_rules
from repro.imputation.imputer import CDDImputer, ImputationStats
from repro.imputation.repository import DataRepository
from repro.indexes.cdd_index import CDDIndex, build_cdd_indexes
from repro.indexes.dr_index import DRIndex
from repro.indexes.er_grid import ERGrid
from repro.indexes.pivots import PivotSelectionConfig, PivotTable, select_pivots
from repro.metrics.timing import (
    STAGE_CDD_SELECTION,
    STAGE_ER,
    STAGE_IMPUTATION,
    BreakupCost,
    StageTimer,
)


@dataclass
class EngineReport:
    """Summary of one engine run over a workload."""

    timestamps_processed: int
    matches: List[MatchPair]
    pruning_stats: PruningStats
    imputation_stats: ImputationStats
    breakup_cost: BreakupCost
    total_seconds: float

    @property
    def mean_seconds_per_timestamp(self) -> float:
        return self.total_seconds / max(1, self.timestamps_processed)


class TERiDSEngine:
    """Online topic-aware entity resolution over incomplete data streams.

    Parameters
    ----------
    repository:
        The static complete data repository ``R`` used for imputation.
    config:
        The operator configuration (schema, keywords, thresholds, window).
    rules:
        Pre-mined CDD rules; mined from ``repository`` when omitted.
    discovery_config / pivot_config:
        Knobs for the offline rule mining and pivot selection.
    """

    def __init__(
        self,
        repository: DataRepository,
        config: TERiDSConfig,
        rules: Optional[Sequence[CDDRule]] = None,
        discovery_config: Optional[CDDDiscoveryConfig] = None,
        pivot_config: Optional[PivotSelectionConfig] = None,
    ) -> None:
        self.repository = repository
        self.config = config
        self.schema: Schema = config.schema

        # ---- pre-computation phase (Algorithm 1, lines 1-6) ----
        self.pivot_config = pivot_config or PivotSelectionConfig(
            buckets=config.entropy_buckets,
            min_entropy=config.min_entropy,
            max_pivots=config.max_pivots,
        )
        self.pivots: PivotTable = select_pivots(repository, self.pivot_config)
        self.rules: List[CDDRule] = list(
            rules if rules is not None
            else discover_cdd_rules(repository, discovery_config))
        self.cdd_indexes: Dict[str, CDDIndex] = build_cdd_indexes(
            self.rules, self.schema, self.pivots)
        self.dr_index = DRIndex(repository, self.pivots, keywords=config.keywords)
        self.grid = ERGrid(self.schema, cells_per_dim=config.grid_cells_per_dim)

        self.imputer = CDDImputer(
            repository=repository,
            rules=self.rules,
            sample_retriever=self.dr_index.make_retriever(),
        )

        # ---- online state ----
        self.windows: Dict[str, SlidingWindow] = {}
        self.result_set = EntityResultSet()
        self.pruning = PruningPipeline(
            keywords=config.keywords,
            gamma=config.gamma,
            alpha=config.alpha,
            use_topic=config.use_topic_pruning,
            use_similarity=config.use_similarity_pruning,
            use_probability=config.use_probability_pruning,
            use_instance=config.use_instance_pruning,
        )
        self.timer = StageTimer()
        self.timestamps_processed = 0

    # ------------------------------------------------------------------
    # online processing
    # ------------------------------------------------------------------
    def _window_for(self, source: str) -> SlidingWindow:
        window = self.windows.get(source)
        if window is None:
            window = SlidingWindow(capacity=self.config.window_size)
            self.windows[source] = window
        return window

    def _select_rules(self, record: Record) -> Dict[str, List[CDDRule]]:
        """Online CDD selection via the CDD-indexes (one entry per missing attr)."""
        selected: Dict[str, List[CDDRule]] = {}
        for attribute in record.missing_attributes(self.schema):
            index = self.cdd_indexes.get(attribute)
            if index is None:
                selected[attribute] = []
            else:
                selected[attribute] = index.candidate_rules(record)
        return selected

    def _impute(self, record: Record,
                selected_rules: Dict[str, List[CDDRule]]) -> ImputedRecord:
        """Impute the record's missing attributes with the selected rules."""
        missing = record.missing_attributes(self.schema)
        if not missing:
            return ImputedRecord.from_complete(record, self.schema)
        candidates: Dict[str, Dict[str, float]] = {}
        for attribute in missing:
            rules = selected_rules.get(attribute, [])
            if not rules:
                self.imputer.stats.attributes_unimputable += 1
                continue
            scoped = CDDImputer(
                repository=self.repository,
                rules=rules,
                max_candidates_per_sample=self.imputer.max_candidates_per_sample,
                max_rules_per_attribute=self.imputer.max_rules_per_attribute,
                max_candidate_values=self.imputer.max_candidate_values,
                sample_retriever=self.imputer.sample_retriever,
            )
            distribution = scoped.candidate_distribution(record, attribute)
            self.imputer.stats.merge(scoped.stats)
            if distribution:
                candidates[attribute] = distribution
                self.imputer.stats.attributes_imputed += 1
            else:
                self.imputer.stats.attributes_unimputable += 1
        self.imputer.stats.records_imputed += 1
        return ImputedRecord(base=record, schema=self.schema, candidates=candidates)

    def _expire_if_needed(self, source: str) -> Optional[RecordSynopsis]:
        """Evict the oldest tuple of a full window before a new insertion."""
        window = self._window_for(source)
        if not window.is_full:
            return None
        # SlidingWindow.insert would evict automatically; we peek the oldest
        # tuple explicitly so the grid and the result set stay consistent.
        oldest = window.items()[0]
        self.grid.remove(oldest.record.rid, oldest.record.source)
        self.result_set.remove_record(oldest.record.rid, oldest.record.source)
        return oldest

    def process(self, record: Record) -> List[MatchPair]:
        """Process one newly arriving (possibly incomplete) tuple.

        Returns the match pairs discovered for this tuple at this timestamp.
        """
        self.timestamps_processed += 1
        source = record.source
        self._expire_if_needed(source)

        # --- online CDD selection (index access, Figure 6 stage 1) ---
        with self.timer.measure(STAGE_CDD_SELECTION):
            selected_rules = self._select_rules(record)

        # --- online imputation (Figure 6 stage 2) ---
        with self.timer.measure(STAGE_IMPUTATION):
            imputed = self._impute(record, selected_rules)
            synopsis = RecordSynopsis.build(imputed, self.pivots,
                                            self.config.keywords)

        # --- online topic-aware ER (Figure 6 stage 3) ---
        new_pairs: List[MatchPair] = []
        with self.timer.measure(STAGE_ER):
            # Keywords are deliberately NOT pushed down to the grid here: the
            # topic-keyword pruning is applied (and counted) by the pruning
            # pipeline so that the Figure 4 pruning-power report attributes
            # eliminated pairs to the right strategy.  The grid still prunes
            # cells with the converted-space distance bound.
            candidates = self.grid.candidate_synopses(
                synopsis,
                gamma=self.config.gamma,
                keywords=frozenset(),
                exclude_source=source,
            )
            for candidate in candidates:
                is_match, probability = self.pruning.evaluate_pair(synopsis, candidate)
                if is_match:
                    pair = MatchPair(
                        left_rid=record.rid,
                        left_source=record.source,
                        right_rid=candidate.record.rid,
                        right_source=candidate.record.source,
                        probability=probability,
                        timestamp=record.timestamp,
                    )
                    new_pairs.append(pair)
                    self.result_set.add(pair)

            # Register the new tuple in the window and the grid.
            window = self._window_for(source)
            window.insert(synopsis)
            self.grid.insert(synopsis)

        return new_pairs

    def run(self, records: Iterable[Record]) -> EngineReport:
        """Process a whole (interleaved) record sequence and report statistics."""
        import time as _time

        start = _time.perf_counter()
        all_matches: List[MatchPair] = []
        for record in records:
            all_matches.extend(self.process(record))
        total = _time.perf_counter() - start
        return EngineReport(
            timestamps_processed=self.timestamps_processed,
            matches=all_matches,
            pruning_stats=self.pruning.stats,
            imputation_stats=self.imputer.stats,
            breakup_cost=BreakupCost.from_timer(self.timer,
                                                self.timestamps_processed),
            total_seconds=total,
        )

    # ------------------------------------------------------------------
    # dynamic repository maintenance (Section 5.5)
    # ------------------------------------------------------------------
    def add_repository_samples(self, samples: Iterable[Record],
                               remine_rules: bool = False) -> None:
        """Extend the repository with new complete samples.

        The DR-index is updated incrementally; CDD rules and CDD-indexes are
        re-mined only when ``remine_rules`` is set (the incremental rule
        maintenance of Section 5.5 is approximated by re-mining, which is
        exact though more expensive).
        """
        for sample in samples:
            self.dr_index.insert_sample(sample)
        if remine_rules:
            self.rules = discover_cdd_rules(self.repository)
            self.cdd_indexes = build_cdd_indexes(self.rules, self.schema, self.pivots)
            self.imputer = CDDImputer(
                repository=self.repository,
                rules=self.rules,
                sample_retriever=self.dr_index.make_retriever(),
            )

    # ------------------------------------------------------------------
    # reporting helpers
    # ------------------------------------------------------------------
    def current_matches(self) -> List[MatchPair]:
        """Snapshot of the maintained entity result set ``ES``."""
        return self.result_set.pairs()

    def breakup_cost(self) -> BreakupCost:
        """Average per-timestamp break-up cost accumulated so far."""
        return BreakupCost.from_timer(self.timer, self.timestamps_processed)

    def pruning_power(self) -> Dict[str, float]:
        """Per-strategy pruning power accumulated so far (Figure 4)."""
        return self.pruning.stats.pruning_power()
