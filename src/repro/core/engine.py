"""The TER-iDS processing engine (Algorithms 1 and 2 of the paper).

:class:`TERiDSEngine` is a thin facade over the staged streaming runtime of
:mod:`repro.runtime`:

* **pre-computation phase** — the constructor selects pivot tuples from the
  repository, mines CDD rules, builds the per-attribute CDD-indexes and the
  DR-index, and creates the ER-grid synopsis over the streams (Algorithm 1,
  lines 1–6), wiring everything into a
  :class:`~repro.runtime.context.RuntimeContext`;
* **online phase** — arriving tuples flow through the
  :class:`~repro.runtime.pipeline.Pipeline` stages (CDD selection →
  imputation → synopsis → grid lookup → pruning/refinement → maintenance,
  Algorithm 2) under a pluggable
  :class:`~repro.runtime.executors.Executor`: the default
  :class:`~repro.runtime.executors.SerialExecutor` reproduces the original
  single-tuple semantics bit-identically, while
  :class:`~repro.runtime.executors.MicroBatchExecutor` ingests micro-batches
  and amortises per-tuple work without changing the answers;
* **state management** — :meth:`checkpoint` / :meth:`restore_checkpoint`
  round-trip the online state (windows, grid, result set, counters) through
  the :mod:`repro.persistence` serialisers so a stream can be paused and
  resumed with identical results.

The engine still records everything the evaluation section needs: pruning
power (Figure 4), break-up cost (Figure 6), imputation statistics and
wall-clock times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.config import TERiDSConfig
from repro.core.matching import EntityResultSet, MatchPair
from repro.core.pruning import PruningPipeline, PruningStats
from repro.core.stream import SlidingWindow
from repro.core.tuples import Record, Schema
from repro.imputation.cdd import (
    MAINTENANCE_FULL,
    CDDDiscoveryConfig,
    CDDRule,
    discover_cdd_rules,
)
from repro.imputation.imputer import CDDImputer, ImputationStats
from repro.imputation.incremental import IncrementalRuleMaintainer
from repro.imputation.repository import DataRepository
from repro.indexes.cdd_index import CDDIndex, build_cdd_indexes
from repro.indexes.dr_index import DRIndex
from repro.indexes.er_grid import ERGrid
from repro.indexes.pivots import PivotSelectionConfig, PivotTable, select_pivots
from repro.metrics.timing import BreakupCost, StageTimer, now
from repro.persistence import load_checkpoint, save_checkpoint
from repro.runtime.checkpoint import engine_state_to_dict, restore_engine_state
from repro.runtime.context import RuntimeContext
from repro.runtime.executors import Executor, SerialExecutor
from repro.runtime.pipeline import Pipeline
from repro.runtime.query import QueryResolver, ResolvedCluster


@dataclass
class EngineReport:
    """Summary of one engine run over a workload."""

    timestamps_processed: int
    matches: List[MatchPair]
    pruning_stats: PruningStats
    imputation_stats: ImputationStats
    breakup_cost: BreakupCost
    total_seconds: float

    @property
    def mean_seconds_per_timestamp(self) -> float:
        return self.total_seconds / max(1, self.timestamps_processed)


class TERiDSEngine:
    """Online topic-aware entity resolution over incomplete data streams.

    Parameters
    ----------
    repository:
        The static complete data repository ``R`` used for imputation.
    config:
        The operator configuration (schema, keywords, thresholds, window).
    rules:
        Pre-mined CDD rules; mined from ``repository`` when omitted.
    discovery_config / pivot_config:
        Knobs for the offline rule mining and pivot selection.
    executor:
        Scheduling strategy for the online phase.  Defaults to
        :class:`~repro.runtime.executors.SerialExecutor` (the paper's
        tuple-at-a-time semantics); pass a
        :class:`~repro.runtime.executors.MicroBatchExecutor` for batched
        ingestion with identical match sets and higher throughput.
    """

    def __init__(
        self,
        repository: DataRepository,
        config: TERiDSConfig,
        rules: Optional[Sequence[CDDRule]] = None,
        discovery_config: Optional[CDDDiscoveryConfig] = None,
        pivot_config: Optional[PivotSelectionConfig] = None,
        executor: Optional[Executor] = None,
    ) -> None:
        self.repository = repository
        self.config = config
        self.schema: Schema = config.schema
        self.discovery_config = discovery_config

        # ---- pre-computation phase (Algorithm 1, lines 1-6) ----
        self.pivot_config = pivot_config or PivotSelectionConfig(
            buckets=config.entropy_buckets,
            min_entropy=config.min_entropy,
            max_pivots=config.max_pivots,
        )
        pivots = select_pivots(repository, self.pivot_config)
        maintenance_mode = (discovery_config.maintenance_mode
                            if discovery_config is not None else MAINTENANCE_FULL)
        maintainer: Optional[IncrementalRuleMaintainer] = None
        if rules is not None:
            # Pre-mined rules bypass the maintainer: its sketches are only
            # meaningful for rules it derived from the repository itself.
            mined: List[CDDRule] = list(rules)
        elif maintenance_mode != MAINTENANCE_FULL:
            maintainer = IncrementalRuleMaintainer(discovery_config,
                                                   config.schema)
            mined = maintainer.initialize(repository)
        else:
            mined = list(discover_cdd_rules(repository, discovery_config))
        dr_index = DRIndex(repository, pivots, keywords=config.keywords)

        # ---- runtime wiring (context + pipeline + executor) ----
        self.ctx = RuntimeContext(
            config=config,
            repository=repository,
            pivots=pivots,
            rules=mined,
            cdd_indexes=build_cdd_indexes(mined, self.schema, pivots),
            dr_index=dr_index,
            grid=ERGrid(self.schema, cells_per_dim=config.grid_cells_per_dim),
            imputer=CDDImputer(
                repository=repository,
                rules=mined,
                sample_retriever=dr_index.make_retriever(),
            ),
            discovery_config=discovery_config,
            rule_maintainer=maintainer,
        )
        self.pipeline = Pipeline(self.ctx)
        self.executor: Executor = executor if executor is not None else SerialExecutor()
        self._resolver: Optional[QueryResolver] = None

    # ------------------------------------------------------------------
    # state passthroughs (historical attribute names of the monolith)
    # ------------------------------------------------------------------
    @property
    def pivots(self) -> PivotTable:
        return self.ctx.pivots

    @property
    def rules(self) -> List[CDDRule]:
        return self.ctx.rules

    @rules.setter
    def rules(self, rules: List[CDDRule]) -> None:
        self.ctx.rules = rules

    @property
    def cdd_indexes(self) -> Dict[str, CDDIndex]:
        return self.ctx.cdd_indexes

    @cdd_indexes.setter
    def cdd_indexes(self, indexes: Dict[str, CDDIndex]) -> None:
        self.ctx.cdd_indexes = indexes

    @property
    def dr_index(self) -> DRIndex:
        return self.ctx.dr_index

    @property
    def grid(self) -> ERGrid:
        return self.ctx.grid

    @property
    def imputer(self) -> CDDImputer:
        return self.ctx.imputer

    @imputer.setter
    def imputer(self, imputer: CDDImputer) -> None:
        self.ctx.imputer = imputer

    @property
    def rule_maintainer(self) -> Optional[IncrementalRuleMaintainer]:
        return self.ctx.rule_maintainer

    @property
    def windows(self) -> Dict[str, SlidingWindow]:
        return self.ctx.windows

    @property
    def result_set(self) -> EntityResultSet:
        return self.ctx.result_set

    @property
    def pruning(self) -> PruningPipeline:
        return self.ctx.pruning

    @property
    def timer(self) -> StageTimer:
        return self.ctx.timer

    @property
    def timestamps_processed(self) -> int:
        return self.ctx.timestamps_processed

    @timestamps_processed.setter
    def timestamps_processed(self, value: int) -> None:
        self.ctx.timestamps_processed = value

    # ------------------------------------------------------------------
    # online processing
    # ------------------------------------------------------------------
    def process(self, record: Record) -> List[MatchPair]:
        """Process one newly arriving (possibly incomplete) tuple.

        Returns the match pairs discovered for this tuple at this timestamp.
        """
        return self.executor.process_batch(self.pipeline, [record])[0]

    def process_batch(self, records: Sequence[Record]) -> List[MatchPair]:
        """Process a micro-batch of arriving tuples (in arrival order).

        Returns the concatenated match pairs discovered for the batch, in
        arrival order — exactly what ``process`` would have returned tuple
        by tuple.  How much of the work is amortised across the batch is the
        executor's business.
        """
        per_record = self.executor.process_batch(self.pipeline, list(records))
        matches: List[MatchPair] = []
        for pairs in per_record:
            matches.extend(pairs)
        return matches

    def run(self, records: Iterable[Record]) -> EngineReport:
        """Process a whole (interleaved) record sequence and report statistics."""
        start = now()
        all_matches: List[MatchPair] = []
        batch_size = max(1, self.executor.batch_size)
        if batch_size == 1:
            for record in records:
                all_matches.extend(self.process(record))
        else:
            batch: List[Record] = []
            for record in records:
                batch.append(record)
                if len(batch) >= batch_size:
                    all_matches.extend(self.process_batch(batch))
                    batch = []
            if batch:
                all_matches.extend(self.process_batch(batch))
        total = now() - start
        return EngineReport(
            timestamps_processed=self.ctx.timestamps_processed,
            matches=all_matches,
            pruning_stats=self.ctx.pruning.stats,
            imputation_stats=self.ctx.imputer.stats,
            breakup_cost=BreakupCost.from_timer(self.ctx.timer,
                                                self.ctx.timestamps_processed),
            total_seconds=total,
        )

    def close(self) -> None:
        """Release executor resources (e.g. the micro-batch process pool)."""
        self.executor.close()

    # ------------------------------------------------------------------
    # query-time resolution (on-demand read path)
    # ------------------------------------------------------------------
    @property
    def resolver(self) -> QueryResolver:
        """The query-time resolver over this engine's live window.

        Created lazily (and registered on the grid's maintenance
        notifications) on first use, so eager-only deployments pay nothing.
        """
        if self._resolver is None:
            self._resolver = QueryResolver(self.ctx)
        return self._resolver

    def resolve(self, rid: str, source: str, topic=None,
                gamma=None) -> ResolvedCluster:
        """Resolved cluster of one in-window record, on demand.

        Expands collectively around the named record through the ER-grid +
        pruning cascade (see :mod:`repro.runtime.query`); with the default
        ``topic`` / ``gamma`` the cluster is bit-identical to the transitive
        closure of the eagerly maintained result set restricted to the
        record's component.  Raises :class:`KeyError` for records outside
        the live window.
        """
        return self.resolver.resolve(rid, source, topic=topic, gamma=gamma)

    def resolve_many(self, entities, topic=None, gamma=None):
        """Resolve several in-window records in one shared expansion.

        ``entities`` is a sequence of ``(rid, source)`` pairs; returns the
        positionally aligned list of :class:`ResolvedCluster`.  Cache
        misses share one frontier expansion and one batched cascade per
        ring (see :meth:`~repro.runtime.query.QueryResolver.resolve_many`),
        so a dashboard refresh over N entities costs far less than N
        :meth:`resolve` calls while returning bit-identical clusters.
        """
        return self.resolver.resolve_many(entities, topic=topic, gamma=gamma)

    # ------------------------------------------------------------------
    # telemetry (see repro.obs)
    # ------------------------------------------------------------------
    def enable_telemetry(self, registry=None, trace_ring: int = 16,
                         profile_slowest: int = 0):
        """Turn the telemetry plane on: metrics registry, per-batch span
        traces and (``profile_slowest > 0``) cProfile capture of the N
        slowest batches.  Returns the :class:`~repro.obs.telemetry.Telemetry`
        instance.  Telemetry only measures wall clock — match sets, pruning
        counters and candidate order are bit-identical either way.
        """
        return self.ctx.enable_telemetry(registry=registry,
                                         trace_ring=trace_ring,
                                         profile_slowest=profile_slowest)

    def disable_telemetry(self) -> None:
        """Swap the no-op telemetry plane back in."""
        self.ctx.disable_telemetry()

    def metrics_snapshot(self) -> Dict:
        """JSON-safe snapshot of every measured signal (see
        :meth:`~repro.runtime.context.RuntimeContext.metrics_snapshot`)."""
        return self.ctx.metrics_snapshot()

    def render_metrics(self) -> str:
        """The metrics registry in Prometheus text-exposition format.

        Requires :meth:`enable_telemetry` first (the disabled plane has no
        registry to render).
        """
        from repro.obs.exporters import render_prometheus

        telemetry = self.ctx.telemetry
        if not getattr(telemetry, "enabled", False):
            raise RuntimeError("telemetry is disabled; call "
                               "enable_telemetry() before render_metrics()")
        return render_prometheus(telemetry.registry)

    # ------------------------------------------------------------------
    # checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint(self) -> Dict:
        """Snapshot the online state (windows, grid, result set, counters).

        The offline substrates are not included: they are deterministic
        functions of the repository and configuration, rebuilt by the
        constructor.  Restore with :meth:`restore_checkpoint` on an engine
        built over the same repository, configuration and rules.
        """
        return engine_state_to_dict(self.ctx)

    def restore_checkpoint(self, state: Dict) -> None:
        """Rebuild the online state from a :meth:`checkpoint` snapshot."""
        restore_engine_state(self.ctx, state)
        if self._resolver is not None:
            # The query-result cache is scratch over the live window: the
            # grid rebuild already invalidated every entry region by
            # region, and this keeps the guarantee explicit whatever the
            # restore path touched.
            self._resolver.clear()

    def save_checkpoint(self, path) -> None:
        """Write a :meth:`checkpoint` snapshot to a JSON file."""
        save_checkpoint(self.checkpoint(), path)

    def load_checkpoint(self, path) -> None:
        """Restore the online state from a file written by :meth:`save_checkpoint`."""
        self.restore_checkpoint(load_checkpoint(path))

    # ------------------------------------------------------------------
    # dynamic repository maintenance (Section 5.5)
    # ------------------------------------------------------------------
    def add_repository_samples(self, samples: Iterable[Record],
                               remine_rules: bool = False):
        """Extend the repository with new complete samples (Section 5.5).

        Delegates to the runtime's
        :meth:`~repro.runtime.stages.MaintenanceStage.absorb_repository_samples`:
        the repository and the DR-index always grow; the CDD rules evolve
        according to the discovery configuration's maintenance mode (``full``
        re-mines only when ``remine_rules`` is set; ``incremental`` /
        ``hybrid`` fold the batch into the rule maintainer's sketches in
        O(batch)).  Accumulated imputation statistics and the batch-level
        candidate cache survive every rule swap.  Returns the maintainer's
        :class:`~repro.imputation.incremental.MaintenanceReport` (``None``
        in ``full`` mode).
        """
        return self.pipeline.maintenance.absorb_repository_samples(
            list(samples), remine_rules=remine_rules)

    # ------------------------------------------------------------------
    # reporting helpers
    # ------------------------------------------------------------------
    def current_matches(self) -> List[MatchPair]:
        """Snapshot of the maintained entity result set ``ES``."""
        return self.ctx.result_set.pairs()

    def breakup_cost(self) -> BreakupCost:
        """Average per-timestamp break-up cost accumulated so far."""
        return BreakupCost.from_timer(self.ctx.timer,
                                      self.ctx.timestamps_processed)

    def pruning_power(self) -> Dict[str, float]:
        """Per-strategy pruning power accumulated so far (Figure 4)."""
        return self.ctx.pruning.stats.pruning_power()
