"""Heterogeneous-schema similarity — the extension sketched in Section 2.3.

The paper's similarity function (Definition 5) assumes homogeneous schemas
and sums per-attribute Jaccard similarities.  For data sets with
*heterogeneous* schemas it proposes instead the Jaccard similarity between
the token sets of the whole tuples, ``|T(r) ∩ T(r')| / |T(r) ∪ T(r')|``,
leaving the integration as future work.  This module implements that
variant together with a matching probability and a small matcher, so the
library also covers streams whose sources disagree on attribute names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Tuple

from repro.core.matching import MatchPair
from repro.core.similarity import jaccard_similarity
from repro.core.tuples import ImputedRecord, Record, Schema


def record_token_set(record: Record, schema: Optional[Schema] = None) -> frozenset:
    """Union of the record's token sets over its own attributes.

    When ``schema`` is given only those attributes are considered; otherwise
    every attribute present in the record contributes (the heterogeneous
    case, where different records may carry different attributes).
    """
    names = list(schema) if schema is not None else list(record.values)
    tokens: set = set()
    for name in names:
        tokens |= record.tokens(name)
    return frozenset(tokens)


def heterogeneous_similarity(left: Record, right: Record,
                             left_schema: Optional[Schema] = None,
                             right_schema: Optional[Schema] = None) -> float:
    """Whole-tuple Jaccard similarity ``|T(r) ∩ T(r')| / |T(r) ∪ T(r')|``.

    The score lies in ``[0, 1]`` (unlike the homogeneous sum, which lies in
    ``[0, d]``), so thresholds for this variant are plain Jaccard thresholds.
    """
    return jaccard_similarity(record_token_set(left, left_schema),
                              record_token_set(right, right_schema))


def heterogeneous_probability(left: ImputedRecord, right: ImputedRecord,
                              keywords: FrozenSet[str], gamma: float) -> float:
    """Equation (2) with the heterogeneous similarity in place of Eq. (1)."""
    total = 0.0
    for left_instance in left.instances():
        for right_instance in right.instances():
            if keywords:
                left_tokens = record_token_set(left_instance.record, left.schema)
                right_tokens = record_token_set(right_instance.record, right.schema)
                if not any(keyword in left_tokens or keyword in right_tokens
                           for keyword in keywords):
                    continue
            similarity = heterogeneous_similarity(
                left_instance.record, right_instance.record,
                left.schema, right.schema)
            if similarity > gamma:
                total += left_instance.probability * right_instance.probability
    return total


@dataclass
class HeterogeneousMatcher:
    """A small nested-loop matcher for streams with differing schemas.

    This is deliberately simple (no grid, no pivot bounds): the purpose is
    API completeness for the heterogeneous extension, not the indexed fast
    path, which the paper leaves to future work.
    """

    keywords: FrozenSet[str]
    gamma: float
    alpha: float

    def __post_init__(self) -> None:
        if not 0.0 < self.gamma < 1.0:
            raise ValueError(
                f"heterogeneous gamma is a Jaccard threshold in (0, 1), got {self.gamma}")
        if not 0.0 <= self.alpha < 1.0:
            raise ValueError(f"alpha must be in [0, 1), got {self.alpha}")

    def match_pair(self, left: ImputedRecord,
                   right: ImputedRecord) -> Optional[MatchPair]:
        """Return a match pair when the pair qualifies, else ``None``."""
        probability = heterogeneous_probability(left, right, self.keywords,
                                                self.gamma)
        if probability <= self.alpha:
            return None
        return MatchPair(left_rid=left.rid, left_source=left.source,
                         right_rid=right.rid, right_source=right.source,
                         probability=probability,
                         timestamp=max(left.timestamp, right.timestamp))

    def match_against(self, query: ImputedRecord,
                      candidates: Iterable[ImputedRecord]) -> List[MatchPair]:
        """Match one tuple against a candidate collection (cross-source only)."""
        matches = []
        for candidate in candidates:
            if candidate.source == query.source:
                continue
            pair = self.match_pair(query, candidate)
            if pair is not None:
                matches.append(pair)
        return matches
