"""The four TER-iDS pruning strategies (Section 4, Theorems 4.1–4.4).

The strategies are applied in the paper's order:

1. **Topic keyword pruning** (Theorem 4.1): a pair is pruned when neither
   imputed tuple can possibly contain a query keyword.
2. **Similarity upper-bound pruning** (Theorem 4.2): a pair is pruned when an
   upper bound of the tuple similarity is at most ``γ``.  Two bounds are
   available — via token-set sizes (Lemma 4.1) and via a pivot tuple and the
   triangle inequality (Lemma 4.2) — and the tighter (smaller) one is used.
3. **Probability upper-bound pruning** (Theorem 4.3 / Lemma 4.3): a
   Paley–Zygmund-based upper bound of the TER-iDS probability is compared
   against ``α``.
4. **Instance-pair-level pruning** (Theorem 4.4): while computing the exact
   probability, the unexplored instance-pair mass is overestimated as
   matching; once even that optimistic total cannot exceed ``α`` the pair is
   abandoned.

All bounds are evaluated on a per-record :class:`RecordSynopsis` — the
pivot-distance intervals, expectations, token-size bounds and keyword flags
that the ER-grid stores as aggregates (Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.matching import ter_ids_probability_with_cutoff
from repro.core.similarity import (
    attribute_similarity_upper_bound,
    text_distance,
    tokenize,
)
from repro.core.tuples import ImputedRecord, Schema

if TYPE_CHECKING:  # pragma: no cover - only needed for type checkers
    from repro.indexes.pivots import PivotTable

#: Names of the pruning strategies, in application order (used for the
#: Figure 4 pruning-power report).
PRUNING_ORDER = (
    "topic_keyword",
    "similarity_upper_bound",
    "probability_upper_bound",
    "instance_pair_level",
)


@dataclass
class PruningStats:
    """Counters of how many candidate pairs each strategy eliminated."""

    pairs_considered: int = 0
    pruned_by_topic: int = 0
    pruned_by_similarity: int = 0
    pruned_by_probability: int = 0
    pruned_by_instance: int = 0
    refined_matches: int = 0
    refined_non_matches: int = 0

    @property
    def total_pruned(self) -> int:
        return (self.pruned_by_topic + self.pruned_by_similarity
                + self.pruned_by_probability + self.pruned_by_instance)

    def pruning_power(self) -> Dict[str, float]:
        """Per-strategy pruned fraction of all considered pairs (Figure 4)."""
        total = max(1, self.pairs_considered)
        return {
            "topic_keyword": self.pruned_by_topic / total,
            "similarity_upper_bound": self.pruned_by_similarity / total,
            "probability_upper_bound": self.pruned_by_probability / total,
            "instance_pair_level": self.pruned_by_instance / total,
            "total": self.total_pruned / total,
        }

    def merge(self, other: "PruningStats") -> None:
        self.pairs_considered += other.pairs_considered
        self.pruned_by_topic += other.pruned_by_topic
        self.pruned_by_similarity += other.pruned_by_similarity
        self.pruned_by_probability += other.pruned_by_probability
        self.pruned_by_instance += other.pruned_by_instance
        self.refined_matches += other.refined_matches
        self.refined_non_matches += other.refined_non_matches


@dataclass
class RecordSynopsis:
    """Pre-computed aggregates of one imputed tuple (ER-grid per-tuple info).

    Attributes
    ----------
    record:
        The imputed tuple the synopsis describes.
    distance_bounds:
        ``distance_bounds[attribute][pivot_index] = (lb, ub)`` — bounds of the
        Jaccard distance from the tuple's possible values to each pivot.
    distance_expectations:
        ``distance_expectations[attribute][pivot_index]`` — expected distance
        under the candidate-value distribution (used by Lemma 4.3).
    token_size_bounds:
        ``token_size_bounds[attribute] = (|T^-|, |T^+|)``.
    may_have_keyword / must_have_keyword:
        Keyword flags for the topic predicate over *any* / *all* instances.
    """

    record: ImputedRecord
    distance_bounds: Dict[str, List[Tuple[float, float]]]
    distance_expectations: Dict[str, List[float]]
    token_size_bounds: Dict[str, Tuple[int, int]]
    may_have_keyword: bool
    must_have_keyword: bool

    # -- derived quantities -------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self.record.schema

    @property
    def rid(self) -> str:
        """Identity passthrough so windows/grids can key on the synopsis."""
        return self.record.rid

    @property
    def source(self) -> str:
        """Identity passthrough so windows/grids can key on the synopsis."""
        return self.record.source

    def main_point(self) -> List[float]:
        """Expected main-pivot coordinates (one per attribute)."""
        return [self.distance_expectations[name][0] for name in self.schema]

    def main_interval(self, attribute: str) -> Tuple[float, float]:
        """Main-pivot distance bounds of one attribute."""
        return self.distance_bounds[attribute][0]

    def coordinate_rectangle(self) -> List[Tuple[float, float]]:
        """Per-attribute main-pivot distance intervals (the grid footprint)."""
        return [self.distance_bounds[name][0] for name in self.schema]

    def total_distance_bounds(self, pivot_index: int = 0) -> Tuple[float, float]:
        """``(lb_X, ub_X)`` of the tuple-to-pivot distance summed over attributes."""
        low = 0.0
        high = 0.0
        for name in self.schema:
            bounds = self.distance_bounds[name]
            index = min(pivot_index, len(bounds) - 1)
            lb, ub = bounds[index]
            low += lb
            high += ub
        return low, high

    def expected_total_distance(self, pivot_index: int = 0) -> float:
        """``E(X)`` of Lemma 4.3: expected summed distance to the pivot."""
        total = 0.0
        for name in self.schema:
            expectations = self.distance_expectations[name]
            index = min(pivot_index, len(expectations) - 1)
            total += expectations[index]
        return total

    @classmethod
    def build(cls, record: ImputedRecord, pivots: "PivotTable",
              keywords: FrozenSet[str]) -> "RecordSynopsis":
        """Compute the synopsis of one imputed tuple against the pivot table."""
        distance_bounds: Dict[str, List[Tuple[float, float]]] = {}
        distance_expectations: Dict[str, List[float]] = {}
        token_size_bounds: Dict[str, Tuple[int, int]] = {}

        for attribute in record.schema:
            possible = record.possible_values(attribute)
            pivot_values = pivots.all_pivots(attribute)
            bounds: List[Tuple[float, float]] = []
            expectations: List[float] = []
            for pivot_value in pivot_values:
                low = 1.0
                high = 0.0
                expected = 0.0
                mass = 0.0
                for value, probability in possible.items():
                    distance = text_distance(value, pivot_value) if value else 1.0
                    low = min(low, distance)
                    high = max(high, distance)
                    expected += probability * distance
                    mass += probability
                if mass > 0 and mass < 1.0:
                    # Unretained probability mass is treated pessimistically
                    # (distance 1.0), keeping the expectation an upper-style
                    # estimate without breaking the bounds.
                    expected += (1.0 - mass) * 1.0
                bounds.append((low, high))
                expectations.append(expected)
            distance_bounds[attribute] = bounds
            distance_expectations[attribute] = expectations
            sizes = [len(tokenize(value)) for value in possible]
            token_size_bounds[attribute] = (min(sizes), max(sizes))

        return cls(
            record=record,
            distance_bounds=distance_bounds,
            distance_expectations=distance_expectations,
            token_size_bounds=token_size_bounds,
            may_have_keyword=record.may_contain_keyword(keywords),
            must_have_keyword=record.must_contain_keyword(keywords) if keywords else False,
        )


# ---------------------------------------------------------------------------
# Theorem 4.1 — topic keyword pruning
# ---------------------------------------------------------------------------
def topic_keyword_prune(left: RecordSynopsis, right: RecordSynopsis,
                        keywords: FrozenSet[str]) -> bool:
    """True when the pair can be pruned because no instance contains a keyword."""
    if not keywords:
        return False
    return not (left.may_have_keyword or right.may_have_keyword)


# ---------------------------------------------------------------------------
# Lemma 4.1 — similarity upper bound via token-set sizes
# ---------------------------------------------------------------------------
def similarity_upper_bound_by_size(left: RecordSynopsis,
                                   right: RecordSynopsis) -> float:
    """Sum over attributes of the token-size similarity upper bounds."""
    total = 0.0
    for attribute in left.schema:
        total += attribute_similarity_upper_bound(
            left.token_size_bounds[attribute], right.token_size_bounds[attribute])
    return total


# ---------------------------------------------------------------------------
# Lemma 4.2 — similarity upper bound via a pivot tuple
# ---------------------------------------------------------------------------
def min_attribute_distance(left_bounds: Tuple[float, float],
                           right_bounds: Tuple[float, float]) -> float:
    """``min_dist`` of Lemma 4.2 from per-attribute pivot-distance bounds."""
    left_low, left_high = left_bounds
    right_low, right_high = right_bounds
    if left_low > right_high:
        return left_low - right_high
    if right_low > left_high:
        return right_low - left_high
    return 0.0


def similarity_upper_bound_by_pivot(left: RecordSynopsis, right: RecordSynopsis,
                                    pivot_index: int = 0) -> float:
    """``d - Σ_k min_dist(r_i[A_k], r_j[A_k])`` (Lemma 4.2)."""
    schema = left.schema
    total_min_distance = 0.0
    for attribute in schema:
        left_bounds = left.distance_bounds[attribute]
        right_bounds = right.distance_bounds[attribute]
        index = min(pivot_index, len(left_bounds) - 1, len(right_bounds) - 1)
        total_min_distance += min_attribute_distance(left_bounds[index],
                                                     right_bounds[index])
    return len(schema) - total_min_distance


def similarity_upper_bound(left: RecordSynopsis, right: RecordSynopsis) -> float:
    """The tighter of the token-size and pivot-based similarity upper bounds.

    All auxiliary pivots are consulted; each yields a valid bound, so the
    minimum over pivots (and over the size bound) is still a valid bound.
    """
    best = similarity_upper_bound_by_size(left, right)
    pivot_counts = min(
        min(len(bounds) for bounds in left.distance_bounds.values()),
        min(len(bounds) for bounds in right.distance_bounds.values()),
    )
    for pivot_index in range(pivot_counts):
        best = min(best, similarity_upper_bound_by_pivot(left, right, pivot_index))
    return best


def similarity_prune(left: RecordSynopsis, right: RecordSynopsis,
                     gamma: float) -> bool:
    """Theorem 4.2: prune when the similarity upper bound is at most ``γ``."""
    return similarity_upper_bound(left, right) <= gamma


# ---------------------------------------------------------------------------
# Lemma 4.3 / Theorem 4.3 — Paley–Zygmund probability upper bound
# ---------------------------------------------------------------------------
def probability_upper_bound(left: RecordSynopsis, right: RecordSynopsis,
                            gamma: float, pivot_index: int = 0) -> float:
    """Paley–Zygmund-based upper bound of the TER-iDS probability (Lemma 4.3)."""
    dimensionality = len(left.schema)
    margin = dimensionality - gamma

    expectation_left = left.expected_total_distance(pivot_index)
    expectation_right = right.expected_total_distance(pivot_index)
    lb_left, ub_left = left.total_distance_bounds(pivot_index)
    lb_right, ub_right = right.total_distance_bounds(pivot_index)

    def bound(expect_far: float, expect_near: float,
              ub_far: float, lb_near: float) -> Optional[float]:
        gap = expect_far - expect_near
        spread = ub_far - lb_near
        if gap <= 0 or spread <= 0:
            return None
        theta = margin / gap
        if not 0.0 <= theta <= 1.0:
            return None
        return 1.0 - (1.0 - theta) ** 2 * (gap / spread)

    if lb_left >= ub_right:
        value = bound(expectation_left, expectation_right, ub_left, lb_right)
        if value is not None:
            return max(0.0, min(1.0, value))
    if lb_right >= ub_left:
        value = bound(expectation_right, expectation_left, ub_right, lb_left)
        if value is not None:
            return max(0.0, min(1.0, value))
    return 1.0


def probability_prune(left: RecordSynopsis, right: RecordSynopsis,
                      gamma: float, alpha: float) -> bool:
    """Theorem 4.3: prune when the probability upper bound is at most ``α``."""
    return probability_upper_bound(left, right, gamma) <= alpha


# ---------------------------------------------------------------------------
# Theorem 4.4 — instance-pair-level pruning (delegated to matching module)
# ---------------------------------------------------------------------------
def instance_level_verdict(left: RecordSynopsis, right: RecordSynopsis,
                           keywords: FrozenSet[str], gamma: float,
                           alpha: float) -> Tuple[float, bool, int]:
    """Exact probability with Theorem 4.4 early termination."""
    return ter_ids_probability_with_cutoff(left.record, right.record,
                                           keywords, gamma, alpha)


@dataclass
class PruningPipeline:
    """Applies the four strategies in order and records their pruning power."""

    keywords: FrozenSet[str]
    gamma: float
    alpha: float
    use_topic: bool = True
    use_similarity: bool = True
    use_probability: bool = True
    use_instance: bool = True
    stats: PruningStats = field(default_factory=PruningStats)

    def evaluate_pair(self, left: RecordSynopsis,
                      right: RecordSynopsis) -> Tuple[bool, float]:
        """Decide whether a candidate pair is a TER-iDS answer.

        Returns ``(is_match, probability_estimate)``.  The probability is
        exact for pairs that reach the refinement step and a bound otherwise.
        """
        self.stats.pairs_considered += 1

        if self.use_topic and topic_keyword_prune(left, right, self.keywords):
            self.stats.pruned_by_topic += 1
            return False, 0.0

        if self.use_similarity and similarity_prune(left, right, self.gamma):
            self.stats.pruned_by_similarity += 1
            return False, 0.0

        if self.use_probability and probability_prune(left, right, self.gamma,
                                                      self.alpha):
            self.stats.pruned_by_probability += 1
            return False, 0.0

        if self.use_instance:
            probability, is_match, pairs_checked = instance_level_verdict(
                left, right, self.keywords, self.gamma, self.alpha)
            total_pairs = (len(left.record.instances())
                           * len(right.record.instances()))
            if not is_match and pairs_checked < total_pairs:
                self.stats.pruned_by_instance += 1
                return False, probability
        else:
            from repro.core.matching import ter_ids_probability

            probability = ter_ids_probability(left.record, right.record,
                                              self.keywords, self.gamma)
            is_match = probability > self.alpha

        if is_match:
            self.stats.refined_matches += 1
        else:
            self.stats.refined_non_matches += 1
        return is_match, probability
