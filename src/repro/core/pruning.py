"""The four TER-iDS pruning strategies (Section 4, Theorems 4.1–4.4).

The strategies are applied in the paper's order:

1. **Topic keyword pruning** (Theorem 4.1): a pair is pruned when neither
   imputed tuple can possibly contain a query keyword.
2. **Similarity upper-bound pruning** (Theorem 4.2): a pair is pruned when an
   upper bound of the tuple similarity is at most ``γ``.  Two bounds are
   available — via token-set sizes (Lemma 4.1) and via a pivot tuple and the
   triangle inequality (Lemma 4.2) — and the tighter (smaller) one is used.
3. **Probability upper-bound pruning** (Theorem 4.3 / Lemma 4.3): a
   Paley–Zygmund-based upper bound of the TER-iDS probability is compared
   against ``α``.
4. **Instance-pair-level pruning** (Theorem 4.4): while computing the exact
   probability, the unexplored instance-pair mass is overestimated as
   matching; once even that optimistic total cannot exceed ``α`` the pair is
   abandoned.

All bounds are evaluated on a per-record :class:`RecordSynopsis` — the
pivot-distance intervals, expectations, token-size bounds and keyword flags
that the ER-grid stores as aggregates (Section 5.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.matching import ter_ids_probability_with_cutoff
from repro.core.similarity import (
    HAS_NUMPY,
    attribute_similarity_upper_bound,
    attribute_similarity_upper_bound_batch,
    text_distance,
    tokenize,
)

if HAS_NUMPY:
    import numpy as _np
else:  # pragma: no cover - exercised only on numpy-less installs
    _np = None
from repro.core.tuples import ImputedRecord, Schema

if TYPE_CHECKING:  # pragma: no cover - only needed for type checkers
    from repro.indexes.pivots import PivotTable

#: Names of the pruning strategies, in application order (used for the
#: Figure 4 pruning-power report).
PRUNING_ORDER = (
    "topic_keyword",
    "similarity_upper_bound",
    "probability_upper_bound",
    "instance_pair_level",
)


@dataclass
class PruningStats:
    """Counters of how many candidate pairs each strategy eliminated."""

    pairs_considered: int = 0
    pruned_by_topic: int = 0
    pruned_by_similarity: int = 0
    pruned_by_probability: int = 0
    pruned_by_instance: int = 0
    refined_matches: int = 0
    refined_non_matches: int = 0

    @property
    def total_pruned(self) -> int:
        return (self.pruned_by_topic + self.pruned_by_similarity
                + self.pruned_by_probability + self.pruned_by_instance)

    def pruning_power(self) -> Dict[str, float]:
        """Per-strategy pruned fraction of all considered pairs (Figure 4)."""
        total = max(1, self.pairs_considered)
        return {
            "topic_keyword": self.pruned_by_topic / total,
            "similarity_upper_bound": self.pruned_by_similarity / total,
            "probability_upper_bound": self.pruned_by_probability / total,
            "instance_pair_level": self.pruned_by_instance / total,
            "total": self.total_pruned / total,
        }

    def merge(self, other: "PruningStats") -> None:
        self.pairs_considered += other.pairs_considered
        self.pruned_by_topic += other.pruned_by_topic
        self.pruned_by_similarity += other.pruned_by_similarity
        self.pruned_by_probability += other.pruned_by_probability
        self.pruned_by_instance += other.pruned_by_instance
        self.refined_matches += other.refined_matches
        self.refined_non_matches += other.refined_non_matches


@dataclass
class RecordSynopsis:
    """Pre-computed aggregates of one imputed tuple (ER-grid per-tuple info).

    Attributes
    ----------
    record:
        The imputed tuple the synopsis describes.
    distance_bounds:
        ``distance_bounds[attribute][pivot_index] = (lb, ub)`` — bounds of the
        Jaccard distance from the tuple's possible values to each pivot.
    distance_expectations:
        ``distance_expectations[attribute][pivot_index]`` — expected distance
        under the candidate-value distribution (used by Lemma 4.3).
    token_size_bounds:
        ``token_size_bounds[attribute] = (|T^-|, |T^+|)``.
    may_have_keyword / must_have_keyword:
        Keyword flags for the topic predicate over *any* / *all* instances.
    """

    record: ImputedRecord
    distance_bounds: Dict[str, List[Tuple[float, float]]]
    distance_expectations: Dict[str, List[float]]
    token_size_bounds: Dict[str, Tuple[int, int]]
    may_have_keyword: bool
    must_have_keyword: bool

    # -- derived quantities -------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self.record.schema

    @property
    def rid(self) -> str:
        """Identity passthrough so windows/grids can key on the synopsis."""
        return self.record.rid

    @property
    def source(self) -> str:
        """Identity passthrough so windows/grids can key on the synopsis."""
        return self.record.source

    def main_point(self) -> List[float]:
        """Expected main-pivot coordinates (one per attribute)."""
        return [self.distance_expectations[name][0] for name in self.schema]

    def main_interval(self, attribute: str) -> Tuple[float, float]:
        """Main-pivot distance bounds of one attribute."""
        return self.distance_bounds[attribute][0]

    def coordinate_rectangle(self) -> List[Tuple[float, float]]:
        """Per-attribute main-pivot distance intervals (the grid footprint)."""
        return [self.distance_bounds[name][0] for name in self.schema]

    def total_distance_bounds(self, pivot_index: int = 0) -> Tuple[float, float]:
        """``(lb_X, ub_X)`` of the tuple-to-pivot distance summed over attributes."""
        low = 0.0
        high = 0.0
        for name in self.schema:
            bounds = self.distance_bounds[name]
            index = min(pivot_index, len(bounds) - 1)
            lb, ub = bounds[index]
            low += lb
            high += ub
        return low, high

    def expected_total_distance(self, pivot_index: int = 0) -> float:
        """``E(X)`` of Lemma 4.3: expected summed distance to the pivot."""
        total = 0.0
        for name in self.schema:
            expectations = self.distance_expectations[name]
            index = min(pivot_index, len(expectations) - 1)
            total += expectations[index]
        return total

    @classmethod
    def build(cls, record: ImputedRecord, pivots: "PivotTable",
              keywords: FrozenSet[str]) -> "RecordSynopsis":
        """Compute the synopsis of one imputed tuple against the pivot table."""
        distance_bounds: Dict[str, List[Tuple[float, float]]] = {}
        distance_expectations: Dict[str, List[float]] = {}
        token_size_bounds: Dict[str, Tuple[int, int]] = {}

        for attribute in record.schema:
            possible = record.possible_values(attribute)
            if not possible:
                # An empty candidate map (e.g. hand-built imputed records or
                # upstream imputers that retained nothing) is treated as a
                # missing value: the empty token set at distance 1.0 from
                # every pivot, exactly like ``possible_values`` reports for
                # an unimputable attribute.
                possible = {"": 1.0}
            pivot_values = pivots.all_pivots(attribute)
            bounds: List[Tuple[float, float]] = []
            expectations: List[float] = []
            for pivot_value in pivot_values:
                low = 1.0
                high = 0.0
                expected = 0.0
                mass = 0.0
                for value, probability in possible.items():
                    distance = text_distance(value, pivot_value) if value else 1.0
                    low = min(low, distance)
                    high = max(high, distance)
                    expected += probability * distance
                    mass += probability
                if mass > 0 and mass < 1.0:
                    # Unretained probability mass is treated pessimistically
                    # (distance 1.0), keeping the expectation an upper-style
                    # estimate without breaking the bounds.
                    expected += (1.0 - mass) * 1.0
                bounds.append((low, high))
                expectations.append(expected)
            distance_bounds[attribute] = bounds
            distance_expectations[attribute] = expectations
            sizes = [len(tokenize(value)) for value in possible]
            token_size_bounds[attribute] = (min(sizes), max(sizes))

        return cls(
            record=record,
            distance_bounds=distance_bounds,
            distance_expectations=distance_expectations,
            token_size_bounds=token_size_bounds,
            may_have_keyword=record.may_contain_keyword(keywords),
            must_have_keyword=record.must_contain_keyword(keywords) if keywords else False,
        )


# ---------------------------------------------------------------------------
# Theorem 4.1 — topic keyword pruning
# ---------------------------------------------------------------------------
def topic_keyword_prune(left: RecordSynopsis, right: RecordSynopsis,
                        keywords: FrozenSet[str]) -> bool:
    """True when the pair can be pruned because no instance contains a keyword."""
    if not keywords:
        return False
    return not (left.may_have_keyword or right.may_have_keyword)


# ---------------------------------------------------------------------------
# Lemma 4.1 — similarity upper bound via token-set sizes
# ---------------------------------------------------------------------------
def similarity_upper_bound_by_size(left: RecordSynopsis,
                                   right: RecordSynopsis) -> float:
    """Sum over attributes of the token-size similarity upper bounds."""
    total = 0.0
    for attribute in left.schema:
        total += attribute_similarity_upper_bound(
            left.token_size_bounds[attribute], right.token_size_bounds[attribute])
    return total


# ---------------------------------------------------------------------------
# Lemma 4.2 — similarity upper bound via a pivot tuple
# ---------------------------------------------------------------------------
def min_attribute_distance(left_bounds: Tuple[float, float],
                           right_bounds: Tuple[float, float]) -> float:
    """``min_dist`` of Lemma 4.2 from per-attribute pivot-distance bounds."""
    left_low, left_high = left_bounds
    right_low, right_high = right_bounds
    if left_low > right_high:
        return left_low - right_high
    if right_low > left_high:
        return right_low - left_high
    return 0.0


def similarity_upper_bound_by_pivot(left: RecordSynopsis, right: RecordSynopsis,
                                    pivot_index: int = 0) -> float:
    """``d - Σ_k min_dist(r_i[A_k], r_j[A_k])`` (Lemma 4.2)."""
    schema = left.schema
    total_min_distance = 0.0
    for attribute in schema:
        left_bounds = left.distance_bounds[attribute]
        right_bounds = right.distance_bounds[attribute]
        index = min(pivot_index, len(left_bounds) - 1, len(right_bounds) - 1)
        total_min_distance += min_attribute_distance(left_bounds[index],
                                                     right_bounds[index])
    return len(schema) - total_min_distance


def similarity_upper_bound(left: RecordSynopsis, right: RecordSynopsis) -> float:
    """The tighter of the token-size and pivot-based similarity upper bounds.

    All auxiliary pivots are consulted; each yields a valid bound, so the
    minimum over pivots (and over the size bound) is still a valid bound.
    """
    best = similarity_upper_bound_by_size(left, right)
    pivot_counts = min(
        min(len(bounds) for bounds in left.distance_bounds.values()),
        min(len(bounds) for bounds in right.distance_bounds.values()),
    )
    for pivot_index in range(pivot_counts):
        best = min(best, similarity_upper_bound_by_pivot(left, right, pivot_index))
    return best


def similarity_prune(left: RecordSynopsis, right: RecordSynopsis,
                     gamma: float) -> bool:
    """Theorem 4.2: prune when the similarity upper bound is at most ``γ``."""
    return similarity_upper_bound(left, right) <= gamma


# ---------------------------------------------------------------------------
# Lemma 4.3 / Theorem 4.3 — Paley–Zygmund probability upper bound
# ---------------------------------------------------------------------------
def paley_zygmund_bound_from_totals(margin: float,
                                    expectation_left: float,
                                    lb_left: float, ub_left: float,
                                    expectation_right: float,
                                    lb_right: float, ub_right: float) -> float:
    """Lemma 4.3 bound from pre-computed per-tuple distance totals.

    Shared by the scalar :func:`probability_upper_bound` and the vectorized
    kernel (which pre-computes the totals columnarly and calls this for the
    few candidate lanes whose intervals are disjoint), so both paths perform
    the identical float operations.
    """

    def bound(expect_far: float, expect_near: float,
              ub_far: float, lb_near: float) -> Optional[float]:
        gap = expect_far - expect_near
        spread = ub_far - lb_near
        if gap <= 0 or spread <= 0:
            return None
        theta = margin / gap
        if not 0.0 <= theta <= 1.0:
            return None
        return 1.0 - (1.0 - theta) ** 2 * (gap / spread)

    if lb_left >= ub_right:
        value = bound(expectation_left, expectation_right, ub_left, lb_right)
        if value is not None:
            return max(0.0, min(1.0, value))
    if lb_right >= ub_left:
        value = bound(expectation_right, expectation_left, ub_right, lb_left)
        if value is not None:
            return max(0.0, min(1.0, value))
    return 1.0


def probability_upper_bound(left: RecordSynopsis, right: RecordSynopsis,
                            gamma: float, pivot_index: int = 0) -> float:
    """Paley–Zygmund-based upper bound of the TER-iDS probability (Lemma 4.3)."""
    dimensionality = len(left.schema)
    margin = dimensionality - gamma

    expectation_left = left.expected_total_distance(pivot_index)
    expectation_right = right.expected_total_distance(pivot_index)
    lb_left, ub_left = left.total_distance_bounds(pivot_index)
    lb_right, ub_right = right.total_distance_bounds(pivot_index)
    return paley_zygmund_bound_from_totals(
        margin, expectation_left, lb_left, ub_left,
        expectation_right, lb_right, ub_right)


def probability_prune(left: RecordSynopsis, right: RecordSynopsis,
                      gamma: float, alpha: float) -> bool:
    """Theorem 4.3: prune when the probability upper bound is at most ``α``."""
    return probability_upper_bound(left, right, gamma) <= alpha


# ---------------------------------------------------------------------------
# Theorem 4.4 — instance-pair-level pruning (delegated to matching module)
# ---------------------------------------------------------------------------
def instance_level_verdict(left: RecordSynopsis, right: RecordSynopsis,
                           keywords: FrozenSet[str], gamma: float,
                           alpha: float) -> Tuple[float, bool, int]:
    """Exact probability with Theorem 4.4 early termination."""
    return ter_ids_probability_with_cutoff(left.record, right.record,
                                           keywords, gamma, alpha)


@dataclass
class PruningPipeline:
    """Applies the four strategies in order and records their pruning power."""

    keywords: FrozenSet[str]
    gamma: float
    alpha: float
    use_topic: bool = True
    use_similarity: bool = True
    use_probability: bool = True
    use_instance: bool = True
    stats: PruningStats = field(default_factory=PruningStats)

    def evaluate_pair(self, left: RecordSynopsis,
                      right: RecordSynopsis) -> Tuple[bool, float]:
        """Decide whether a candidate pair is a TER-iDS answer.

        Returns ``(is_match, probability_estimate)``.  The probability is
        exact for pairs that reach the refinement step and a bound otherwise.
        """
        self.stats.pairs_considered += 1

        if self.use_topic and topic_keyword_prune(left, right, self.keywords):
            self.stats.pruned_by_topic += 1
            return False, 0.0

        if self.use_similarity and similarity_prune(left, right, self.gamma):
            self.stats.pruned_by_similarity += 1
            return False, 0.0

        if self.use_probability and probability_prune(left, right, self.gamma,
                                                      self.alpha):
            self.stats.pruned_by_probability += 1
            return False, 0.0

        if self.use_instance:
            probability, is_match, pairs_checked = instance_level_verdict(
                left, right, self.keywords, self.gamma, self.alpha)
            total_pairs = (len(left.record.instances())
                           * len(right.record.instances()))
            if not is_match and pairs_checked < total_pairs:
                self.stats.pruned_by_instance += 1
                return False, probability
        else:
            from repro.core.matching import ter_ids_probability

            probability = ter_ids_probability(left.record, right.record,
                                              self.keywords, self.gamma)
            is_match = probability > self.alpha

        if is_match:
            self.stats.refined_matches += 1
        else:
            self.stats.refined_non_matches += 1
        return is_match, probability


# ---------------------------------------------------------------------------
# Packed columnar synopses + the vectorized pruning kernel
# ---------------------------------------------------------------------------
#: Attribute under which the packed block is cached on a synopsis (mirrors
#: the instance-profile cache of :mod:`repro.runtime.evaluation`).
_PACKED_ATTR = "_packed_synopsis"


@dataclass
class PackedSynopsis:
    """Columnar numpy mirror of one :class:`RecordSynopsis`.

    The per-attribute dicts of the dataclass are flattened into dense
    ``float64`` arrays in schema order so that a whole candidate list can be
    evaluated with a handful of array operations:

    * ``dist_lb`` / ``dist_ub`` / ``dist_exp`` — shape ``(d, P)`` where ``P``
      is the maximum pivot count over the attributes; attributes with fewer
      pivots are edge-padded (replicating their last pivot, matching the
      ``min(pivot_index, len - 1)`` clamping of the scalar accessors);
    * ``tok_min`` / ``tok_max`` — shape ``(d,)`` token-size bounds;
    * ``may_have_keyword`` — the Theorem 4.1 flag;
    * ``pivot_limit`` — the number of *real* (un-padded) pivots shared by
      every attribute, i.e. the exact pivot range the scalar
      :func:`similarity_upper_bound` iterates;
    * ``total_exp0`` / ``total_lb0`` / ``total_ub0`` — the main-pivot
      distance totals of Lemma 4.3, pre-accumulated in the scalar methods'
      exact float order (they depend only on the record, not the pair).
    """

    dist_lb: "object"
    dist_ub: "object"
    dist_exp: "object"
    tok_min: "object"
    tok_max: "object"
    may_have_keyword: bool
    pivot_limit: int
    total_exp0: float
    total_lb0: float
    total_ub0: float


def pack_synopsis(synopsis: RecordSynopsis) -> "PackedSynopsis":
    """Build the packed columnar block of one synopsis (numpy required)."""
    if _np is None:  # pragma: no cover - callers gate on HAS_NUMPY
        raise RuntimeError("numpy is required to pack synopses")
    schema = synopsis.schema
    dimensionality = len(schema)
    bounds = [synopsis.distance_bounds[name] for name in schema]
    expectations = [synopsis.distance_expectations[name] for name in schema]
    counts = [len(per_attribute) for per_attribute in bounds]
    if min(counts) < 1:
        raise ValueError("cannot pack a synopsis with a pivot-less attribute")
    pivot_width = max(counts)
    dist_lb = _np.empty((dimensionality, pivot_width))
    dist_ub = _np.empty((dimensionality, pivot_width))
    dist_exp = _np.empty((dimensionality, pivot_width))
    for row, (per_attribute, per_expectation, count) in enumerate(
            zip(bounds, expectations, counts)):
        for column in range(pivot_width):
            index = column if column < count else count - 1
            low, high = per_attribute[index]
            dist_lb[row, column] = low
            dist_ub[row, column] = high
            dist_exp[row, column] = per_expectation[index]
    tok = [synopsis.token_size_bounds[name] for name in schema]
    # Main-pivot totals in the exact accumulation order of
    # ``expected_total_distance`` / ``total_distance_bounds``.
    total_exp0 = 0.0
    total_lb0 = 0.0
    total_ub0 = 0.0
    for per_attribute, per_expectation in zip(bounds, expectations):
        low, high = per_attribute[0]
        total_exp0 += per_expectation[0]
        total_lb0 += low
        total_ub0 += high
    return PackedSynopsis(
        dist_lb=dist_lb,
        dist_ub=dist_ub,
        dist_exp=dist_exp,
        tok_min=_np.array([pair[0] for pair in tok], dtype=_np.float64),
        tok_max=_np.array([pair[1] for pair in tok], dtype=_np.float64),
        may_have_keyword=synopsis.may_have_keyword,
        pivot_limit=min(counts),
        total_exp0=total_exp0,
        total_lb0=total_lb0,
        total_ub0=total_ub0,
    )


def ensure_packed(synopsis: RecordSynopsis) -> Optional["PackedSynopsis"]:
    """The synopsis' packed block, built once and cached on the object.

    Returns ``None`` when numpy is unavailable so callers can fall back to
    the scalar cascade.
    """
    if _np is None:
        return None
    packed = getattr(synopsis, _PACKED_ATTR, None)
    if packed is None:
        packed = pack_synopsis(synopsis)
        setattr(synopsis, _PACKED_ATTR, packed)
    return packed


class PackedStore:
    """A resident, columnar store of packed synopses keyed by (rid, source).

    The ER-grid (main process) and the persistent refinement workers each
    keep one: in-window synopses occupy rows of shared ``(capacity, d, P)``
    arrays so that a candidate list gathers into the kernel's stacked
    matrices with one fancy-indexing operation instead of per-candidate
    restacking.  Rows are recycled through a free list on eviction.
    """

    def __init__(self, arena=None) -> None:
        self._rows: Dict[Tuple[str, str], int] = {}
        #: Fast row lookup by object identity (the hot gather path); entries
        #: are deleted on removal/overwrite so recycled ids can never alias.
        self._rows_by_id: Dict[int, int] = {}
        self._objects: List[Optional[RecordSynopsis]] = []
        self._free: List[int] = []
        #: Arena-backed stores defer row recycling to the next epoch: a row
        #: freed mid-batch may still be referenced by in-flight worker
        #: orders, so it must not be rewritten until ``begin_epoch``.
        self._pending_free: List[int] = []
        self._arena = arena
        self._shape: Optional[Tuple[int, int]] = None
        self.dist_lb = None
        self.dist_ub = None
        self.dist_exp = None
        self.tok_min = None
        self.tok_max = None
        self.may_kw = None
        self.limits = None
        #: ``(capacity, 3)`` main-pivot totals: ``exp0, lb0, ub0`` columns.
        self.totals = None

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def arena(self):
        """The shared-memory arena backing the arrays (``None`` in-process)."""
        return self._arena

    def begin_epoch(self) -> None:
        """Release rows freed last epoch for reuse (arena-backed stores)."""
        if self._pending_free:
            self._free.extend(self._pending_free)
            del self._pending_free[:]

    def localize(self) -> None:
        """Copy the arrays out of the arena into plain process memory.

        Called before the arena's segments are unlinked so the store keeps
        working (e.g. an engine that continues serially after its pool
        closed).
        """
        if self._arena is None:
            return
        for name in ("dist_lb", "dist_ub", "dist_exp", "tok_min", "tok_max",
                     "may_kw", "limits", "totals"):
            array = getattr(self, name)
            if array is not None:
                setattr(self, name, _np.array(array))
        self._arena = None
        self.begin_epoch()

    def _grow(self, capacity: int) -> None:
        dimensionality, pivot_width = self._shape  # type: ignore[misc]
        if self._arena is not None:
            arrays = self._arena.rebuild([
                ("dist_lb", (capacity, dimensionality, pivot_width), "f8"),
                ("dist_ub", (capacity, dimensionality, pivot_width), "f8"),
                ("dist_exp", (capacity, dimensionality, pivot_width), "f8"),
                ("tok_min", (capacity, dimensionality), "f8"),
                ("tok_max", (capacity, dimensionality), "f8"),
                ("totals", (capacity, 3), "f8"),
                ("may_kw", (capacity,), "?"),
                ("limits", (capacity,), "i8"),
            ])
            for name, array in arrays.items():
                setattr(self, name, array)
            return
        def expand(array, shape):
            fresh = _np.zeros(shape)
            if array is not None:
                fresh[: array.shape[0]] = array
            return fresh
        self.dist_lb = expand(self.dist_lb, (capacity, dimensionality, pivot_width))
        self.dist_ub = expand(self.dist_ub, (capacity, dimensionality, pivot_width))
        self.dist_exp = expand(self.dist_exp, (capacity, dimensionality, pivot_width))
        self.tok_min = expand(self.tok_min, (capacity, dimensionality))
        self.tok_max = expand(self.tok_max, (capacity, dimensionality))
        self.totals = expand(self.totals, (capacity, 3))
        fresh_may = _np.zeros(capacity, dtype=bool)
        fresh_limits = _np.zeros(capacity, dtype=_np.int64)
        if self.may_kw is not None:
            fresh_may[: self.may_kw.shape[0]] = self.may_kw
            fresh_limits[: self.limits.shape[0]] = self.limits
        self.may_kw = fresh_may
        self.limits = fresh_limits

    def insert(self, synopsis: RecordSynopsis) -> Optional[int]:
        """Register (or refresh) one synopsis; ``None`` if it does not fit.

        A synopsis whose packed block has a different ``(d, P)`` shape than
        the store (only possible when synopses from different pivot tables
        are mixed) is simply not stored — the kernel falls back to stacking
        such candidates individually.
        """
        if _np is None:
            return None
        packed = ensure_packed(synopsis)
        if self._shape is None:
            self._shape = packed.dist_lb.shape
            self._grow(64)
        elif packed.dist_lb.shape != self._shape:
            self.remove(synopsis.rid, synopsis.source)
            return None
        key = (synopsis.rid, synopsis.source)
        row = self._rows.get(key)
        if row is None:
            if self._free:
                row = self._free.pop()
            else:
                # Allocated rows are exactly 0 .. len(rows) + len(free) +
                # len(pending_free) - 1; with an empty free list the next
                # fresh row is past all of them (pending rows are still
                # live for in-flight readers and must not be reused yet).
                row = len(self._rows) + len(self._pending_free)
                if row >= self.may_kw.shape[0]:
                    self._grow(max(64, 2 * self.may_kw.shape[0]))
            self._rows[key] = row
        while len(self._objects) <= row:
            self._objects.append(None)
        previous = self._objects[row]
        if previous is not None:
            self._rows_by_id.pop(id(previous), None)
        self._objects[row] = synopsis
        self._rows_by_id[id(synopsis)] = row
        self.dist_lb[row] = packed.dist_lb
        self.dist_ub[row] = packed.dist_ub
        self.dist_exp[row] = packed.dist_exp
        self.tok_min[row] = packed.tok_min
        self.tok_max[row] = packed.tok_max
        self.may_kw[row] = packed.may_have_keyword
        self.limits[row] = packed.pivot_limit
        self.totals[row, 0] = packed.total_exp0
        self.totals[row, 1] = packed.total_lb0
        self.totals[row, 2] = packed.total_ub0
        return row

    def remove(self, rid: str, source: str) -> bool:
        row = self._rows.pop((rid, source), None)
        if row is None:
            return False
        previous = self._objects[row]
        if previous is not None:
            self._rows_by_id.pop(id(previous), None)
        self._objects[row] = None
        if self._arena is not None:
            self._pending_free.append(row)
        else:
            self._free.append(row)
        return True

    def row_for(self, synopsis: RecordSynopsis) -> Optional[int]:
        """The row of exactly this synopsis object (``None`` when absent).

        Identity (not just key equality) decides, so a row recycled within
        the same batch — the stored tuple evicted and its slot reused — can
        never be served for a stale candidate reference.
        """
        return self._rows_by_id.get(id(synopsis))


def _stack_candidates(candidates: Sequence[RecordSynopsis],
                      store: Optional[PackedStore]):
    """Stacked kernel inputs for one candidate list.

    Gathers rows from the resident store when every candidate is stored
    (the steady-state path: one fancy-indexing copy); otherwise stacks the
    per-synopsis packed blocks, edge-padding to a common pivot width.
    """
    if store is not None:
        rows = [store.row_for(candidate) for candidate in candidates]
        if all(row is not None for row in rows):
            index = _np.fromiter(rows, dtype=_np.intp, count=len(rows))
            return (store.dist_lb[index], store.dist_ub[index],
                    store.tok_min[index], store.tok_max[index],
                    store.may_kw[index], store.limits[index],
                    store.totals[index])
    packed = [ensure_packed(candidate) for candidate in candidates]
    width = max(block.dist_lb.shape[1] for block in packed)

    def pad(array):
        missing = width - array.shape[1]
        if missing == 0:
            return array
        return _np.pad(array, ((0, 0), (0, missing)), mode="edge")

    dist_lb = _np.stack([pad(block.dist_lb) for block in packed])
    dist_ub = _np.stack([pad(block.dist_ub) for block in packed])
    tok_min = _np.stack([block.tok_min for block in packed])
    tok_max = _np.stack([block.tok_max for block in packed])
    may_kw = _np.fromiter((block.may_have_keyword for block in packed),
                          dtype=bool, count=len(packed))
    limits = _np.fromiter((block.pivot_limit for block in packed),
                          dtype=_np.int64, count=len(packed))
    totals = _np.array([(block.total_exp0, block.total_lb0, block.total_ub0)
                        for block in packed])
    return dist_lb, dist_ub, tok_min, tok_max, may_kw, limits, totals


def _sequential_sum(stacked, axis_length: int):
    """Left-to-right float accumulation over the attribute axis.

    Replicates the scalar loops' ``total = 0.0; total += term`` operation
    order element-for-element (numpy's ``sum`` may use pairwise summation,
    which can differ in the last ulp), keeping the kernel bit-identical to
    the scalar bounds.
    """
    total = _np.zeros(stacked.shape[:1] + stacked.shape[2:])
    for attribute in range(axis_length):
        total = total + stacked[:, attribute]
    return total


def batch_cell_scan(query_lb, query_ub, cell_lb, cell_ub):
    """Lower-bound L1 distances of one query rectangle to many grid cells.

    ``query_lb`` / ``query_ub`` are the ``(d,)`` per-attribute main-pivot
    interval bounds of the query tuple; ``cell_lb`` / ``cell_ub`` are the
    ``(n, d)`` aggregate distance intervals of ``n`` cells.  Returns the
    ``(n,)`` array of ``Σ_k min_dist`` totals — the quantity
    ``ERGrid._cell_min_distance`` computes per cell — evaluated for every
    cell in a few array operations.  Bit-identical to the scalar walk: the
    ``min_attribute_distance`` branches collapse to a max-of-three (only one
    of the two differences can be positive for disjoint intervals, and both
    are non-positive for overlapping ones), and the per-attribute totals are
    accumulated left-to-right like the scalar loop.
    """
    if _np is None:  # pragma: no cover - callers gate on HAS_NUMPY
        raise RuntimeError("numpy is required for batch_cell_scan")
    per_attribute = _np.maximum(
        0.0, _np.maximum(query_lb[_np.newaxis, :] - cell_ub,
                         cell_lb - query_ub[_np.newaxis, :]))
    return _sequential_sum(per_attribute, per_attribute.shape[1])


def batch_prune(query: RecordSynopsis,
                candidates: Sequence[RecordSynopsis],
                keywords: FrozenSet[str], gamma: float, alpha: float,
                use_topic: bool = True, use_similarity: bool = True,
                use_probability: bool = True,
                store: Optional[PackedStore] = None):
    """Theorems 4.1–4.3 for one query against its whole candidate list.

    Returns ``(alive, pruned_topic, pruned_similarity, pruned_probability)``
    where ``alive`` is the boolean survivor mask over ``candidates`` (in
    order) and the counters attribute each pruned pair to the first strategy
    that eliminated it, exactly like the scalar cascade.  Survivor-for-
    survivor and count-for-count identical to evaluating
    :func:`topic_keyword_prune` / :func:`similarity_prune` /
    :func:`probability_prune` per pair: the bound arithmetic performs the
    same IEEE operations on the same operands, only batched.
    """
    if _np is None:
        raise RuntimeError("numpy is required for batch_prune")
    return batch_prune_stacked(ensure_packed(query),
                               _stack_candidates(candidates, store),
                               len(candidates), keywords, gamma, alpha,
                               use_topic=use_topic,
                               use_similarity=use_similarity,
                               use_probability=use_probability)


def batch_prune_stacked(query_packed: "PackedSynopsis", stacked, count: int,
                        keywords: FrozenSet[str], gamma: float, alpha: float,
                        use_topic: bool = True, use_similarity: bool = True,
                        use_probability: bool = True):
    """The :func:`batch_prune` cascade over pre-stacked kernel inputs.

    ``stacked`` is the 7-tuple :func:`_stack_candidates` produces — which a
    shared-memory worker gathers directly from the mapped packed arena with
    the identical fancy-indexing copy, so both callers feed the kernel the
    same bytes.
    """
    (cand_lb, cand_ub, cand_tok_min, cand_tok_max,
     cand_may_kw, cand_limits, cand_totals) = stacked

    alive = _np.ones(count, dtype=bool)
    pruned_topic = 0
    pruned_similarity = 0
    pruned_probability = 0

    # --- Theorem 4.1: topic keyword pruning --------------------------------
    if use_topic and keywords and not query_packed.may_have_keyword:
        topic_mask = ~cand_may_kw
        pruned_topic = int(_np.count_nonzero(topic_mask))
        alive &= ~topic_mask

    dimensionality = query_packed.dist_lb.shape[0]

    # --- Theorem 4.2: similarity upper bound (Lemmas 4.1 + 4.2) ------------
    if use_similarity and alive.any():
        per_attribute = attribute_similarity_upper_bound_batch(
            query_packed.tok_min, query_packed.tok_max,
            cand_tok_min, cand_tok_max)
        size_bound = _sequential_sum(per_attribute, dimensionality)

        width = min(query_packed.dist_lb.shape[1], cand_lb.shape[2])
        q_lb = query_packed.dist_lb[_np.newaxis, :, :width]
        q_ub = query_packed.dist_ub[_np.newaxis, :, :width]
        c_lb = cand_lb[:, :, :width]
        c_ub = cand_ub[:, :, :width]
        # min_attribute_distance: only one of the two differences can be
        # positive (disjoint intervals), so the max-of-three formulation is
        # bit-identical to the scalar branches.
        min_distance = _np.maximum(0.0, _np.maximum(q_lb - c_ub, c_lb - q_ub))
        pivot_bounds = float(dimensionality) - _sequential_sum(
            min_distance, dimensionality)
        # The scalar loop consults exactly min(left, right) pivots per pair;
        # mask the padded / extra columns out of the running minimum.  With
        # one shared pivot table every limit covers the full width and the
        # masking is skipped.
        limits = _np.minimum(cand_limits, query_packed.pivot_limit)
        if int(limits.min(initial=width)) < width:
            invalid = (_np.arange(width)[_np.newaxis, :]
                       >= limits[:, _np.newaxis])
            pivot_bounds = _np.where(invalid, _np.inf, pivot_bounds)
        best = _np.minimum(size_bound, pivot_bounds.min(axis=1))
        similarity_mask = alive & (best <= gamma)
        pruned_similarity = int(_np.count_nonzero(similarity_mask))
        alive &= ~similarity_mask

    # --- Theorem 4.3: Paley–Zygmund probability upper bound ----------------
    if use_probability and alive.any():
        margin = dimensionality - gamma
        query_exp = query_packed.total_exp0
        query_lb = query_packed.total_lb0
        query_ub = query_packed.total_ub0
        cand_exp0 = cand_totals[:, 0]
        cand_lb0 = cand_totals[:, 1]
        cand_ub0 = cand_totals[:, 2]
        # Overlapping total-distance intervals fall through to a bound of
        # 1.0 in the scalar code; only the disjoint lanes need the exact
        # Lemma 4.3 arithmetic, which runs through the shared scalar helper
        # so that even the libm-pow squaring matches bit-for-bit.
        disjoint = (query_lb >= cand_ub0) | (cand_lb0 >= query_ub)
        probability_mask = alive & _np.full(count, 1.0 <= alpha, dtype=bool)
        for lane in _np.nonzero(alive & disjoint)[0]:
            value = paley_zygmund_bound_from_totals(
                margin, query_exp, query_lb, query_ub,
                float(cand_exp0[lane]), float(cand_lb0[lane]),
                float(cand_ub0[lane]))
            probability_mask[lane] = value <= alpha
        pruned_probability = int(_np.count_nonzero(probability_mask))
        alive &= ~probability_mask

    return alive, pruned_topic, pruned_similarity, pruned_probability
