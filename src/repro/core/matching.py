"""TER-iDS matching semantics: the topic predicate and Equation (2).

The TER-iDS probability of a pair of imputed tuples is the total probability
mass of instance pairs that (a) contain at least one query keyword in either
instance and (b) have tuple similarity strictly greater than the similarity
threshold ``γ``::

    Pr(r_i, r_j) = Σ_m Σ_m'  p_m · p_m' · χ((ϖ(r_im,K) ∨ ϖ(r_jm',K)) ∧ sim > γ)

A pair is a TER-iDS answer when this probability exceeds the probabilistic
threshold ``α``.  :func:`ter_ids_probability` evaluates the sum exactly;
:func:`ter_ids_probability_with_cutoff` additionally implements the
instance-pair-level early termination of Theorem 4.4 (both for pruning and
for early acceptance once the accumulated mass already exceeds ``α``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.core.similarity import record_similarity
from repro.core.tuples import ImputedRecord, Instance, Record, Schema


def normalise_keywords(keywords: Iterable[str]) -> FrozenSet[str]:
    """Lower-case and deduplicate a keyword set ``K``."""
    return frozenset(keyword.lower() for keyword in keywords if keyword)


def topic_predicate(record: Record, keywords: FrozenSet[str], schema: Schema) -> bool:
    """ϖ(r, K): true when the record's tokens contain at least one keyword."""
    if not keywords:
        return False
    tokens = record.all_tokens(schema)
    return any(keyword in tokens for keyword in keywords)


def instance_pair_matches(
    left: Instance,
    right: Instance,
    keywords: FrozenSet[str],
    gamma: float,
    schema: Schema,
) -> bool:
    """χ(...) for one instance pair: topic constraint AND sim > γ."""
    if keywords:
        has_topic = (
            topic_predicate(left.record, keywords, schema)
            or topic_predicate(right.record, keywords, schema)
        )
        if not has_topic:
            return False
    return record_similarity(left.record, right.record, schema) > gamma


def ter_ids_probability(
    left: ImputedRecord,
    right: ImputedRecord,
    keywords: FrozenSet[str],
    gamma: float,
) -> float:
    """Exact TER-iDS probability (Equation (2)) of an imputed tuple pair."""
    schema = left.schema
    total = 0.0
    for left_instance in left.instances():
        for right_instance in right.instances():
            if instance_pair_matches(left_instance, right_instance,
                                     keywords, gamma, schema):
                total += left_instance.probability * right_instance.probability
    return total


def ter_ids_probability_with_cutoff(
    left: ImputedRecord,
    right: ImputedRecord,
    keywords: FrozenSet[str],
    gamma: float,
    alpha: float,
) -> Tuple[float, bool, int]:
    """Equation (2) with Theorem 4.4 early termination.

    Iterates over instance pairs in decreasing probability-mass order,
    keeping a lower bound (accumulated matching mass) and an upper bound
    (accumulated matching mass plus the unexplored mass).  Returns a tuple
    ``(probability_estimate, is_match, pairs_checked)``:

    * when the lower bound exceeds ``α`` the pair is accepted early;
    * when the upper bound drops to ``α`` or below the pair is pruned early
      (this is exactly Theorem 4.4);
    * otherwise the exact probability is returned.
    """
    schema = left.schema
    left_instances = sorted(left.instances(), key=lambda i: -i.probability)
    right_instances = sorted(right.instances(), key=lambda i: -i.probability)

    matched_mass = 0.0
    explored_mass = 0.0
    pairs_checked = 0
    for left_instance in left_instances:
        for right_instance in right_instances:
            pair_mass = left_instance.probability * right_instance.probability
            if instance_pair_matches(left_instance, right_instance,
                                     keywords, gamma, schema):
                matched_mass += pair_mass
            explored_mass += pair_mass
            pairs_checked += 1
            if matched_mass > alpha:
                return matched_mass, True, pairs_checked
            upper_bound = matched_mass + max(0.0, 1.0 - explored_mass)
            if upper_bound <= alpha:
                return upper_bound, False, pairs_checked
    return matched_mass, matched_mass > alpha, pairs_checked


@dataclass(frozen=True)
class MatchPair:
    """One TER-iDS answer: a pair of records deemed to be the same entity."""

    left_rid: str
    left_source: str
    right_rid: str
    right_source: str
    probability: float
    timestamp: int = -1

    def key(self) -> Tuple[Tuple[str, str], Tuple[str, str]]:
        """Order-independent identity of the pair."""
        left = (self.left_source, self.left_rid)
        right = (self.right_source, self.right_rid)
        return (left, right) if left <= right else (right, left)

    def involves(self, rid: str, source: str) -> bool:
        """True when one endpoint of the pair is the given record."""
        return ((self.left_rid == rid and self.left_source == source)
                or (self.right_rid == rid and self.right_source == source))

    @classmethod
    def from_records(cls, left: Record, right: Record, probability: float,
                     timestamp: int = -1) -> "MatchPair":
        return cls(left_rid=left.rid, left_source=left.source,
                   right_rid=right.rid, right_source=right.source,
                   probability=probability, timestamp=timestamp)


@dataclass
class EntityResultSet:
    """The maintained entity set ``ES`` of current TER-iDS answers.

    The engine adds pairs when new tuples arrive and removes every pair that
    involves an expired tuple (Algorithm 2, lines 4–5).
    """

    _pairs: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self._pairs)

    def __iter__(self):
        return iter(self._pairs.values())

    def __contains__(self, pair: object) -> bool:
        if not isinstance(pair, MatchPair):
            return False
        return pair.key() in self._pairs

    def add(self, pair: MatchPair) -> None:
        """Insert or refresh a match pair."""
        self._pairs[pair.key()] = pair

    def extend(self, pairs: Iterable[MatchPair]) -> None:
        for pair in pairs:
            self.add(pair)

    def remove_record(self, rid: str, source: str) -> int:
        """Drop every pair involving the given (expired) record.

        Returns the number of removed pairs.
        """
        to_remove = [key for key, pair in self._pairs.items()
                     if pair.involves(rid, source)]
        for key in to_remove:
            del self._pairs[key]
        return len(to_remove)

    def pairs(self) -> List[MatchPair]:
        """Snapshot of the current answer set."""
        return list(self._pairs.values())

    def pair_keys(self) -> set:
        """Set of order-independent pair identities (for metric computation)."""
        return set(self._pairs.keys())

    def clear(self) -> None:
        self._pairs.clear()
