"""Core TER-iDS machinery: data model, similarity, pruning and the engine."""

from repro.core.config import TERiDSConfig
from repro.core.engine import EngineReport, TERiDSEngine
from repro.core.heterogeneous import (
    HeterogeneousMatcher,
    heterogeneous_probability,
    heterogeneous_similarity,
)
from repro.core.time_window import TimeBasedWindow, TimeBatchedStream, run_time_based
from repro.core.matching import (
    EntityResultSet,
    MatchPair,
    normalise_keywords,
    ter_ids_probability,
    ter_ids_probability_with_cutoff,
    topic_predicate,
)
from repro.core.pruning import (
    PruningPipeline,
    PruningStats,
    RecordSynopsis,
    probability_upper_bound,
    similarity_upper_bound,
    similarity_upper_bound_by_pivot,
    similarity_upper_bound_by_size,
    topic_keyword_prune,
)
from repro.core.similarity import (
    jaccard_distance,
    jaccard_similarity,
    record_distance,
    record_similarity,
    text_distance,
    text_similarity,
    tokenize,
)
from repro.core.stream import (
    IncompleteDataStream,
    SlidingWindow,
    StreamSet,
    build_stream,
)
from repro.core.tuples import ImputedRecord, Instance, Record, Schema, make_records

__all__ = [
    "EngineReport",
    "EntityResultSet",
    "HeterogeneousMatcher",
    "TimeBasedWindow",
    "TimeBatchedStream",
    "heterogeneous_probability",
    "heterogeneous_similarity",
    "run_time_based",
    "ImputedRecord",
    "IncompleteDataStream",
    "Instance",
    "MatchPair",
    "PruningPipeline",
    "PruningStats",
    "Record",
    "RecordSynopsis",
    "Schema",
    "SlidingWindow",
    "StreamSet",
    "TERiDSConfig",
    "TERiDSEngine",
    "build_stream",
    "jaccard_distance",
    "jaccard_similarity",
    "make_records",
    "normalise_keywords",
    "probability_upper_bound",
    "record_distance",
    "record_similarity",
    "similarity_upper_bound",
    "similarity_upper_bound_by_pivot",
    "similarity_upper_bound_by_size",
    "ter_ids_probability",
    "ter_ids_probability_with_cutoff",
    "text_distance",
    "text_similarity",
    "tokenize",
    "topic_keyword_prune",
    "topic_predicate",
]
