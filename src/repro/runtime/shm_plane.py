"""The zero-copy shared-memory columnar plane of the sharded ER phase.

The resident columnar state of the grid — the
:class:`~repro.core.pruning.PackedStore` synopsis blocks and the
:class:`~repro.indexes.er_grid.CellStore` cell aggregates — lives in
``multiprocessing.shared_memory`` segments owned by the main process.
Worker processes *map* the blocks read-only instead of receiving per-batch
broadcast deltas and rebuilding numpy arrays per process, so the bytes
crossing the process boundary stop scaling with the window (and with the
worker count): only the op journal, routed per-record deltas and matches +
counters are pickled.

Single-writer / epoch protocol
------------------------------
The main process is the only writer.  Each micro-batch is one *epoch*:

1. the main process applies every grid mutation of the batch (writing the
   columnar rows in place, growing the arenas into a new *generation*
   segment when capacity is exhausted);
2. it bumps the epoch counter in each segment's header and only then ships
   the lookup orders;
3. workers attach the advertised generation read-only, validate the header
   (generation **and** epoch) and evaluate; they read only between order
   receipt and response, while the writer is blocked gathering responses.

Bit-identity to the golden serial reference is preserved by construction:
the mapped rows are the very bytes the main process wrote, and the workers
run the same kernels over them.

Segment lifecycle
-----------------
Segments are named ``terids-<pid>-…`` and tracked in a module registry so
that pool close, ``atexit`` and ``SIGTERM`` can unlink everything the
*creating* process owns (forked workers inherit the registry but are
pid-guarded out of cleanup).  Reader attaches deliberately stay registered
with the stdlib ``resource_tracker`` (see :func:`attach_segment`) so its
"leaked shared_memory" false positive never fires.  ``numpy`` views pin a
mapping: a segment retired while views are
alive is unlinked immediately (no ``/dev/shm`` leak) and its ``close()`` is
retried on later sweeps.
"""

from __future__ import annotations

import atexit
import itertools
import os
import signal
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.pruning import HAS_NUMPY, PackedSynopsis

if HAS_NUMPY:
    import numpy as _np
else:  # pragma: no cover - exercised only on numpy-less installs
    _np = None

try:
    from multiprocessing import shared_memory
    _HAS_SHM_MODULE = True
except ImportError:  # pragma: no cover - platforms without shm support
    shared_memory = None
    _HAS_SHM_MODULE = False

#: Whether the shared-memory plane can run at all: the columnar kernels
#: need numpy and the platform must provide POSIX shared memory.
HAS_SHM = bool(HAS_NUMPY and _HAS_SHM_MODULE)


class ShmGenerationError(RuntimeError):
    """A worker attached a segment whose header disagrees with its order.

    Raised on generation mismatch (the view attached a segment that is not
    the advertised rebuild generation) and on epoch mismatch (an order
    arrived for an epoch the writer has not published) — both indicate a
    violated single-writer protocol, never a recoverable race.
    """


# ---------------------------------------------------------------------------
# Segment registry + cleanup (pool close / worker crash / atexit / signal)
# ---------------------------------------------------------------------------
#: Segments created (and therefore owned) by ``_OWNER_PID``.
_LIVE: Dict[str, object] = {}
#: Already-unlinked segments whose ``close()`` hit ``BufferError`` because
#: numpy views still pin the mapping; re-swept opportunistically.
_STALE: List[object] = []
_OWNER_PID: Optional[int] = None
_COUNTER = itertools.count()
_HOOKS_INSTALLED = False

#: Segment-name prefix of the current process (pid-scoped so concurrent
#: test runs and the leak checks can tell their segments apart).
def segment_prefix(pid: Optional[int] = None) -> str:
    return f"terids-{(os.getpid() if pid is None else pid):x}-"


def _segment_name(tag: str, generation: int) -> str:
    return f"{segment_prefix()}{next(_COUNTER):x}-{tag}-g{generation}"


def _cleanup() -> None:
    """Unlink every segment this process owns (atexit / signal path)."""
    if _OWNER_PID != os.getpid():
        # A forked worker inherited the registry: the entries belong to the
        # parent and must not be unlinked from here.
        return
    for name in list(_LIVE):
        _retire_segment(_LIVE[name])
    _sweep_stale()


def _install_hooks() -> None:
    global _HOOKS_INSTALLED, _OWNER_PID
    if _OWNER_PID != os.getpid():
        # First creation in this process (possibly a fork of a creator):
        # drop the inherited view of the parent's registry and claim
        # ownership of what *this* process creates from now on.
        _LIVE.clear()
        del _STALE[:]
        _OWNER_PID = os.getpid()
        _HOOKS_INSTALLED = False
    if _HOOKS_INSTALLED:
        return
    _HOOKS_INSTALLED = True
    atexit.register(_cleanup)
    try:
        if signal.getsignal(signal.SIGTERM) is signal.SIG_DFL:
            def _on_term(signum, frame):  # pragma: no cover - signal path
                _cleanup()
                signal.signal(signal.SIGTERM, signal.SIG_DFL)
                os.kill(os.getpid(), signal.SIGTERM)

            signal.signal(signal.SIGTERM, _on_term)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass


def ensure_tracker() -> None:
    """Start the stdlib ``resource_tracker`` from this process.

    Fork-safety: a worker forked *before* the first segment existed would
    lazily spawn its own private tracker on attach; that tracker sees only
    the attach registrations (the owner's ``unlink`` unregisters with the
    main tracker) and reports spurious "leaked shared_memory" warnings at
    worker exit.  Called before worker processes spawn, so every process
    inherits the one main-process tracker and the register/unregister
    stream stays coherent.
    """
    if not _HAS_SHM_MODULE:  # pragma: no cover - platforms without shm
        return
    try:
        from multiprocessing import resource_tracker
        resource_tracker.ensure_running()
    except Exception:  # pragma: no cover - tracker internals vary
        pass


def create_segment(name: str, size: int):
    """Create one owned segment and register it for cleanup."""
    shm = shared_memory.SharedMemory(name=name, create=True, size=size)
    _install_hooks()
    _LIVE[shm.name] = shm
    return shm


def attach_segment(name: str):
    """Attach an existing segment without claiming ownership.

    The stdlib registers *attached* segments with the ``resource_tracker``
    too — the source of the well-known "leaked shared_memory" false
    positive on reader detach.  The tracker's cache is a *set* keyed by
    name, shared by the creator and every (forked) reader, so the silent
    fix is to leave the attach registration in place: it coalesces with
    the creator's entry, and the owner's eventual ``unlink()`` removes the
    name exactly once.  Unregistering here instead would strip the
    creator's entry and make the later unlink's unregister fail loudly
    inside the tracker process.
    """
    return shared_memory.SharedMemory(name=name)


def _sweep_stale() -> None:
    kept = []
    for shm in _STALE:
        try:
            shm.close()
        except BufferError:
            kept.append(shm)
    _STALE[:] = kept


def _close_quietly(shm) -> None:
    _sweep_stale()
    try:
        shm.close()
    except BufferError:
        # numpy views still reference the buffer; the mapping stays valid
        # (and, once unlinked, leaks nothing) — retry on later sweeps.
        _STALE.append(shm)


def _retire_segment(shm) -> None:
    """Owner-side retirement: unlink now, close when views allow."""
    _LIVE.pop(shm.name, None)
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - double retire
        pass
    _close_quietly(shm)


def _release_segment(shm) -> None:
    """Reader-side detach: close only — the owner unlinks."""
    _close_quietly(shm)


def active_segment_names() -> List[str]:
    """Names of the segments this process currently owns (leak check)."""
    if _OWNER_PID != os.getpid():
        return []
    return sorted(_LIVE)


def scan_dev_shm(pid: Optional[int] = None) -> List[str]:
    """``/dev/shm`` entries carrying this process' segment prefix."""
    prefix = segment_prefix(pid)
    try:
        return sorted(entry for entry in os.listdir("/dev/shm")
                      if entry.startswith(prefix))
    except OSError:  # pragma: no cover - /dev/shm-less platforms
        return []


# ---------------------------------------------------------------------------
# Single-writer arenas + read-only views
# ---------------------------------------------------------------------------
#: Array offsets are 64-byte aligned (cache lines); the first 64 bytes are
#: the header: ``int64 generation`` then ``int64 epoch``.
_ALIGN = 64
_HEADER_BYTES = 64

#: One array spec: ``(name, shape, dtype)``.
ArraySpec = Tuple[str, Tuple[int, ...], object]


class ShmArena:
    """One growable bundle of named arrays in a single owned segment.

    Growth is *resize-by-generation*: a new, larger segment is created
    under a fresh generation-stamped name, the same-named arrays are
    prefix-copied (the exact ``fresh[:n] = old[:n]`` the in-process stores
    perform) and the previous segment is retired.  Readers learn the new
    segment from the :meth:`descriptor` shipped with the next batch.
    """

    def __init__(self, tag: str) -> None:
        self.tag = tag
        self.generation = 0
        self._epoch = 0
        self._shm = None
        self._header = None
        self._arrays: Dict[str, object] = {}
        self._layout: Optional[List[Tuple[str, Tuple[int, ...], str, int]]] = None
        self._size = 0

    @property
    def nbytes(self) -> int:
        """Mapped size of the current generation (0 before first growth)."""
        return self._size if self._shm is not None else 0

    def rebuild(self, specs: Sequence[ArraySpec]) -> Dict[str, object]:
        """Allocate the next generation; prefix-copy the previous arrays."""
        layout: List[Tuple[str, Tuple[int, ...], str, int]] = []
        offset = _HEADER_BYTES
        for name, shape, dtype in specs:
            dt = _np.dtype(dtype)
            count = 1
            for extent in shape:
                count *= int(extent)
            layout.append((name, tuple(int(x) for x in shape), dt.str, offset))
            offset += -(-(count * dt.itemsize) // _ALIGN) * _ALIGN
        self.generation += 1
        shm = create_segment(_segment_name(self.tag, self.generation), offset)
        header = _np.ndarray((2,), dtype=_np.int64, buffer=shm.buf)
        header[0] = self.generation
        header[1] = self._epoch
        arrays: Dict[str, object] = {}
        for name, shape, dtype_str, array_offset in layout:
            arrays[name] = _np.ndarray(shape, dtype=_np.dtype(dtype_str),
                                       buffer=shm.buf, offset=array_offset)
        # Fresh segments are zero pages (ftruncate), matching the
        # ``np.zeros`` the in-process growth path allocates; only the
        # carried-over prefix needs copying.
        for name, array in arrays.items():
            previous = self._arrays.get(name)
            if previous is not None and previous.shape[1:] == array.shape[1:]:
                rows = min(previous.shape[0], array.shape[0])
                array[:rows] = previous[:rows]
        old_shm = self._shm
        self._shm = shm
        self._header = header
        self._arrays = arrays
        self._layout = layout
        self._size = offset
        if old_shm is not None:
            _retire_segment(old_shm)
        return arrays

    def set_epoch(self, epoch: int) -> None:
        """Publish the batch epoch (written strictly before orders ship)."""
        self._epoch = epoch
        if self._header is not None:
            self._header[1] = epoch

    def descriptor(self) -> Optional[Dict]:
        """Attachment recipe for readers (``None`` before first growth)."""
        if self._shm is None:
            return None
        return {"segment": self._shm.name, "generation": self.generation,
                "layout": self._layout, "size": self._size}

    def close(self, unlink: bool = True) -> None:
        shm = self._shm
        self._shm = None
        self._header = None
        self._arrays = {}
        if shm is not None:
            if unlink:
                _retire_segment(shm)
            else:  # pragma: no cover - owner always unlinks in-tree
                _release_segment(shm)


class ShmArenaView:
    """A worker's read-only mapping of one arena generation."""

    def __init__(self) -> None:
        self._shm = None
        self._name: Optional[str] = None
        self._header = None
        self.generation: Optional[int] = None
        self.arrays: Dict[str, object] = {}

    def attach(self, descriptor: Optional[Dict]) -> None:
        """(Re-)attach to the advertised generation; no-op when unchanged."""
        if descriptor is None:
            return
        if self._name == descriptor["segment"]:
            if int(self._header[0]) != descriptor["generation"]:
                raise ShmGenerationError(
                    f"segment {self._name} header holds generation "
                    f"{int(self._header[0])}, order expects "
                    f"{descriptor['generation']}")
            return
        shm = attach_segment(descriptor["segment"])
        header = _np.ndarray((2,), dtype=_np.int64, buffer=shm.buf)
        if int(header[0]) != descriptor["generation"]:
            generation = int(header[0])
            del header
            _release_segment(shm)
            raise ShmGenerationError(
                f"segment {descriptor['segment']} header holds generation "
                f"{generation}, order expects {descriptor['generation']}")
        arrays: Dict[str, object] = {}
        for name, shape, dtype_str, offset in descriptor["layout"]:
            array = _np.ndarray(tuple(shape), dtype=_np.dtype(dtype_str),
                                buffer=shm.buf, offset=offset)
            array.flags.writeable = False
            arrays[name] = array
        previous = self._shm
        self._shm = shm
        self._name = descriptor["segment"]
        self._header = header
        self.generation = descriptor["generation"]
        self.arrays = arrays
        if previous is not None:
            _release_segment(previous)

    def check_epoch(self, epoch: int) -> None:
        """Assert the writer published this order's epoch before it shipped."""
        if self._header is None or int(self._header[1]) != epoch:
            held = None if self._header is None else int(self._header[1])
            raise ShmGenerationError(
                f"segment {self._name} publishes epoch {held}, "
                f"order expects {epoch}")

    def close(self) -> None:
        shm = self._shm
        self._shm = None
        self._name = None
        self._header = None
        self.generation = None
        self.arrays = {}
        if shm is not None:
            _release_segment(shm)


class ShmPlane:
    """The two arenas of the sharded ER phase: packed synopses + cells."""

    def __init__(self) -> None:
        # The plane is constructed before any worker forks: starting the
        # tracker here guarantees the workers inherit it (see
        # ``ensure_tracker``).
        ensure_tracker()
        self.packed = ShmArena("packed")
        self.cells = ShmArena("cells")

    @property
    def nbytes(self) -> int:
        return self.packed.nbytes + self.cells.nbytes

    def set_epoch(self, epoch: int) -> None:
        self.packed.set_epoch(epoch)
        self.cells.set_epoch(epoch)

    def close(self, unlink: bool = True) -> None:
        self.packed.close(unlink=unlink)
        self.cells.close(unlink=unlink)


class PackedPlaneView:
    """Kernel-facing accessor over a mapped packed arena.

    Mirrors the gather the in-process :func:`~repro.core.pruning
    ._stack_candidates` performs against the resident
    :class:`~repro.core.pruning.PackedStore` — one fancy-indexing copy out
    of the mapped arrays — plus the per-row :class:`PackedSynopsis`
    reconstruction for query rows.
    """

    _NAMES = ("dist_lb", "dist_ub", "dist_exp", "tok_min", "tok_max",
              "may_kw", "limits", "totals")

    def __init__(self, view: ShmArenaView) -> None:
        self._view = view

    def __getattr__(self, name: str):
        if name in self._NAMES:
            return self._view.arrays[name]
        raise AttributeError(name)

    def gather(self, index):
        """The 7-tuple of stacked kernel inputs for one candidate row set."""
        arrays = self._view.arrays
        return (arrays["dist_lb"][index], arrays["dist_ub"][index],
                arrays["tok_min"][index], arrays["tok_max"][index],
                arrays["may_kw"][index], arrays["limits"][index],
                arrays["totals"][index])

    def packed_row(self, row: int) -> PackedSynopsis:
        """The query-side packed block of one mapped row."""
        arrays = self._view.arrays
        totals = arrays["totals"]
        return PackedSynopsis(
            dist_lb=arrays["dist_lb"][row],
            dist_ub=arrays["dist_ub"][row],
            dist_exp=arrays["dist_exp"][row],
            tok_min=arrays["tok_min"][row],
            tok_max=arrays["tok_max"][row],
            may_have_keyword=bool(arrays["may_kw"][row]),
            pivot_limit=int(arrays["limits"][row]),
            total_exp0=float(totals[row, 0]),
            total_lb0=float(totals[row, 1]),
            total_ub0=float(totals[row, 2]),
        )


# ---------------------------------------------------------------------------
# The per-batch grid journal (cell membership + aggregate pre-images)
# ---------------------------------------------------------------------------
#: Journal entries (emitted by ``ERGrid`` while a journal is attached):
#: ``("a", coords, cell_row, key, intervals)`` — key added to the cell (the
#: cell is created at dict-end if absent); ``("r", coords, cell_row, key,
#: intervals)`` — key removed, cell still alive; ``("d", coords, key)`` —
#: key removed and the cell deleted.  ``intervals`` is the cell's
#: per-attribute ``(lb, ub)`` aggregate AT WRITE TIME, so replaying entries
#: reproduces every intermediate aggregate state of the batch exactly.
JournalEntry = Tuple


class GridJournal:
    """Arrival-ordered cell mutations + first-write row pre-images.

    The workers' scan needs, at op ``k``, each live cell's aggregates *as
    of op ``k``* — but the mapped :class:`CellStore` arrays hold the
    end-of-batch values.  Two pieces recover the intermediate states
    without shipping array snapshots:

    * :attr:`pre_rows` — the value a cell row held *before its first write
      of the batch* (captured inside ``CellStore.update`` / first-wins), so
      rows written later than op ``k`` still read their op-``k`` value;
    * the entries — each carrying the at-write aggregate, so rows written
      before op ``k`` read the latest replayed value.

    Rows never written in the batch are read straight from the mapped
    arrays (their end-of-batch value *is* the pre-batch value).
    """

    def __init__(self) -> None:
        self._entries: List[JournalEntry] = []
        self.pre_rows: Dict[int, Tuple[Tuple[float, ...],
                                       Tuple[float, ...]]] = {}

    def record(self, entry: JournalEntry) -> None:
        self._entries.append(entry)

    def take(self) -> List[JournalEntry]:
        """Drain the entries recorded since the previous ``take``."""
        entries = self._entries
        self._entries = []
        return entries

    def capture_pre(self, row: int, lb_row, ub_row) -> None:
        """Record one row's pre-image (first write of the batch wins)."""
        if row not in self.pre_rows:
            self.pre_rows[row] = (tuple(lb_row.tolist()),
                                  tuple(ub_row.tolist()))

    def drain_pre(self) -> Dict[int, Tuple[Tuple[float, ...],
                                           Tuple[float, ...]]]:
        pre = self.pre_rows
        self.pre_rows = {}
        return pre
