"""Checkpoint / restore of the online engine state.

A checkpoint captures everything the online operator has accumulated — the
per-stream window contents (as imputed records), the entity result set, the
pruning / imputation / timing counters and the timestamp counter — using the
JSON serialisers of :mod:`repro.persistence`.  The offline substrates
(pivots, rules, indexes) are *not* persisted: they are a deterministic
function of the repository and the configuration and are rebuilt by the
``TERiDSEngine`` constructor; likewise each window tuple's grid synopsis is
re-derived from its imputed record, so restoring reproduces the exact grid
and result-set state and a resumed run yields the same answers as an
uninterrupted one.
"""

from __future__ import annotations

from typing import Dict

from repro.core.pruning import RecordSynopsis
from repro.imputation.imputer import ImputationStats
from repro.persistence import (
    imputed_record_from_dict,
    imputed_record_to_dict,
    match_from_dict,
    match_to_dict,
)
from repro.runtime.context import RuntimeContext

_PRUNING_FIELDS = (
    "pairs_considered", "pruned_by_topic", "pruned_by_similarity",
    "pruned_by_probability", "pruned_by_instance", "refined_matches",
    "refined_non_matches",
)


def engine_state_to_dict(ctx: RuntimeContext) -> Dict:
    """Serialise the online state of one runtime context."""
    windows = {
        source: [imputed_record_to_dict(item.record) for item in window.items()]
        for source, window in sorted(ctx.windows.items())
    }
    pruning_stats = ctx.pruning.stats
    state = {
        "timestamps_processed": ctx.timestamps_processed,
        "windows": windows,
        "matches": [match_to_dict(pair) for pair in ctx.result_set.pairs()],
        "pruning_stats": {name: getattr(pruning_stats, name)
                          for name in _PRUNING_FIELDS},
        "imputation_stats": ctx.imputer.stats.as_dict(),
        "timer": {"totals": dict(ctx.timer.totals),
                  "counts": dict(ctx.timer.counts)},
        "grid_counters": {"cells_examined": ctx.grid.cells_examined,
                          "tuples_examined": ctx.grid.tuples_examined},
        # Ingestion counters (zero unless an IngestDriver feeds this
        # context) ride along so a drain/resume cycle keeps its arrival,
        # lateness and backpressure accounting.
        "ingest_stats": ctx.ingest.as_dict(),
        # Pooled-refinement / sharded-lookup shipping counters.  Worker
        # residency itself is NOT persisted: the sharded pool reconciles
        # its replicas against the restored grid on the next batch
        # (self-healing), so only the accounting needs to survive.
        "transport_stats": ctx.transport.as_dict(),
        # Query-time resolution counters.  The resolver's result cache is
        # deliberately absent: cached clusters are scratch derived from the
        # live window (the engine drops them on restore), so only the
        # accounting crosses a checkpoint.
        "query_stats": ctx.query.as_dict(),
        # Telemetry correlation metadata: the monotonic batch sequence and
        # the last trace id let a restored run's traces be lined up with
        # its pre-checkpoint history.  The metrics/traces themselves are
        # process-local scratch and are not persisted.
        "telemetry": {"batch_seq": ctx.batch_seq,
                      "trace_id": ctx.last_trace_id},
    }
    if ctx.controller_state is not None:
        # Runtime-controller state (AIMD targets, cool-down, decision
        # counters): persisting it lets a restored run resume with the
        # knob targets and cadence it had converged to instead of
        # re-thrashing from the construction-time defaults.  Plain
        # JSON-safe dict, attached by repro.runtime.controller.
        state["controller"] = dict(ctx.controller_state)
    if ctx.rule_maintainer is not None:
        # Incremental rule maintenance (Section 5.5): unlike the other
        # offline substrates, the maintained rules are NOT a deterministic
        # function of repository + config alone (pending-pool promotions and
        # confidence retirements depend on the update history), so the
        # maintainer's sufficient statistics ride along in the checkpoint.
        state["rule_maintainer"] = ctx.rule_maintainer.state_to_dict()
    return state


def restore_engine_state(ctx: RuntimeContext, state: Dict) -> None:
    """Rebuild the online state of ``ctx`` from a checkpoint dict.

    The context must have been built over the same repository,
    configuration and rule set as the checkpointed engine; windows, grid and
    result set are cleared and repopulated, counters are overwritten.

    Shared-memory plane state is deliberately absent from checkpoints: the
    plane's segments are process-local scratch (rebuilt from the grid at
    any time), so restore only recreates the *logical* grid here — an
    shm-backed executor detects the out-of-band mutation via the grid's
    mutation counter and re-snapshots its workers on the next batch.
    """
    ctx.clear_online_state()

    # Window tuples are re-inserted globally ordered by arrival timestamp
    # (ties broken by source and in-window position), approximating the
    # original cross-stream interleaving so the rebuilt grid matches the
    # checkpointed one cell for cell.
    entries = []
    for source, rows in state.get("windows", {}).items():
        for position, row in enumerate(rows):
            imputed = imputed_record_from_dict(row, ctx.schema)
            entries.append((imputed.timestamp, source, position, imputed))
    entries.sort(key=lambda entry: (entry[0], entry[1], entry[2]))
    keywords = ctx.config.keywords
    evicted_keys = []
    for _, source, _, imputed in entries:
        synopsis = RecordSynopsis.build(imputed, ctx.pivots, keywords)
        evicted = ctx.window_for(source).insert(synopsis)
        if evicted is not None:
            # Restoring into a smaller window than the checkpoint's: the
            # window auto-evicts, and the grid (and any checkpointed pair
            # involving the evicted tuple) must follow, or the evicted
            # tuples would linger forever.
            ctx.grid.remove(evicted.record.rid, evicted.record.source)
            evicted_keys.append((evicted.record.rid, evicted.record.source))
        ctx.grid.insert(synopsis)

    for row in state.get("matches", []):
        ctx.result_set.add(match_from_dict(row))
    for rid, source in evicted_keys:
        ctx.result_set.remove_record(rid, source)

    pruning_stats = ctx.pruning.stats
    for name in _PRUNING_FIELDS:
        setattr(pruning_stats, name, state.get("pruning_stats", {}).get(name, 0))

    imputation = state.get("imputation_stats", {})
    fresh = ImputationStats()
    for name in fresh.as_dict():
        setattr(fresh, name, imputation.get(name, 0))
    ctx.imputer.stats = fresh

    timer_state = state.get("timer", {})
    ctx.timer.totals = dict(timer_state.get("totals", {}))
    ctx.timer.counts = dict(timer_state.get("counts", {}))

    grid_counters = state.get("grid_counters", {})
    ctx.grid.cells_examined = grid_counters.get("cells_examined", 0)
    ctx.grid.tuples_examined = grid_counters.get("tuples_examined", 0)

    ctx.ingest.restore(state.get("ingest_stats", {}))
    ctx.transport.restore(state.get("transport_stats", {}))
    ctx.query.restore(state.get("query_stats", {}))

    maintainer_state = state.get("rule_maintainer")
    if maintainer_state is not None:
        if ctx.rule_maintainer is None:
            # Dropping the maintained rules would silently resume with the
            # construction-time rule set — different imputations, no error.
            raise ValueError(
                "checkpoint carries incremental rule-maintainer state but "
                "this engine was built without incremental maintenance; "
                "construct it with a CDDDiscoveryConfig whose "
                "maintenance_mode is 'incremental' or 'hybrid'")
        # Restore the maintainer's sufficient statistics and reinstall the
        # regenerated rules (indexes + imputer grouping) so a resumed stream
        # imputes exactly like the checkpointed one.  The context must hold
        # the same extended repository the snapshot was taken over.  No
        # maintenance report is passed: restore deliberately keeps the full
        # rebuild path (there is no live index to diff against), though a
        # value-identical rule set still short-circuits to a no-op install.
        ctx.install_rules(ctx.rule_maintainer.restore_state(maintainer_state))

    telemetry_meta = state.get("telemetry", {})
    ctx.batch_seq = telemetry_meta.get("batch_seq", 0)
    ctx.last_trace_id = telemetry_meta.get("trace_id")

    # Controller state is adopted by the next RuntimeController attached to
    # this context (its constructor reads ctx.controller_state); absent from
    # the checkpoint means no controller ran, so clear any leftover.
    controller_state = state.get("controller")
    ctx.controller_state = (dict(controller_state)
                            if controller_state is not None else None)

    ctx.timestamps_processed = state.get("timestamps_processed", 0)
