"""The pipeline stages of the online TER-iDS operator (Algorithm 2).

The paper's online step is a staged dataflow; each phase is one class here:

* :class:`RuleSelectionStage` — online CDD selection via the CDD-indexes;
* :class:`ImputationStage` — Eq. (4) imputation with the selected rules;
* :class:`SynopsisStage` — per-tuple ER-grid synopsis construction;
* :class:`CandidateLookupStage` — ER-grid candidate retrieval;
* :class:`MatchingStage` — the four pruning strategies plus refinement;
* :class:`MaintenanceStage` — window expiry and window/grid insertion.

A :class:`TupleTask` carries one arriving tuple through the stages and
accumulates the per-stage artefacts.  Stages are stateless apart from the
shared :class:`~repro.runtime.context.RuntimeContext`; executors own the
scheduling (per-tuple for the serial executor, per-batch with grouping for
the micro-batch executor) and the stage timers.

The first three stages are *order-free*: they read only the offline
substrates, never the online window/grid state, so a batch executor may run
them for many tuples at once (grouped, cached, or on a process pool).  The
last three are *order-bound*: candidate lookup for tuple ``t`` must observe
exactly the evictions and insertions of all tuples that arrived before
``t``, which is why executors interleave them per tuple in arrival order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, runtime_checkable

from repro.core.matching import MatchPair
from repro.core.pruning import RecordSynopsis, ensure_packed
from repro.core.tuples import ImputedRecord, Record
from repro.imputation.cdd import CDDRule, discover_cdd_rules
from repro.imputation.incremental import MaintenanceReport
from repro.runtime.context import RuntimeContext
from repro.runtime.evaluation import evaluate_pair_cached


@dataclass
class TupleTask:
    """One arriving tuple and the artefacts the stages attach to it."""

    record: Record
    selected_rules: Optional[Dict[str, List[CDDRule]]] = None
    imputed: Optional[ImputedRecord] = None
    synopsis: Optional[RecordSynopsis] = None
    candidates: Optional[List[RecordSynopsis]] = None
    matches: List[MatchPair] = field(default_factory=list)


@runtime_checkable
class Stage(Protocol):
    """A pipeline phase operating on a batch of tuple tasks.

    ``run`` processes every task of a batch; stages amortise whatever they
    can across the batch (grouped index lookups, shared caches).  Order-bound
    stages additionally expose per-tuple verbs (``expire`` / ``lookup`` /
    ``insert`` / ``evaluate``) that executors interleave in arrival order.
    """

    name: str

    def run(self, tasks: Sequence[TupleTask]) -> None:  # pragma: no cover
        ...


class RuleSelectionStage:
    """Online CDD selection via the CDD-indexes (Figure 6 stage 1)."""

    name = "rule_selection"

    def __init__(self, ctx: RuntimeContext) -> None:
        self.ctx = ctx

    def select(self, record: Record) -> Dict[str, List[CDDRule]]:
        """Candidate rules per missing attribute of one record."""
        indexes = self.ctx.cdd_indexes
        selected: Dict[str, List[CDDRule]] = {}
        for attribute in record.missing_attributes(self.ctx.schema):
            index = indexes.get(attribute)
            if index is None:
                selected[attribute] = []
            else:
                selected[attribute] = index.candidate_rules(record)
        return selected

    def run(self, tasks: Sequence[TupleTask]) -> None:
        """Batched selection, grouped by missing-attribute signature.

        Complete tuples are skipped wholesale; incomplete tuples sharing a
        signature resolve their per-attribute index objects once per group
        instead of once per tuple.
        """
        schema = self.ctx.schema
        indexes = self.ctx.cdd_indexes
        groups: Dict[tuple, List[TupleTask]] = {}
        for task in tasks:
            signature = tuple(task.record.missing_attributes(schema))
            groups.setdefault(signature, []).append(task)
        for signature, grouped in groups.items():
            if not signature:
                for task in grouped:
                    task.selected_rules = {}
                continue
            group_indexes = [(attribute, indexes.get(attribute))
                             for attribute in signature]
            for task in grouped:
                selected: Dict[str, List[CDDRule]] = {}
                for attribute, index in group_indexes:
                    if index is None:
                        selected[attribute] = []
                    else:
                        selected[attribute] = index.candidate_rules(task.record)
                task.selected_rules = selected


class ImputationStage:
    """Equation (4) imputation with the index-selected rules (stage 2)."""

    name = "imputation"

    def __init__(self, ctx: RuntimeContext) -> None:
        self.ctx = ctx

    def impute(self, record: Record,
               selected_rules: Dict[str, List[CDDRule]]) -> ImputedRecord:
        """Impute one record's missing attributes with the selected rules."""
        ctx = self.ctx
        schema = ctx.schema
        imputer = ctx.imputer
        missing = record.missing_attributes(schema)
        if not missing:
            return ImputedRecord.from_complete(record, schema)
        candidates: Dict[str, Dict[str, float]] = {}
        for attribute in missing:
            rules = selected_rules.get(attribute, [])
            if not rules:
                imputer.stats.attributes_unimputable += 1
                continue
            distribution = imputer.candidate_distribution(record, attribute,
                                                          rules=rules)
            if distribution:
                candidates[attribute] = distribution
                imputer.stats.attributes_imputed += 1
            else:
                imputer.stats.attributes_unimputable += 1
        imputer.stats.records_imputed += 1
        return ImputedRecord(base=record, schema=schema, candidates=candidates)

    def run(self, tasks: Sequence[TupleTask]) -> None:
        for task in tasks:
            task.imputed = self.impute(task.record, task.selected_rules or {})


class SynopsisStage:
    """Per-tuple ER-grid synopsis construction (Section 5.2)."""

    name = "synopsis"

    def __init__(self, ctx: RuntimeContext) -> None:
        self.ctx = ctx

    def build(self, imputed: ImputedRecord,
              packed: bool = False) -> RecordSynopsis:
        synopsis = RecordSynopsis.build(imputed, self.ctx.pivots,
                                        self.ctx.config.keywords)
        if packed:
            # Build the columnar block once here (order-free, batchable)
            # rather than lazily inside the matching stage's hot loop.
            ensure_packed(synopsis)
        return synopsis

    def run(self, tasks: Sequence[TupleTask], packed: bool = False) -> None:
        for task in tasks:
            task.synopsis = self.build(task.imputed, packed=packed)


class CandidateLookupStage:
    """ER-grid candidate retrieval (Algorithm 2, lines 8–10).

    Order-bound: the grid must reflect every earlier tuple's eviction and
    insertion, so executors call :meth:`lookup` per tuple in arrival order,
    interleaved with :class:`MaintenanceStage`.
    """

    name = "candidate_lookup"

    def __init__(self, ctx: RuntimeContext) -> None:
        self.ctx = ctx

    def lookup(self, synopsis: RecordSynopsis) -> List[RecordSynopsis]:
        # Keywords are deliberately NOT pushed down to the grid here: the
        # topic-keyword pruning is applied (and counted) by the pruning
        # pipeline so that the Figure 4 pruning-power report attributes
        # eliminated pairs to the right strategy.  The grid still prunes
        # cells with the converted-space distance bound.
        return self.ctx.grid.candidate_synopses(
            synopsis,
            gamma=self.ctx.config.gamma,
            keywords=frozenset(),
            exclude_source=synopsis.record.source,
        )

    def run(self, tasks: Sequence[TupleTask]) -> None:
        for task in tasks:
            task.candidates = self.lookup(task.synopsis)


class MatchingStage:
    """Pruning + refinement over the candidate pairs (stage 3, Section 4)."""

    name = "matching"

    def __init__(self, ctx: RuntimeContext) -> None:
        self.ctx = ctx

    def make_pair(self, task: TupleTask, candidate: RecordSynopsis,
                  probability: float) -> MatchPair:
        record = task.record
        return MatchPair(
            left_rid=record.rid,
            left_source=record.source,
            right_rid=candidate.record.rid,
            right_source=candidate.record.source,
            probability=probability,
            timestamp=record.timestamp,
        )

    def evaluate_serial(self, task: TupleTask) -> None:
        """Seed-exact evaluation: result-set updates interleaved per pair."""
        ctx = self.ctx
        for candidate in task.candidates:
            is_match, probability = ctx.pruning.evaluate_pair(task.synopsis,
                                                              candidate)
            if is_match:
                pair = self.make_pair(task, candidate, probability)
                task.matches.append(pair)
                ctx.result_set.add(pair)

    def evaluate_pure(self, task: TupleTask, stats=None,
                      vectorized: bool = False) -> None:
        """Side-effect-free evaluation used by the micro-batch executor.

        Pair verdicts are a pure function of the two synopses and the
        operator thresholds, so they may be computed out of arrival order
        (or on another process); the executor replays the result-set
        mutations in arrival order afterwards.  Uses the cached per-instance
        profiles of :mod:`repro.runtime.evaluation`; with ``vectorized`` the
        three bound strategies run through the columnar
        :func:`~repro.core.pruning.batch_prune` kernel over the ER-grid's
        resident packed store (identical verdicts and counters).
        """
        from repro.runtime.evaluation import evaluate_candidates

        ctx = self.ctx
        pruning = ctx.pruning
        if stats is None:
            stats = pruning.stats
        verdicts = evaluate_candidates(
            task.synopsis, task.candidates,
            keywords=pruning.keywords, gamma=pruning.gamma,
            alpha=pruning.alpha, use_topic=pruning.use_topic,
            use_similarity=pruning.use_similarity,
            use_probability=pruning.use_probability,
            use_instance=pruning.use_instance, stats=stats,
            vectorized=vectorized, store=ctx.grid.packed_store)
        for candidate, (is_match, probability) in zip(task.candidates,
                                                      verdicts):
            if is_match:
                task.matches.append(self.make_pair(task, candidate,
                                                   probability))

    def run(self, tasks: Sequence[TupleTask]) -> None:
        for task in tasks:
            self.evaluate_serial(task)


class MaintenanceStage:
    """Sliding-window expiry and window/grid insertion (lines 2–7, 11–13)."""

    name = "maintenance"

    def __init__(self, ctx: RuntimeContext) -> None:
        self.ctx = ctx

    def expire(self, source: str,
               defer_result_set: bool = False) -> Optional[RecordSynopsis]:
        """Evict the oldest tuple of a full window before a new insertion.

        ``SlidingWindow.insert`` would evict automatically; the oldest tuple
        is peeked explicitly so the grid and the result set stay consistent.
        With ``defer_result_set`` the entity-result-set removal is left to
        the caller (the micro-batch executor replays it in arrival order
        after the deferred pair evaluations).
        """
        ctx = self.ctx
        window = ctx.window_for(source)
        if not window.is_full:
            return None
        oldest = window.items()[0]
        ctx.grid.remove(oldest.record.rid, oldest.record.source)
        if not defer_result_set:
            ctx.result_set.remove_record(oldest.record.rid, oldest.record.source)
        return oldest

    def insert(self, synopsis: RecordSynopsis) -> None:
        """Register a new tuple in its window and in the ER-grid."""
        ctx = self.ctx
        window = ctx.window_for(synopsis.record.source)
        window.insert(synopsis)
        ctx.grid.insert(synopsis)

    def run(self, tasks: Sequence[TupleTask]) -> None:
        for task in tasks:
            self.expire(task.record.source)
            self.insert(task.synopsis)

    # -- event-time expiry (time-based windows / watermarks) -----------------
    def retract(self, items: Sequence) -> int:
        """Remove time-expired tuples from the ER-grid and the result set.

        The count-based windows bound memory on their own; a time-based view
        (:mod:`repro.core.time_window`) or the ingest driver's event-time
        watermark additionally expires tuples by age, and every pair
        involving an expired tuple must leave the reported result set.
        ``items`` only need ``rid`` / ``source`` attributes.  Returns the
        number of retracted items.
        """
        ctx = self.ctx
        for item in items:
            ctx.grid.remove(item.rid, item.source)
            ctx.result_set.remove_record(item.rid, item.source)
        return len(items)

    # -- evolving repository (Section 5.5) -----------------------------------
    def absorb_repository_samples(self, samples: Sequence[Record],
                                  remine_rules: bool = False,
                                  ) -> Optional[MaintenanceReport]:
        """Extend the repository with complete samples and maintain the rules.

        The repository and DR-index always grow; what happens to the CDD
        rules depends on the discovery configuration's maintenance mode:

        * ``full`` — rules are left alone unless ``remine_rules`` asks for a
          full re-mine (the seed behaviour);
        * ``incremental`` / ``hybrid`` — the
          :class:`~repro.imputation.incremental.IncrementalRuleMaintainer`
          folds the batch into its sketches and regenerates the rules in
          O(batch); ``remine_rules`` forces an exact resynchronisation, and
          ``hybrid`` triggers one itself when the drift estimate exceeds the
          configured threshold.

        Returns the maintainer's report (``None`` in ``full`` mode).
        """
        ctx = self.ctx
        added: List[Record] = []
        for sample in samples:
            ctx.repository.add_sample(sample)
            ctx.dr_index.index_sample(sample)
            added.append(sample)
        if added and ctx.imputer.candidate_cache is not None:
            # Cache keys embed the domain size, so entries for attributes
            # whose domain grew can never be hit again — drop everything
            # rather than strand them.
            ctx.imputer.candidate_cache.clear()

        maintainer = ctx.rule_maintainer
        if maintainer is None:
            if remine_rules:
                self.install_rules(discover_cdd_rules(ctx.repository,
                                                      ctx.discovery_config))
            return None
        if not added and not remine_rules:
            return None
        report = maintainer.absorb(ctx.repository, added,
                                   force_full=remine_rules)
        if report.rules_changed:
            # Threading the report lets the context patch the CDD-indexes
            # in place from the diff; a re-mined report still rebuilds.
            self.install_rules(report.rules, report=report)
        return report

    def absorb_complete_stream_tuples(self, records: Sequence[Record]) -> int:
        """Gated online repository growth from the streams themselves.

        When ``config.absorb_complete_tuples`` is set, every *complete*
        tuple of an arriving batch is absorbed into the repository through
        :meth:`absorb_repository_samples` — so the DR-index grows and, in
        incremental/hybrid maintenance modes, the CDD rules evolve with the
        observed traffic.  Incomplete tuples are never absorbed (repository
        samples must be complete).  Returns the number of absorbed tuples
        (0 when the flag is off).
        """
        ctx = self.ctx
        if not ctx.config.absorb_complete_tuples:
            return 0
        schema = ctx.schema
        complete = [record for record in records if record.is_complete(schema)]
        if complete:
            self.absorb_repository_samples(complete)
        return len(complete)

    def install_rules(self, rules: Sequence[CDDRule],
                      report: Optional[MaintenanceReport] = None) -> None:
        """Swap a new rule set into the runtime (see ``RuntimeContext``).

        ``report`` — when live incremental maintenance produced the rules —
        lets the context patch the CDD-indexes in place from the diff;
        report-less installs (explicit re-mine, restore) rebuild.
        """
        self.ctx.install_rules(rules, report=report)
