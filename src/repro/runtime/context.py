"""Shared mutable state of the staged TER-iDS runtime.

The :class:`RuntimeContext` owns everything the online operator reads or
writes — the offline substrates built in the pre-computation phase (pivot
table, CDD rules and indexes, DR-index, imputer) and the online state
(per-stream sliding windows, ER-grid, entity result set, pruning pipeline,
stage timer, timestamp counter).  Stages receive the context at construction
time and mutate it; executors schedule stages; the
:class:`~repro.core.engine.TERiDSEngine` facade exposes the context's fields
under their historical attribute names.

Keeping the state in one object (instead of scattered over the engine) is
what makes checkpoint/restore and alternative executors possible without the
engine knowing about either.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.core.config import TERiDSConfig
from repro.core.matching import EntityResultSet
from repro.core.pruning import PruningPipeline
from repro.core.stream import SlidingWindow
from repro.core.tuples import Schema
from repro.imputation.cdd import CDDDiscoveryConfig, CDDRule
from repro.imputation.imputer import CDDImputer
from repro.imputation.incremental import IncrementalRuleMaintainer
from repro.imputation.repository import DataRepository
from repro.indexes.cdd_index import CDDIndex
from repro.indexes.dr_index import DRIndex
from repro.indexes.er_grid import ERGrid
from repro.indexes.pivots import PivotTable
from repro.metrics.timing import StageTimer
from repro.obs.registry import HistogramValue
from repro.obs.telemetry import NULL_TELEMETRY


@dataclass
class TransportStats:
    """Bytes/objects shipped to pooled refinement workers, per micro-batch.

    Maintained by the pooled executor paths (both the per-batch pool and
    the persistent-worker pool) so that benchmarks and operators can watch
    the serialisation cost — the dominant overhead of pooled refinement —
    shrink once the resident synopsis caches are warm.
    """

    batches: int = 0
    bytes_shipped: int = 0
    synopses_shipped: int = 0
    orders_shipped: int = 0
    evictions_shipped: int = 0
    #: Synopsis deltas routed to a strict subset of the workers by the
    #: shm-plane targeted-routing protocol (vs. broadcast to every worker).
    deltas_routed: int = 0
    #: Lazy backfills: synopses shipped on demand because a cross-region
    #: query referenced a record its shard never received a delta for.
    backfills: int = 0
    #: Current size of the shared-memory columnar plane the workers map
    #: (a gauge, not a running total: rewritten each batch).
    shm_bytes_mapped: int = 0
    per_batch_bytes: List[int] = field(default_factory=list)
    #: Per-worker CPU placement of the live shm pool (core id per worker,
    #: ``-1`` = pin failed), from best-effort ``sched_setaffinity`` spread
    #: (:func:`repro.runtime.workers.place_workers`).  ``None`` when no
    #: placement-capable pool is live.  A live-pool diagnostic like
    #: ``per_batch_bytes``, deliberately not persisted: a restored run
    #: re-places its rebuilt pool.
    worker_placement: Optional[List[int]] = None

    def record_batch(self, nbytes: int, synopses: int = 0, orders: int = 0,
                     evictions: int = 0, routed: int = 0, backfills: int = 0,
                     shm_mapped: Optional[int] = None,
                     placement: Optional[List[int]] = None) -> None:
        self.batches += 1
        self.bytes_shipped += nbytes
        self.synopses_shipped += synopses
        self.orders_shipped += orders
        self.evictions_shipped += evictions
        self.deltas_routed += routed
        self.backfills += backfills
        if shm_mapped is not None:
            self.shm_bytes_mapped = shm_mapped
        if placement is not None:
            self.worker_placement = list(placement)
        self.per_batch_bytes.append(nbytes)

    def steady_state_bytes(self, skip: Optional[int] = None) -> float:
        """Mean bytes/batch once the caches are warm.

        The first batches of a run back-fill the window (and the resident
        worker stores), so by default the first half of the batch series is
        treated as warm-up and the mean is taken over the second half.
        """
        if skip is None:
            skip = len(self.per_batch_bytes) // 2
        window = self.per_batch_bytes[skip:] or self.per_batch_bytes
        if not window:
            return 0.0
        return sum(window) / len(window)

    _SCALARS = ("batches", "bytes_shipped", "synopses_shipped",
                "orders_shipped", "evictions_shipped", "deltas_routed",
                "backfills", "shm_bytes_mapped")

    def as_dict(self) -> Dict:
        """Checkpointable summary (lifetime scalar counters).

        The per-batch byte series is a bounded in-memory diagnostic and is
        deliberately not persisted; worker residency is not persisted
        either — the sharded pool's reconciliation re-ships whatever a
        restored run is missing (self-healing), so the counters are the
        only transport state a resume needs.
        """
        return {name: getattr(self, name) for name in self._SCALARS}

    def restore(self, state: Dict) -> None:
        for name in self._SCALARS:
            setattr(self, name, state.get(name, 0))
        self.per_batch_bytes.clear()
        self.worker_placement = None

    def reset(self) -> None:
        self.restore({})


@dataclass
class QueryStats:
    """Query-time resolution accounting (see :mod:`repro.runtime.query`).

    Maintained by the :class:`~repro.runtime.query.QueryResolver` next to
    the ingest/transport stats.  Lives on the runtime context so the
    counters ride in checkpoints and survive a drain/resume cycle; the
    resolver's cached clusters themselves are scratch — dropped on restore,
    never persisted — so only this accounting crosses a checkpoint.
    """

    #: ``resolve`` calls answered (cache hits + cold expansions).
    resolves: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    #: Cached clusters dropped because window maintenance (insert, expiry,
    #: retraction, restore) touched a grid region they depend on.
    cache_invalidations: int = 0
    #: Frontier records expanded across all cold resolves — the query-time
    #: analogue of the grid's ``tuples_examined``.
    frontier_expansions: int = 0

    _SCALARS = ("resolves", "cache_hits", "cache_misses",
                "cache_invalidations", "frontier_expansions")

    def as_dict(self) -> Dict:
        return {name: getattr(self, name) for name in self._SCALARS}

    def restore(self, state: Dict) -> None:
        for name in self._SCALARS:
            setattr(self, name, state.get(name, 0))

    def reset(self) -> None:
        self.restore({})


#: Retained per-batch sample count of the ingest series (latency / depth).
INGEST_SERIES_WINDOW = 4096


@dataclass
class IngestStats:
    """Arrival/backpressure accounting of the async ingestion front-end.

    Maintained by :class:`~repro.ingest.driver.IngestDriver` (the asyncio
    ingestion subsystem) next to :class:`TransportStats` so operators can
    watch batch formation, queue depth and lateness handling in one place.
    Lives on the runtime context — not on the driver — so the counters ride
    in checkpoints and survive a drain/resume cycle.
    """

    tuples_ingested: int = 0
    batches_formed: int = 0
    #: Out-of-order arrivals held back by the watermark clock's reorder
    #: buffer (event time behind the stream's high mark, within lateness).
    reordered: int = 0
    #: Elements released ahead of the watermark because the reorder buffer
    #: hit its capacity (a stalled source was holding the watermark back).
    force_released: int = 0
    #: Arrivals behind the per-stream watermark, by late policy.
    admitted_late: int = 0
    shed_late: int = 0
    #: Times a source reader found the arrival queue full and had to wait.
    backpressure_waits: int = 0
    max_queue_depth: int = 0
    #: Times a silent source was marked idle after ``idle_timeout`` seconds
    #: without an arrival, releasing its hold on the global watermark.
    idle_timeouts: int = 0
    #: ``process_batch`` invocations awaited off the event loop (the
    #: ``process_in_executor`` driver flag), during which the source
    #: readers kept filling the arrival queue.
    executor_waits: int = 0
    #: Complete stream tuples absorbed into the repository (gated growth).
    absorbed_samples: int = 0
    #: Tuples retracted from grid/result set by watermark-driven expiry.
    expired_by_watermark: int = 0
    #: Batch-formation trigger counts (``size`` / ``deadline`` /
    #: ``watermark`` / ``drain``).
    triggers: Dict[str, int] = field(default_factory=dict)
    #: Per-batch formation latency (seconds from first enqueue to emit) as
    #: a full histogram — exponential buckets plus a sample ring bounded to
    #: the most recent ``INGEST_SERIES_WINDOW`` batches, serving exact
    #: p50/p95/p99 quantiles — and arrival-queue depth sampled at emit
    #: time.  Bounded so an indefinitely running driver does not accrue
    #: unbounded memory; the scalar counters above remain lifetime totals.
    formation: HistogramValue = field(
        default_factory=lambda: HistogramValue(
            sample_window=INGEST_SERIES_WINDOW,
            quantiles=(0.5, 0.95, 0.99)))
    queue_depths: Deque[int] = field(
        default_factory=lambda: deque(maxlen=INGEST_SERIES_WINDOW))

    @property
    def formation_latencies(self) -> Deque[float]:
        """The retained formation-latency samples (compatibility view of
        the histogram's sample ring)."""
        return self.formation.samples

    def record_batch(self, size: int, latency: float, queue_depth: int,
                     trigger: str) -> None:
        self.batches_formed += 1
        self.tuples_ingested += size
        self.formation.observe(latency)
        self.queue_depths.append(queue_depth)
        self.max_queue_depth = max(self.max_queue_depth, queue_depth)
        self.triggers[trigger] = self.triggers.get(trigger, 0) + 1

    def p95_formation_latency(self) -> float:
        """95th-percentile batch-formation latency in seconds (0 when
        empty), over the retained window of recent batches."""
        return self.formation.quantile(0.95)

    _SCALARS = ("tuples_ingested", "batches_formed", "reordered",
                "force_released", "admitted_late", "shed_late",
                "backpressure_waits", "max_queue_depth", "idle_timeouts",
                "executor_waits", "absorbed_samples", "expired_by_watermark")

    def as_dict(self) -> Dict:
        """Checkpointable summary (scalar counters + trigger counts)."""
        state = {name: getattr(self, name) for name in self._SCALARS}
        state["triggers"] = dict(self.triggers)
        return state

    def restore(self, state: Dict) -> None:
        for name in self._SCALARS:
            setattr(self, name, state.get(name, 0))
        self.triggers = dict(state.get("triggers", {}))
        self.formation.reset()
        self.queue_depths.clear()

    def reset(self) -> None:
        self.restore({})


@dataclass
class RuntimeContext:
    """All state shared by the pipeline stages of one TER-iDS operator."""

    config: TERiDSConfig
    repository: DataRepository
    pivots: PivotTable
    rules: List[CDDRule]
    cdd_indexes: Dict[str, CDDIndex]
    dr_index: DRIndex
    grid: ERGrid
    imputer: CDDImputer
    windows: Dict[str, SlidingWindow] = field(default_factory=dict)
    result_set: EntityResultSet = field(default_factory=EntityResultSet)
    pruning: Optional[PruningPipeline] = None
    timer: StageTimer = field(default_factory=StageTimer)
    timestamps_processed: int = 0
    #: Rule-mining knobs used for re-mines of the evolving repository; the
    #: maintenance stage reads them when absorbing new samples.
    discovery_config: Optional[CDDDiscoveryConfig] = None
    #: Incremental rule maintainer (Section 5.5).  ``None`` in ``full``
    #: maintenance mode, where rules only change through an explicit re-mine.
    rule_maintainer: Optional[IncrementalRuleMaintainer] = None
    #: Serialisation traffic of pooled refinement (see :class:`TransportStats`).
    transport: TransportStats = field(default_factory=TransportStats)
    #: Arrival/backpressure accounting of the async ingestion front-end
    #: (see :class:`IngestStats`); zero unless an ``IngestDriver`` feeds
    #: this context.
    ingest: IngestStats = field(default_factory=IngestStats)
    #: Query-time resolution accounting (see :class:`QueryStats`); zero
    #: unless a ``QueryResolver`` serves lookups over this context.
    query: QueryStats = field(default_factory=QueryStats)
    #: Rule-installation accounting: installs skipped because the incoming
    #: rule list was value-identical, installs absorbed by patching the
    #: CDD-indexes in place, and installs that rebuilt them from scratch.
    installs_skipped: int = 0
    installs_patched: int = 0
    installs_rebuilt: int = 0
    #: Aggregated per-group outcome of the most recent patched install
    #: (``CDDPatchStats.as_dict()``); ``None`` until a patch happens.
    last_patch_stats: Optional[Dict[str, int]] = None
    #: The telemetry plane (see :mod:`repro.obs`): :data:`NULL_TELEMETRY`
    #: until :meth:`enable_telemetry` swaps in a live recorder.  Not a
    #: typed field on purpose — the null object and the live plane share
    #: only the recording protocol.
    telemetry: object = field(default=NULL_TELEMETRY, repr=False)
    #: Monotonic batch sequence number.  Advances on every executor batch
    #: regardless of telemetry state, rides in checkpoint metadata, and
    #: seeds the per-batch trace ids — so a restored run's traces correlate
    #: with its pre-checkpoint history instead of restarting at zero.
    batch_seq: int = 0
    #: Trace id of the most recently started batch (``None`` while
    #: telemetry has never been enabled).
    last_trace_id: Optional[str] = None
    #: Live state of the runtime controller steering this context's
    #: executor (see :mod:`repro.runtime.controller`): a plain JSON-safe
    #: dict (mode, AIMD targets, cool-down, decision counters) so
    #: checkpoints and the metrics registry reach it through the context
    #: without importing the controller.  ``None`` until one attaches.
    controller_state: Optional[Dict] = None

    def __post_init__(self) -> None:
        if self.pruning is None:
            config = self.config
            self.pruning = PruningPipeline(
                keywords=config.keywords,
                gamma=config.gamma,
                alpha=config.alpha,
                use_topic=config.use_topic_pruning,
                use_similarity=config.use_similarity_pruning,
                use_probability=config.use_probability_pruning,
                use_instance=config.use_instance_pruning,
            )

    @property
    def schema(self) -> Schema:
        return self.config.schema

    def install_rules(self, rules, report=None) -> None:
        """Swap a new CDD rule set into the runtime (indexes + imputer).

        The single authority for rule installation — live maintenance
        (``MaintenanceStage``) and checkpoint restore both route through it,
        so the two paths cannot drift apart.  The imputer object is kept
        (statistics, candidate cache and DR-index retriever survive); only
        the rule grouping and the per-attribute CDD-indexes change.

        A value-identical rule list short-circuits to a no-op.  When live
        incremental maintenance supplies its :class:`MaintenanceReport`
        (``report``, not re-mined) and ``config.patch_cdd_indexes`` is on,
        the existing CDD-indexes are patched in place from the rule diff —
        bit-identical to a rebuild, but only touching changed lattice
        groups.  Without a report (checkpoint restore, explicit re-mine,
        hybrid drift re-sync) the indexes are rebuilt from scratch.
        """
        from repro.indexes.cdd_index import build_cdd_indexes

        rules = list(rules)
        if rules == self.rules:
            self.installs_skipped += 1
            return
        patchable = (report is not None
                     and not getattr(report, "remined", False)
                     and self.config.patch_cdd_indexes)
        if patchable:
            self._patch_cdd_indexes(rules, report)
            self.installs_patched += 1
        else:
            self.cdd_indexes = build_cdd_indexes(rules, self.schema,
                                                 self.pivots)
            self.installs_rebuilt += 1
        self.rules = rules
        self.imputer.set_rules(self.rules)

    def _patch_cdd_indexes(self, rules: List[CDDRule], report) -> None:
        """Patch the per-dependent CDD-indexes in place from a rule diff.

        Existing indexes absorb their dependent's diff through
        :meth:`CDDIndex.apply_diff`; dependents appearing for the first
        time get a fresh index, dependents that lost all rules lose theirs.
        The resulting dict matches ``build_cdd_indexes`` bit-for-bit,
        including its insertion order.
        """
        from repro.imputation.cdd import group_rules_by_dependent

        promoted_ids = set(getattr(report, "promoted", ()) or ())
        retired_ids = set(getattr(report, "retired", ()) or ())
        widened_ids = set(getattr(report, "widened_ids", ()) or ())
        patch_stats: Dict[str, int] = {}
        new_indexes: Dict[str, CDDIndex] = {}
        for dependent, dependent_rules in group_rules_by_dependent(rules).items():
            index = self.cdd_indexes.get(dependent)
            if index is None:
                index = CDDIndex(dependent=dependent, rules=dependent_rules,
                                 schema=self.schema, pivots=self.pivots)
            else:
                stats = index.apply_diff(
                    promoted=[rule for rule in dependent_rules
                              if rule.rule_id in promoted_ids],
                    retired=retired_ids,
                    widened=[rule for rule in dependent_rules
                             if rule.rule_id in widened_ids],
                    rules=dependent_rules,
                )
                for name, value in stats.as_dict().items():
                    patch_stats[name] = patch_stats.get(name, 0) + value
            new_indexes[dependent] = index
        self.cdd_indexes = new_indexes
        self.last_patch_stats = patch_stats

    def window_for(self, source: str) -> SlidingWindow:
        """The sliding window of one stream, created on first use."""
        window = self.windows.get(source)
        if window is None:
            window = SlidingWindow(capacity=self.config.window_size)
            self.windows[source] = window
        return window

    def clear_online_state(self) -> None:
        """Drop every window, grid entry and reported pair (keep substrates)."""
        self.windows.clear()
        self.result_set.clear()
        grid = self.grid
        for synopsis in grid.synopses():
            grid.remove(synopsis.rid, synopsis.source)
        self.timestamps_processed = 0

    # -- telemetry -----------------------------------------------------------
    def begin_batch(self, size: int):
        """Advance ``batch_seq`` and open this batch's telemetry scope.

        Executors wrap each batch in ``with ctx.begin_batch(len(records)):``.
        The sequence number always advances (it is checkpoint metadata,
        not telemetry); with telemetry disabled the returned scope is the
        shared no-op context manager, so the disabled path allocates
        nothing.
        """
        self.batch_seq += 1
        telemetry = self.telemetry
        if telemetry.enabled:
            scope = telemetry.begin_batch(self.batch_seq, size)
            self.last_trace_id = telemetry.current_trace.trace_id
            return scope
        from repro.obs.telemetry import NULL_SCOPE
        return NULL_SCOPE

    def enable_telemetry(self, registry=None, trace_ring: int = 16,
                         profile_slowest: int = 0):
        """Swap the live telemetry plane in (idempotent-ish: re-enabling
        builds a fresh plane) and bind every stat object onto its registry.

        Returns the :class:`~repro.obs.telemetry.Telemetry` instance so
        callers can reach the registry/tracer/profiler directly.
        """
        from repro.obs.telemetry import Telemetry, bind_context_metrics

        telemetry = Telemetry(registry=registry, trace_ring=trace_ring,
                              profile_slowest=profile_slowest)
        bind_context_metrics(telemetry.registry, self)
        self.telemetry = telemetry
        return telemetry

    def disable_telemetry(self) -> None:
        """Back to the null plane (recorded traces/metrics are dropped)."""
        self.telemetry = NULL_TELEMETRY

    def metrics_snapshot(self) -> Dict:
        """JSON-safe snapshot of every measured signal of this context.

        Always available — stats, timers and sequencing come straight off
        the context — and enriched with the registry/traces/profiles when
        the telemetry plane is enabled.
        """
        from repro.obs.telemetry import IMPUTATION_FIELDS, PRUNING_FIELDS

        snapshot: Dict = {
            "batch_seq": self.batch_seq,
            "last_trace_id": self.last_trace_id,
            "timestamps_processed": self.timestamps_processed,
            "matches": len(self.result_set),
            "pruning": {name: getattr(self.pruning.stats, name)
                        for name, _ in PRUNING_FIELDS},
            "imputation": {name: getattr(self.imputer.stats, name)
                           for name in IMPUTATION_FIELDS},
            "ingest": self.ingest.as_dict(),
            # The live-pool placement diagnostic rides in snapshots (it is
            # a current-state gauge) but not in checkpoints (a restored run
            # re-places its rebuilt pool).
            "transport": {**self.transport.as_dict(),
                          "worker_placement": self.transport.worker_placement},
            "query": self.query.as_dict(),
            "grid": {"cells_examined": self.grid.cells_examined,
                     "tuples_examined": self.grid.tuples_examined},
            "rule_installs": {"skipped": self.installs_skipped,
                              "patched": self.installs_patched,
                              "rebuilt": self.installs_rebuilt},
            "stage_seconds": dict(self.timer.totals),
            "stage_counts": dict(self.timer.counts),
            "telemetry_enabled": bool(self.telemetry.enabled),
        }
        detail = self.telemetry.snapshot()
        if detail is not None:
            snapshot.update(detail)
        return snapshot
