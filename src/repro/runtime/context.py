"""Shared mutable state of the staged TER-iDS runtime.

The :class:`RuntimeContext` owns everything the online operator reads or
writes — the offline substrates built in the pre-computation phase (pivot
table, CDD rules and indexes, DR-index, imputer) and the online state
(per-stream sliding windows, ER-grid, entity result set, pruning pipeline,
stage timer, timestamp counter).  Stages receive the context at construction
time and mutate it; executors schedule stages; the
:class:`~repro.core.engine.TERiDSEngine` facade exposes the context's fields
under their historical attribute names.

Keeping the state in one object (instead of scattered over the engine) is
what makes checkpoint/restore and alternative executors possible without the
engine knowing about either.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import TERiDSConfig
from repro.core.matching import EntityResultSet
from repro.core.pruning import PruningPipeline
from repro.core.stream import SlidingWindow
from repro.core.tuples import Schema
from repro.imputation.cdd import CDDDiscoveryConfig, CDDRule
from repro.imputation.imputer import CDDImputer
from repro.imputation.incremental import IncrementalRuleMaintainer
from repro.imputation.repository import DataRepository
from repro.indexes.cdd_index import CDDIndex
from repro.indexes.dr_index import DRIndex
from repro.indexes.er_grid import ERGrid
from repro.indexes.pivots import PivotTable
from repro.metrics.timing import StageTimer


@dataclass
class RuntimeContext:
    """All state shared by the pipeline stages of one TER-iDS operator."""

    config: TERiDSConfig
    repository: DataRepository
    pivots: PivotTable
    rules: List[CDDRule]
    cdd_indexes: Dict[str, CDDIndex]
    dr_index: DRIndex
    grid: ERGrid
    imputer: CDDImputer
    windows: Dict[str, SlidingWindow] = field(default_factory=dict)
    result_set: EntityResultSet = field(default_factory=EntityResultSet)
    pruning: Optional[PruningPipeline] = None
    timer: StageTimer = field(default_factory=StageTimer)
    timestamps_processed: int = 0
    #: Rule-mining knobs used for re-mines of the evolving repository; the
    #: maintenance stage reads them when absorbing new samples.
    discovery_config: Optional[CDDDiscoveryConfig] = None
    #: Incremental rule maintainer (Section 5.5).  ``None`` in ``full``
    #: maintenance mode, where rules only change through an explicit re-mine.
    rule_maintainer: Optional[IncrementalRuleMaintainer] = None

    def __post_init__(self) -> None:
        if self.pruning is None:
            config = self.config
            self.pruning = PruningPipeline(
                keywords=config.keywords,
                gamma=config.gamma,
                alpha=config.alpha,
                use_topic=config.use_topic_pruning,
                use_similarity=config.use_similarity_pruning,
                use_probability=config.use_probability_pruning,
                use_instance=config.use_instance_pruning,
            )

    @property
    def schema(self) -> Schema:
        return self.config.schema

    def install_rules(self, rules) -> None:
        """Swap a new CDD rule set into the runtime (indexes + imputer).

        The single authority for rule installation — live maintenance
        (``MaintenanceStage``) and checkpoint restore both route through it,
        so the two paths cannot drift apart.  The imputer object is kept
        (statistics, candidate cache and DR-index retriever survive); only
        the rule grouping and the per-attribute CDD-indexes are rebuilt.
        """
        from repro.indexes.cdd_index import build_cdd_indexes

        self.rules = list(rules)
        self.cdd_indexes = build_cdd_indexes(self.rules, self.schema,
                                             self.pivots)
        self.imputer.set_rules(self.rules)

    def window_for(self, source: str) -> SlidingWindow:
        """The sliding window of one stream, created on first use."""
        window = self.windows.get(source)
        if window is None:
            window = SlidingWindow(capacity=self.config.window_size)
            self.windows[source] = window
        return window

    def clear_online_state(self) -> None:
        """Drop every window, grid entry and reported pair (keep substrates)."""
        self.windows.clear()
        self.result_set.clear()
        grid = self.grid
        for synopsis in grid.synopses():
            grid.remove(synopsis.rid, synopsis.source)
        self.timestamps_processed = 0
